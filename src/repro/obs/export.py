"""Exporters and seeded telemetry workloads.

Turns a :class:`~repro.obs.metrics.MetricsRegistry` snapshot into the
two formats operators actually consume — Prometheus text exposition
(:func:`to_prometheus`) and canonical JSON (:func:`to_json`) — and
provides the seeded workloads behind the ``repro metrics`` / ``repro
trace`` CLI subcommands.  Both exporters are deterministic: sorted
series, fixed float formatting, no timestamps.  The check.sh obs gate
runs each workload twice and byte-diffs the output.

The workload builders import the serving and training stacks lazily:
:mod:`repro.obs` is a leaf package that those stacks import for their
own instrumentation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .metrics import MetricsRegistry, _format_value

__all__ = [
    "run_metrics_workload",
    "run_pool_workload",
    "run_trace_workload",
    "to_json",
    "to_prometheus",
]


def _prometheus_key(key: str) -> str:
    """Sanitize a snapshot key: dots become underscores in the name
    part only (label values are preserved verbatim)."""
    if "{" in key:
        name, rest = key.split("{", 1)
        return name.replace(".", "_") + "{" + rest
    return key.replace(".", "_")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every registered instrument.

    Instruments sharing a name (labeled variants) form one family with
    a single ``# HELP`` / ``# TYPE`` header.  Output is sorted and
    deterministic — two same-seed runs export identical bytes.
    """
    families: Dict[str, List] = {}
    for instrument in registry.instruments():
        families.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name in sorted(families):
        instruments = families[name]
        prom_name = name.replace(".", "_")
        help_text = next((i.help for i in instruments if i.help), "")
        if help_text:
            lines.append(f"# HELP {prom_name} {help_text}")
        lines.append(f"# TYPE {prom_name} {instruments[0].kind}")
        for instrument in instruments:
            for key, value in instrument.items():
                lines.append(f"{_prometheus_key(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry) -> str:
    """Canonical JSON (sorted keys, 2-space indent) of the snapshot."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)


def run_metrics_workload(
    seed: int = 0, requests: int = 400, preset: str = "smoke"
) -> Tuple[MetricsRegistry, object]:
    """A seeded overload drill with every serving layer instrumented.

    Builds an untrained PKGM server at the preset's catalog scale
    (serving mechanics do not depend on trained weights), fronts it
    with two registry-instrumented replicas behind the admission
    controller, and replays the spike profile with a mid-run
    drain+swap.  Returns ``(registry, loadtest_report)``; with the same
    seed the registry snapshot is byte-identical across runs.
    """
    import numpy as np

    from ..config import PRESETS
    from ..core import PKGM, KeyRelationSelector, PKGMServer
    from ..data import generate_catalog
    from ..reliability import (
        AdmissionConfig,
        GatewayConfig,
        LoadTestConfig,
        PKGMGateway,
        build_replicas,
        run_loadtest,
    )

    config = PRESETS[preset]()
    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(seed),
    )
    server = PKGMServer(model, selector)
    registry = MetricsRegistry()
    gateway = PKGMGateway(
        build_replicas(server, 2, seed=seed, registry=registry),
        GatewayConfig(
            deadline_budget=0.25,
            hedge_after=0.05,
            admission=AdmissionConfig(rate=300.0, burst=64.0, queue_capacity=64),
        ),
        seed=seed,
        registry=registry,
    )
    report = run_loadtest(
        gateway,
        server.known_items(),
        LoadTestConfig(
            profile="spike", requests=requests, seed=seed, drain_at=0.5
        ),
    )
    return registry, report


def run_pool_workload(
    seed: int = 0, requests: int = 240, preset: str = "smoke"
) -> Tuple[MetricsRegistry, List[str]]:
    """A seeded multi-process pool run with every worker instrumented.

    Forks a two-worker :class:`~repro.serving.Supervisor` over a
    freshly built store, drives a seeded mixed workload (serve / exist
    / retrieve) on the virtual clock, then runs idle ticks so the
    background scrubber sweeps the whole store.  The export surfaces
    the supervision counters (``pool.*``), per-worker served totals
    (``pool.worker.served{worker=...}``), and the scrub accounting
    (``store.scrub.*``).  Routing is pure shard affinity and no worker
    dies, so the snapshot is byte-identical across same-seed runs.
    Returns ``(registry, summary_lines)``.
    """
    import shutil
    import tempfile

    import numpy as np

    from ..config import PRESETS
    from ..core import PKGM, KeyRelationSelector, PKGMServer
    from ..data import generate_catalog
    from ..reliability.retry import StepClock
    from ..serving import PoolConfig, Supervisor

    config = PRESETS[preset]()
    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(seed),
    )
    server = PKGMServer(model, selector)
    items = sorted(server.known_items())
    registry = MetricsRegistry()
    clock = StepClock()
    store_dir = tempfile.mkdtemp(prefix="repro-pool-workload-")
    try:
        server.save_store(store_dir)
        pool = Supervisor(
            store_dir,
            PoolConfig(
                num_workers=2,
                max_batch=4,
                scrub_pages_per_tick=4,
            ),
            clock=clock,
            registry=registry,
        )
        pool.start()
        try:
            rng = np.random.default_rng(seed)
            for _ in range(requests):
                draw = rng.random()
                entity = int(items[int(rng.integers(len(items)))])
                relation = int(rng.integers(model.num_relations))
                if draw < 0.5:
                    pool.submit("serve", entity)
                elif draw < 0.8:
                    pool.submit("exist", entity, relation=relation)
                else:
                    pool.submit("retrieve", entity, relation=relation, k=5)
                clock.advance(0.001)
                pool.pump()
            answered = len(pool.drain())
            # Idle ticks: with nothing in flight every tick is a scrub
            # slice, so the sweep accounting is fixed by the tick count.
            for _ in range(64):
                pool.tick()
            pool.ping_all()
            for handle in pool.workers:
                registry.gauge(
                    "pool.worker.served",
                    help="Items served, per worker slot",
                    labels={"worker": handle.index},
                ).set(handle.served_total)
            summary = [
                f"pool workload: {requests} submitted | {answered} answered",
                "workers: "
                + " ".join(
                    f"{handle.index}={handle.served_total}"
                    for handle in pool.workers
                ),
            ]
        finally:
            pool.shutdown()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    return registry, summary


def run_trace_workload(seed: int = 0, epochs: int = 2, preset: str = "smoke"):
    """A seeded pre-training run with spans, phases, and op counts.

    Trains PKGM on the preset's synthetic catalog for ``epochs`` epochs
    with the registry, tracer, and profiler all attached.  Returns
    ``(registry, tracer, profiler, history)``; with the same seed the
    trace export and profile report are byte-identical across runs.
    """
    import dataclasses

    import numpy as np

    from ..config import PRESETS
    from ..core import PKGM, PKGMTrainer
    from ..data import generate_catalog
    from .profile import Profiler
    from .trace import Tracer

    config = PRESETS[preset]()
    catalog = generate_catalog(config.catalog)
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(seed),
    )
    registry = MetricsRegistry()
    tracer = Tracer(seed=seed)
    profiler = Profiler(clock=tracer.clock)
    trainer = PKGMTrainer(
        model,
        dataclasses.replace(config.pkgm_trainer, epochs=epochs, seed=seed),
        registry=registry,
        tracer=tracer,
        profiler=profiler,
    )
    history = trainer.train(catalog.store)
    return registry, tracer, profiler, history
