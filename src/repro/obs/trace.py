"""Span tracing on the virtual step clock.

Spans answer "where did the time go in this epoch" the way the
metrics registry answers "how many": a :class:`Tracer` opens nested
spans around training phases, parameter-server RPCs, and serving
resolutions, stamping start/end from the same advance-only
:class:`~repro.reliability.retry.StepClock` that drives retries and
deadlines.  Wall clocks never appear (lint rule R007 covers this
package), so a traced run is as replayable as an untraced one: same
seed, same fault plan, byte-identical trace export.

Span ids come from a seeded counter, not ``uuid``/``random``; the
completed spans live in a fixed-capacity ring (:class:`SpanStore`)
and export either as Chrome ``trace_event`` JSON (load in
``chrome://tracing`` / Perfetto with steps standing in for
microseconds) or as an indented text tree for terminals and tests.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "SpanStore", "Tracer"]


class Span:
    """One timed operation: name, start/end step, attributes, events.

    Spans are created by :meth:`Tracer.span` and should be treated as
    read-only once ended.  ``status`` is ``"ok"`` unless the traced
    block raised (``"error"``) or the instrumented code overrode it.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "status",
        "attributes",
        "events",
    )

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, object] = {}
        self.events: List[Tuple[float, str]] = []

    @property
    def duration(self) -> float:
        """Steps elapsed between start and end (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: object) -> None:
        """Attach a key/value attribute to the span."""
        self.attributes[key] = value

    def add_event(self, name: str, at: Optional[float] = None) -> None:
        """Record a point-in-time event inside the span.

        ``at`` defaults to the span's current notion of "now" only when
        the caller supplies it; instrumented code normally passes the
        clock reading explicitly so the event lands on the step line.
        """
        self.events.append((self.start if at is None else at, name))


class SpanStore:
    """Fixed-capacity ring buffer of completed spans.

    Insertion order is completion order, which is deterministic under
    the step clock.  When full, the oldest completed span is dropped —
    bounded memory is part of the observability contract (a crashing
    trainer must not OOM through its own telemetry).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("span store capacity must be positive")
        self.capacity = capacity
        self._spans: List[Span] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def add(self, span: Span) -> None:
        """Append a completed span, evicting the oldest when full."""
        if len(self._spans) >= self.capacity:
            del self._spans[0]
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> List[Span]:
        """Completed spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop every stored span and zero the drop counter."""
        self._spans.clear()
        self.dropped = 0


class Tracer:
    """Creates nested spans stamped by the virtual step clock.

    ``span()`` is a context manager; the parent is implicit (the
    innermost open span) unless given explicitly.  Span ids are
    ``"{seed:04x}-{counter:06x}"`` from a seeded counter, so two runs
    with the same seed emit identical ids in identical order.
    """

    def __init__(
        self,
        clock=None,
        capacity: int = 4096,
        seed: int = 0,
    ) -> None:
        if clock is None:
            # Imported here, not at module level: obs is a leaf package
            # (reliability's serving facade imports obs.metrics, so a
            # top-level import back into reliability would be a cycle).
            from ..reliability.retry import StepClock

            clock = StepClock()
        self.clock = clock
        self.store = SpanStore(capacity)
        self.seed = seed
        self._next_id = 0
        self._stack: List[Span] = []

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self.seed & 0xFFFF:04x}-{self._next_id:06x}"

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Iterator[Span]:
        """Open a span around a block; closes (and stores) it on exit.

        The span's status becomes ``"error"`` if the block raises; the
        exception propagates.
        """
        if parent is None:
            parent = self.current
        span = Span(
            self._new_id(),
            parent.span_id if parent is not None else None,
            name,
            self.clock.now(),
        )
        span.attributes.update(attributes)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end = self.clock.now()
            self._stack.pop()
            self.store.add(span)

    def event(self, name: str) -> None:
        """Record an instant event on the innermost open span.

        Silently ignored with no open span, so instrumented code can
        emit events without caring whether tracing is active.
        """
        current = self.current
        if current is not None:
            current.add_event(name, at=self.clock.now())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_chrome(self) -> str:
        """Chrome ``trace_event`` JSON for the completed spans.

        Steps map 1:1 onto the format's microsecond timestamps; spans
        become complete (``"ph": "X"``) events and span events become
        instants (``"ph": "i"``).  The output is canonical JSON
        (sorted keys, no whitespace) so identical runs export
        identical bytes.
        """
        events: List[Dict[str, object]] = []
        for span in self.store.spans():
            args: Dict[str, object] = {
                key: span.attributes[key] for key in sorted(span.attributes)
            }
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.status != "ok":
                args["status"] = span.status
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "ts": span.start,
                    "dur": span.duration,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
            for at, label in span.events:
                events.append(
                    {
                        "ph": "i",
                        "name": label,
                        "ts": at,
                        "pid": 0,
                        "tid": 0,
                        "s": "t",
                        "args": {"span_id": span.span_id},
                    }
                )
        payload = {"displayTimeUnit": "ms", "traceEvents": events}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render_tree(self) -> str:
        """Indented text tree of the completed spans.

        Children appear under their parent in completion order; spans
        whose parent was dropped from the ring render at top level.
        """
        spans = self.store.spans()
        by_parent: Dict[Optional[str], List[Span]] = {}
        ids = {span.span_id for span in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)

        lines: List[str] = []

        def walk(parent_id: Optional[str], depth: int) -> None:
            for span in by_parent.get(parent_id, []):
                attrs = "".join(
                    f" {key}={span.attributes[key]}"
                    for key in sorted(span.attributes)
                )
                status = "" if span.status == "ok" else f" [{span.status}]"
                lines.append(
                    f"{'  ' * depth}{span.name}  "
                    f"steps={span.duration:g} "
                    f"start={span.start:g}{status}{attrs}"
                )
                for at, label in span.events:
                    lines.append(f"{'  ' * (depth + 1)}@{at:g} {label}")
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)
