"""Per-phase step accounting and tensor-op profiling for training.

The training loop decomposes into the phases the paper's cluster
schedule cares about — negative sampling, the ``f_T + f_R`` forward,
backward, optimizer step, and parameter-server push/pull — and the
:class:`Profiler` attributes both virtual-clock steps and tensor-op
dispatches to whichever phase is open.  Op counting reuses the same
interception point in :meth:`repro.nn.tensor.Tensor._make` that the
numeric sanitizer guards, installed via
:func:`repro.nn.tensor.set_op_hook`, so profiling sees exactly the ops
autograd sees and costs one ``is None`` branch when off.

Everything is exact and deterministic: no sampling, no wall clock
(phase durations come from the caller-supplied
:class:`~repro.reliability.retry.StepClock`), and
:func:`profile_report` renders sorted tables that are byte-identical
across same-seed runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..nn import tensor as _tensor

__all__ = ["PhaseTotals", "Profiler", "profile_report"]


class PhaseTotals:
    """Accumulated cost of one named phase across all its activations."""

    __slots__ = ("name", "calls", "steps", "ops", "units")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.steps = 0.0
        self.ops = 0
        self.units = 0

    def as_row(self) -> str:
        """One deterministic report line for this phase."""
        return (
            f"{self.name} | calls={self.calls} | steps={self.steps:g} | "
            f"ops={self.ops} | units={self.units}"
        )


class Profiler:
    """Attributes virtual-time steps and tensor ops to named phases.

    Use :meth:`phase` around each stage of the loop and
    :meth:`install` / :meth:`uninstall` (or the profiler itself as a
    context manager) to capture tensor-op dispatches.  Phases nest; an
    op or step interval is charged to the innermost open phase only,
    so totals never double-count.
    """

    def __init__(self, clock=None) -> None:
        if clock is None:
            # Lazy import: obs stays a leaf package (see trace.py).
            from ..reliability.retry import StepClock

            clock = StepClock()
        self.clock = clock
        self.phases: Dict[str, PhaseTotals] = {}
        self.op_counts: Dict[str, int] = {}
        self.total_ops = 0
        self._stack: List[Tuple[PhaseTotals, float]] = []
        self._previous_hook = None
        self._installed = False

    # ------------------------------------------------------------------
    # Tensor-op hook plumbing
    # ------------------------------------------------------------------
    def _on_op(self, op: str, data: np.ndarray) -> None:
        """Count one op dispatch (the installed tensor hook)."""
        self.total_ops += 1
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if self._stack:
            self._stack[-1][0].ops += 1

    def install(self) -> None:
        """Install the tensor-op hook, saving any previous hook."""
        if self._installed:
            return
        self._previous_hook = _tensor.get_op_hook()
        _tensor.set_op_hook(self._on_op)
        self._installed = True

    def uninstall(self) -> None:
        """Remove the hook and restore whatever was installed before."""
        if not self._installed:
            return
        _tensor.set_op_hook(self._previous_hook)
        self._previous_hook = None
        self._installed = False

    def __enter__(self) -> "Profiler":
        self.install()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Phase accounting
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, units: int = 0) -> Iterator[PhaseTotals]:
        """Charge the enclosed block's steps and ops to ``name``.

        ``units`` is an optional work count (examples, triples, rows)
        for throughput lines in the report.  While a nested phase is
        open, the parent's step/op accumulation pauses.
        """
        totals = self.phases.get(name)
        if totals is None:
            totals = PhaseTotals(name)
            self.phases[name] = totals
        totals.calls += 1
        totals.units += units
        if self._stack:
            parent, started = self._stack[-1]
            parent.steps += self.clock.now() - started
        self._stack.append((totals, self.clock.now()))
        try:
            yield totals
        finally:
            _, started = self._stack.pop()
            totals.steps += self.clock.now() - started
            if self._stack:
                parent, _ = self._stack[-1]
                self._stack[-1] = (parent, self.clock.now())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_ops(self, k: int = 10) -> List[Tuple[str, int]]:
        """The ``k`` most-dispatched ops, ties broken by name."""
        ranked = sorted(self.op_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: max(0, k)]

    def reset(self) -> None:
        """Clear all accumulated phases and op counts."""
        self.phases.clear()
        self.op_counts.clear()
        self.total_ops = 0
        self._stack.clear()


def profile_report(profiler: Profiler, top_k: int = 10) -> str:
    """Render a deterministic two-part profile table.

    Part one lists phases in first-open order (the loop's own order);
    part two lists the top-``top_k`` tensor ops by dispatch count.
    """
    lines = ["phase | calls | steps | tensor-ops | units"]
    for totals in profiler.phases.values():
        lines.append(totals.as_row())
    lines.append("")
    lines.append(f"top tensor ops (of {profiler.total_ops} dispatches)")
    lines.append("op | dispatches")
    for op, count in profiler.top_ops(top_k):
        lines.append(f"{op} | {count}")
    return "\n".join(lines)
