"""Deterministic process-local metrics: counters, gauges, histograms.

The paper's serving tier (50 parameter servers, 200 workers, billions
of service-vector requests) is operable only through telemetry, and a
reproduction whose acceptance criterion is *byte-identical reruns*
needs that telemetry to be as deterministic as the computation it
measures.  This module is the measurement substrate used across
training and serving:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — exact,
  unsampled instruments (a histogram has fixed, explicit buckets and
  counts every observation);
* :class:`MetricsRegistry` — a process-local instrument table with
  dotted names, optional labels
  (``ps.pull.shard_rpcs{shard="3"}``), and prefix-scoped child
  registries sharing one store;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.diff` —
  plain sorted dicts, so two runs with the same seed produce
  byte-identical snapshots (and exports, see
  :mod:`repro.obs.export`);
* :class:`counter_view` — a descriptor that exposes a registry counter
  as a plain attribute, letting the legacy ad-hoc stats surfaces
  (``stats.requests += 1``, ``server.pull_count``) stay source- and
  semantics-compatible while the truth moves into the registry.

Nothing here reads the wall clock (lint rule R007 bans it in this
package) and nothing allocates on the hot path beyond the first lookup:
instruments are created once and cached by the calling layer.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Metric names: dotted lowercase identifiers (``gateway.hedge_wins``).
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*\Z")

#: Default histogram bucket bounds (virtual seconds), Prometheus-style.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _format_value(value: Number) -> str:
    """Deterministic text form: ints stay ints, floats use ``repr``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_suffix(labels: Optional[Mapping[str, object]]) -> str:
    """Canonical ``{k="v",...}`` rendering with sorted keys ('' if none)."""
    if not labels:
        return ""
    parts = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + parts + "}"


class Counter:
    """A monotone-by-convention exact counter.

    ``set_total`` exists for the legacy attribute views
    (:class:`counter_view`) and for :meth:`reset`; production code
    should only :meth:`inc`.
    """

    kind = "counter"

    def __init__(self, name: str, labels: str = "", help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value: Number = 0

    @property
    def value(self) -> Number:
        """The current count."""
        return self._value

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def set_total(self, value: Number) -> None:
        """Overwrite the count (attribute views and stats resets only)."""
        self._value = value

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0

    def items(self) -> Iterator[Tuple[str, Number]]:
        """``(snapshot_key, value)`` pairs for this instrument."""
        yield self.name + self.labels, self._value


class Gauge:
    """A point-in-time value (occupancy, loss, limit)."""

    kind = "gauge"

    def __init__(self, name: str, labels: str = "", help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value: Number = 0

    @property
    def value(self) -> Number:
        """The current gauge reading."""
        return self._value

    def set(self, value: Number) -> None:
        """Overwrite the gauge."""
        self._value = value

    def add(self, amount: Number) -> None:
        """Adjust the gauge by ``amount`` (either sign)."""
        self._value += amount

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0

    def items(self) -> Iterator[Tuple[str, Number]]:
        """``(snapshot_key, value)`` pairs for this instrument."""
        yield self.name + self.labels, self._value


class Histogram:
    """Fixed-bucket exact histogram (no sampling, no decay).

    ``buckets`` are strictly increasing upper bounds; an implicit
    ``+Inf`` bucket catches the overflow.  Snapshots expose cumulative
    Prometheus-style ``_bucket{le=...}`` counts plus ``_count`` and
    ``_sum``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: str = "",
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            nxt <= prev for prev, nxt in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = bounds
        self._counts: List[int] = [0] * (len(bounds) + 1)
        self._sum: float = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation in its bucket."""
        value = float(value)
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value

    def reset(self) -> None:
        """Zero every bucket and the running sum."""
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0

    def _le_labels(self, bound: str) -> str:
        inner = f'le="{bound}"'
        if self.labels:
            return self.labels[:-1] + "," + inner + "}"
        return "{" + inner + "}"

    def items(self) -> Iterator[Tuple[str, Number]]:
        """Cumulative bucket counts, then ``_count`` and ``_sum``."""
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            yield self.name + "_bucket" + self._le_labels(repr(bound)), running
        yield self.name + "_bucket" + self._le_labels("+Inf"), self.count
        yield self.name + "_count" + self.labels, self.count
        yield self.name + "_sum" + self.labels, self._sum


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A process-local instrument table with prefix-scoped children.

    All lookups are get-or-create: asking twice for the same
    ``(name, labels)`` returns the same instrument; asking for an
    existing name with a different instrument kind raises.  A child
    registry (:meth:`child`) shares the parent's store and prepends
    ``prefix + '.'`` to every name, so one root snapshot sees the whole
    process.
    """

    def __init__(
        self,
        prefix: str = "",
        _store: Optional[Dict[str, Instrument]] = None,
    ) -> None:
        self.prefix = prefix
        self._store: Dict[str, Instrument] = _store if _store is not None else {}

    # ------------------------------------------------------------------
    # Construction / lookup
    # ------------------------------------------------------------------
    def child(self, prefix: str) -> "MetricsRegistry":
        """A registry view prefixing every name, sharing this store."""
        if not _NAME_RE.match(prefix):
            raise ValueError(f"invalid registry prefix {prefix!r}")
        return MetricsRegistry(self.prefix + prefix + ".", self._store)

    def _full_name(self, name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        return self.prefix + name

    def _lookup(self, key: str, kind: str) -> Optional[Instrument]:
        instrument = self._store.get(key)
        if instrument is not None and instrument.kind != kind:
            raise TypeError(
                f"metric {key!r} is already registered as a "
                f"{instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        full = self._full_name(name)
        key = full + _label_suffix(labels)
        instrument = self._lookup(key, "counter")
        if instrument is None:
            instrument = Counter(full, _label_suffix(labels), help)
            self._store[key] = instrument
        return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        full = self._full_name(name)
        key = full + _label_suffix(labels)
        instrument = self._lookup(key, "gauge")
        if instrument is None:
            instrument = Gauge(full, _label_suffix(labels), help)
            self._store[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given buckets."""
        full = self._full_name(name)
        key = full + _label_suffix(labels)
        instrument = self._lookup(key, "histogram")
        if instrument is None:
            instrument = Histogram(full, buckets, _label_suffix(labels), help)
            self._store[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def instruments(self) -> List[Instrument]:
        """Every registered instrument, sorted by labeled name."""
        return [self._store[key] for key in sorted(self._store)]

    def snapshot(self) -> Dict[str, Number]:
        """A plain sorted dict of every exposed series.

        Counters and gauges contribute one key each; a histogram
        contributes its cumulative buckets, ``_count``, and ``_sum``.
        Two runs with the same seed produce byte-identical snapshots.
        """
        flat: Dict[str, Number] = {}
        for instrument in self._store.values():
            for key, value in instrument.items():
                flat[key] = value
        return {key: flat[key] for key in sorted(flat)}

    @staticmethod
    def diff(
        before: Mapping[str, Number], after: Mapping[str, Number]
    ) -> Dict[str, Number]:
        """Per-key delta between two snapshots (zero deltas dropped)."""
        delta: Dict[str, Number] = {}
        for key in sorted(set(before) | set(after)):
            change = after.get(key, 0) - before.get(key, 0)
            if change != 0:
                delta[key] = change
        return delta

    def reset(self) -> None:
        """Zero every instrument (the store keeps its keys)."""
        for instrument in self._store.values():
            instrument.reset()


class counter_view:
    """Descriptor exposing a registry :class:`Counter` as an attribute.

    The stats surfaces that predate the registry
    (``stats.requests += 1``, ``server.pull_count = 0``) keep their
    exact syntax and semantics::

        class Stats:
            requests = counter_view("serving.requests")

            def __init__(self, registry):
                self.metrics = registry
                self.requests = 0   # creates + zeroes the instrument

    Reads return the counter's numeric value; writes overwrite it, so
    the attribute and the instrument can never drift apart.  The host
    object must expose the registry as ``self.metrics``.
    """

    def __init__(self, metric: str, help: str = "") -> None:
        self.metric = metric
        self.help = help
        self._slot = "_counter_view_" + metric.replace(".", "_")

    def _instrument(self, obj) -> Counter:
        cached = obj.__dict__.get(self._slot)
        if cached is None:
            cached = obj.metrics.counter(self.metric, help=self.help)
            obj.__dict__[self._slot] = cached
        return cached

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._instrument(obj).value

    def __set__(self, obj, value) -> None:
        self._instrument(obj).set_total(value)
