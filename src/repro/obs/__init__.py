"""Deterministic observability for the PKGM reproduction.

Operating the paper's system — 50 parameter servers, 200 workers,
billions of service-vector requests — means watching it; reproducing
it with *byte-identical reruns* as the acceptance bar means the watch
itself must be deterministic.  This package is that telemetry layer,
built on the same virtual-time discipline as :mod:`repro.reliability`
(step clocks, seeded ids, no wall-clock reads — lint rule R007 bans
``time.*`` here too):

* :mod:`repro.obs.metrics` — exact counters / gauges / fixed-bucket
  histograms in a process-local :class:`MetricsRegistry` with labels
  and prefix-scoped children, plus :class:`counter_view` bridging the
  legacy stats attributes onto the registry;
* :mod:`repro.obs.trace` — :class:`Tracer` spans over a
  :class:`~repro.reliability.retry.StepClock`, with deterministic span
  ids, a ring-buffer :class:`SpanStore`, Chrome ``trace_event`` JSON
  export, and a text tree renderer;
* :mod:`repro.obs.profile` — :class:`Profiler` per-phase step/op
  accounting hooked into the tensor dispatch layer, with a top-K op
  table via :func:`profile_report`;
* :mod:`repro.obs.export` — Prometheus-text / JSON exporters and the
  seeded workloads behind ``repro metrics`` and ``repro trace``.

Import order note: this is a *leaf* package — the training and serving
stacks import it, so nothing at module level here may import them
back.  ``metrics`` is imported first because :mod:`repro.core.cache`
reaches for it during partial initialization.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_view,
)
from .trace import Span, SpanStore, Tracer
from .profile import PhaseTotals, Profiler, profile_report
from .export import (
    run_metrics_workload,
    run_pool_workload,
    run_trace_workload,
    to_json,
    to_prometheus,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTotals",
    "Profiler",
    "Span",
    "SpanStore",
    "Tracer",
    "counter_view",
    "profile_report",
    "run_metrics_workload",
    "run_pool_workload",
    "run_trace_workload",
    "to_json",
    "to_prometheus",
]
