"""Embedding-space diagnostics for pre-trained PKGM models."""

from .embeddings import (
    PurityReport,
    SiblingReport,
    embedding_norm_summary,
    item_embedding_matrix,
    knn_category_purity,
    sibling_separation,
)

__all__ = [
    "PurityReport",
    "SiblingReport",
    "embedding_norm_summary",
    "item_embedding_matrix",
    "knn_category_purity",
    "sibling_separation",
]
