"""Embedding-space diagnostics for a pre-trained PKGM.

These analyses quantify the two geometric mechanisms the downstream
results rest on:

* *category clustering* — items of one category share attribute values,
  so TransE pulls their embeddings together; measured as k-NN category
  purity;
* *sibling collapse* — listings of the same product share nearly all
  values, so they end up even closer; measured as the same-product vs
  random-pair distance ratio.

Both are reported by ``examples/`` and asserted (loosely) in tests: if
either mechanism failed, classification and alignment gains would be
unexplainable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import PKGM
from ..data import Catalog
from ..index import FlatIndex


@dataclass(frozen=True)
class PurityReport:
    """k-NN category purity of item embeddings."""

    k: int
    purity: float
    chance: float

    def as_row(self) -> str:
        return (
            f"kNN(k={self.k}) category purity = {self.purity:.3f} "
            f"(chance {self.chance:.3f})"
        )


@dataclass(frozen=True)
class SiblingReport:
    """Distance statistics for same-product vs random item pairs."""

    sibling_mean_distance: float
    random_mean_distance: float

    @property
    def ratio(self) -> float:
        return self.random_mean_distance / max(self.sibling_mean_distance, 1e-12)

    def as_row(self) -> str:
        return (
            f"L1 distance: same-product {self.sibling_mean_distance:.3f} vs "
            f"random {self.random_mean_distance:.3f} "
            f"(separation x{self.ratio:.2f})"
        )


def item_embedding_matrix(model: PKGM, catalog: Catalog) -> Tuple[np.ndarray, np.ndarray]:
    """(embeddings, category_ids) for every catalog item, in item order."""
    entity_ids = np.asarray([item.entity_id for item in catalog.items])
    categories = np.asarray([item.category_id for item in catalog.items])
    table = model.triple_module.entity_embeddings.weight.data
    return table[entity_ids], categories


def knn_category_purity(
    model: PKGM,
    catalog: Catalog,
    k: int = 5,
    max_items: Optional[int] = 500,
    rng: Optional[np.random.Generator] = None,
    block_size: int = 256,
) -> PurityReport:
    """Fraction of each item's k nearest items sharing its category.

    Neighbors come from a blocked exact L1 scan
    (:class:`repro.index.FlatIndex`), so peak memory is bounded by
    ``block_size`` instead of the full item-by-item distance matrix the
    old ``cdist`` path materialized; results are unchanged.  Neighbors
    at distance ≤ 1e-12 (self-matches and exact duplicates) are
    excluded, so the searched ``k`` grows adaptively until every query
    has ``k`` true neighbors or the table is exhausted.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    embeddings, categories = item_embedding_matrix(model, catalog)
    n = len(embeddings)
    if max_items is not None and n > max_items:
        rng = rng if rng is not None else np.random.default_rng(0)
        index = rng.choice(n, size=max_items, replace=False)
        queries, query_cats = embeddings[index], categories[index]
    else:
        queries, query_cats = embeddings, categories

    table = FlatIndex(
        embeddings.shape[1], metric="l1", block_size=block_size
    )
    table.add(embeddings)
    search_k = min(n, k + 1)
    while True:
        distances, neighbor_ids = table.search(queries, search_k)
        real = (neighbor_ids >= 0) & (distances > 1e-12)
        if search_k >= n or bool((real.sum(axis=1) >= k).all()):
            break
        search_k = min(n, search_k * 2)
    purity_total = 0.0
    for i in range(len(queries)):
        neighbors = neighbor_ids[i][real[i]][:k]
        if not len(neighbors):
            continue
        purity_total += np.mean(categories[neighbors] == query_cats[i])
    counts = np.bincount(categories)
    chance = float(np.sum((counts / counts.sum()) ** 2))
    return PurityReport(k=k, purity=purity_total / len(queries), chance=chance)


def sibling_separation(
    model: PKGM,
    catalog: Catalog,
    max_pairs: int = 500,
    rng: Optional[np.random.Generator] = None,
) -> SiblingReport:
    """Same-product vs random-pair mean L1 distance."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = model.triple_module.entity_embeddings.weight.data

    sibling_pairs: List[Tuple[int, int]] = []
    by_product: Dict[int, List[int]] = {}
    for item in catalog.items:
        by_product.setdefault(item.product_id, []).append(item.entity_id)
    for members in by_product.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                sibling_pairs.append((members[i], members[j]))
    if not sibling_pairs:
        raise ValueError("catalog has no multi-item products")
    if len(sibling_pairs) > max_pairs:
        index = rng.choice(len(sibling_pairs), size=max_pairs, replace=False)
        sibling_pairs = [sibling_pairs[i] for i in index]

    entity_ids = [item.entity_id for item in catalog.items]
    random_pairs = [
        tuple(rng.choice(entity_ids, size=2, replace=False))
        for _ in range(len(sibling_pairs))
    ]

    def mean_distance(pairs):
        a = table[[p[0] for p in pairs]]
        b = table[[p[1] for p in pairs]]
        return float(np.abs(a - b).sum(axis=1).mean())

    return SiblingReport(
        sibling_mean_distance=mean_distance(sibling_pairs),
        random_mean_distance=mean_distance(random_pairs),
    )


def embedding_norm_summary(model: PKGM) -> Dict[str, float]:
    """Norm statistics (the TransE unit-ball constraint audit)."""
    entity_norms = np.linalg.norm(
        model.triple_module.entity_embeddings.weight.data, axis=1
    )
    relation_norms = np.linalg.norm(
        model.triple_module.relation_embeddings.weight.data, axis=1
    )
    return {
        "entity_norm_mean": float(entity_norms.mean()),
        "entity_norm_max": float(entity_norms.max()),
        "relation_norm_mean": float(relation_norms.mean()),
        "relation_norm_max": float(relation_norms.max()),
    }
