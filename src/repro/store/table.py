"""Array-like facade over one store table.

:class:`StoreTable` gives an :class:`EmbeddingStore` table the small
slice of the ndarray surface the servers actually use — ``shape`` /
``dtype`` / ``len`` / integer, slice, and fancy indexing — so
``PKGMServer`` code written against ``self._entity_table[heads]``
runs unchanged whether the table is a resident array or a paged,
checksummed store.  Reads stream through the store's page cache, so
memory stays bounded by the cache budget while damage still surfaces
as :class:`repro.store.errors.QuarantinedRowError`.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .store import EmbeddingStore


class StoreTable:
    """Read-only, out-of-core view of one table in a store."""

    def __init__(self, store: EmbeddingStore, name: str) -> None:
        self._store = store
        self.name = name
        self._spec = store.spec(name)

    # -- ndarray-ish surface -------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._spec.shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._spec.dtype)

    @property
    def ndim(self) -> int:
        return len(self._spec.shape)

    @property
    def nbytes(self) -> int:
        return self._spec.nbytes

    def __len__(self) -> int:
        return self._spec.rows

    def __getitem__(
        self, key: Union[int, slice, np.ndarray, list, tuple]
    ) -> np.ndarray:
        if isinstance(key, tuple):
            # Row gather first, then the in-row component lookup — the
            # ``table[ids, j]`` idiom used by scoring paths.
            rows = self[key[0]]
            return rows[(slice(None),) + key[1:]] if len(key) > 1 else rows
        if isinstance(key, slice):
            start, stop, step = key.indices(self._spec.rows)
            return self._store.read_rows(
                self.name, np.arange(start, stop, step, dtype=np.int64)
            )
        if isinstance(key, (int, np.integer)):
            return self._store.read_row(self.name, int(key))
        return self._store.read_rows(self.name, np.asarray(key))

    def __array__(self, dtype=None) -> np.ndarray:
        full = self._store.read_table(self.name)
        return full.astype(dtype) if dtype is not None else full

    def __repr__(self) -> str:
        return (
            f"StoreTable({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )
