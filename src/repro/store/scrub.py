"""Incremental background scrubbing: find latent damage before reads do.

:meth:`EmbeddingStore.scrub` sweeps the whole store eagerly — fine for
a CLI invocation, wrong for a serving loop that must stay responsive.
:class:`ScrubScheduler` splits the same sweep into fixed-size slices:
each :meth:`~ScrubScheduler.tick` CRC-verifies the next
``pages_per_tick`` pages (wrapping around at the end, which completes
one *sweep*), quarantining any damage it finds.

Two properties matter for the serving tier that hosts it:

* **No foreground interference.**  Verification goes through
  :meth:`EmbeddingStore.check_page` — the raw shard readers — so a
  sweep never evicts hot pages from the LRU cache and never moves the
  foreground ``store.page_hits`` / ``store.page_faults`` counters.
* **Damage is caught ahead of traffic.**  A page the scheduler
  quarantines fails future row reads immediately with
  :class:`~repro.store.errors.QuarantinedRowError` — the degraded-read
  path — instead of handing anyone bytes that fail their CRC.

Progress is observable under ``store.scrub.*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

PageKey = Tuple[str, int, int]


@dataclass(frozen=True)
class ScrubTick:
    """What one scheduler tick scanned."""

    pages_scanned: int
    bad_pages: Tuple[PageKey, ...]
    newly_quarantined: Tuple[PageKey, ...]
    wrapped: bool  # this tick completed a full sweep of the store

    @property
    def clean(self) -> bool:
        return not self.bad_pages


class ScrubScheduler:
    """Round-robin incremental scrub over one open store."""

    def __init__(
        self,
        store,
        pages_per_tick: int = 4,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if pages_per_tick < 1:
            raise ValueError("pages_per_tick must be >= 1")
        self.store = store
        self.pages_per_tick = pages_per_tick
        self.metrics = registry if registry is not None else store.metrics
        # Stores are immutable once sealed, so the page enumeration is
        # snapshotted once; the cursor persists across ticks.
        self._keys: List[PageKey] = store.iter_page_keys()
        self._cursor = 0
        self._ticks_c = self.metrics.counter(
            "store.scrub.ticks", help="Scheduler ticks run"
        )
        self._pages_c = self.metrics.counter(
            "store.scrub.pages", help="Pages verified by the scheduler"
        )
        self._quarantined_c = self.metrics.counter(
            "store.scrub.quarantined", help="Pages the scheduler quarantined"
        )
        self._sweeps_c = self.metrics.counter(
            "store.scrub.sweeps", help="Complete sweeps of the store"
        )

    @property
    def pages_total(self) -> int:
        return len(self._keys)

    @property
    def cursor(self) -> int:
        """Next page index in the sweep order (wraps at pages_total)."""
        return self._cursor

    def tick(self) -> ScrubTick:
        """Verify the next ``pages_per_tick`` pages."""
        self._ticks_c.inc()
        if not self._keys:
            return ScrubTick(0, (), (), wrapped=False)
        count = min(self.pages_per_tick, len(self._keys))
        bad: List[PageKey] = []
        fresh: List[PageKey] = []
        wrapped = False
        for _ in range(count):
            key = self._keys[self._cursor]
            already = key in self.store.quarantine
            ok = self.store.check_page(key, quarantine=True)
            self._pages_c.inc()
            if not ok:
                bad.append(key)
                if not already:
                    fresh.append(key)
                    self._quarantined_c.inc()
            self._cursor += 1
            if self._cursor >= len(self._keys):
                self._cursor = 0
                wrapped = True
                self._sweeps_c.inc()
        return ScrubTick(
            pages_scanned=count,
            bad_pages=tuple(bad),
            newly_quarantined=tuple(fresh),
            wrapped=wrapped,
        )

    def run_sweep(self) -> List[ScrubTick]:
        """Tick until one full sweep completes (for tests and drills)."""
        ticks = [self.tick()]
        while not ticks[-1].wrapped and self._keys:
            ticks.append(self.tick())
        return ticks
