"""``repro.store``: crash-safe out-of-core embedding storage.

The serving tables of a billion-scale PKGM do not fit in RAM on one
box.  This package stores them as fixed-width binary shard files under
a self-checksummed manifest, reads them through an mmap + LRU page
cache with lazy per-page CRC verification, quarantines damaged pages
instead of crashing, and repairs them byte-exactly from a replica —
the storage layer beneath :class:`repro.core.PKGMServer` cold starts,
:class:`repro.distributed.ParameterServer` shard persistence, and the
resilient serving facade's degraded reads.

Import order note: ``.errors`` must come first — it is dependency-free
and is what :mod:`repro.reliability.serving` imports from us, keeping
the store ↔ reliability relationship acyclic.
"""

from .errors import (
    QuarantinedRowError,
    StoreError,
    StoreManifestError,
    StoreSchemaError,
)
from .layout import (
    DEFAULT_PAGE_BYTES,
    MANIFEST_NAME,
    STORE_VERSION,
    TableSpec,
    manifest_checksum,
    parse_manifest,
    seal_manifest,
    shard_filename,
)
from .scrub import ScrubScheduler, ScrubTick
from .shard import (
    ShardInfo,
    ShardReader,
    StreamingShardWriter,
    page_crc32s,
    write_shard,
)
from .store import EmbeddingStore, RepairReport, RowSource, ScrubReport
from .table import StoreTable

__all__ = [
    "DEFAULT_PAGE_BYTES",
    "EmbeddingStore",
    "MANIFEST_NAME",
    "QuarantinedRowError",
    "RepairReport",
    "RowSource",
    "ScrubReport",
    "ScrubScheduler",
    "ScrubTick",
    "ShardInfo",
    "ShardReader",
    "STORE_VERSION",
    "StoreError",
    "StoreManifestError",
    "StoreSchemaError",
    "StoreTable",
    "StreamingShardWriter",
    "TableSpec",
    "manifest_checksum",
    "page_crc32s",
    "parse_manifest",
    "seal_manifest",
    "shard_filename",
    "write_shard",
]
