"""The out-of-core embedding store engine.

:class:`EmbeddingStore` turns a directory of checksummed, fixed-width
shard files into a row-addressable table service:

* **build** — arrays land shard-by-shard through the atomic
  ``tmp → fsync → rename`` path, then a self-checksummed manifest is
  written strictly last; a crash anywhere leaves either the previous
  store or no manifest, never a half-described one;
* **open** — parses and self-verifies the manifest only; shard files
  are mmap'd lazily, so cold-start cost is O(manifest), not O(catalog);
* **read** — rows are gathered through a bounded LRU page cache
  (:class:`repro.core.cache.LRUDict`, the serving-cache idiom); pages
  are CRC-verified on first fault, and a failed page joins the
  quarantine set instead of crashing the reader — subsequent touches
  raise :class:`QuarantinedRowError`, which the resilient serving
  facade resolves stale → fallback;
* **scrub / verify** — an eager sweep over every page, quarantining
  (or just reporting) damage;
* **repair** — quarantined pages are rebuilt byte-exactly from a
  sibling replica store (or a store built from the last good
  checkpoint), re-verified against *this* manifest's CRCs, and
  rewritten atomically.

Every counter lives under ``store.*`` in a
:class:`repro.obs.metrics.MetricsRegistry`, and nothing here touches
the wall clock or an unseeded RNG — two identical call sequences
produce byte-identical metrics, which the storage-chaos gate diffs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.cache import LRUDict
from ..obs.metrics import MetricsRegistry
from ..reliability.checkpoint import atomic_write_bytes
from .errors import QuarantinedRowError, StoreManifestError, StoreSchemaError
from .layout import (
    DEFAULT_PAGE_BYTES,
    MANIFEST_NAME,
    STORE_VERSION,
    TableSpec,
    parse_manifest,
    seal_manifest,
    canonical_json,
    shard_filename,
    spec_for_array,
    shard_row_ids,
    specs_from_manifest,
)
from .shard import ShardInfo, ShardReader, StreamingShardWriter, write_shard

#: ``(table, shard, page)`` — the quarantine / cache addressing unit.
PageKey = Tuple[str, int, int]


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one :meth:`EmbeddingStore.scrub` / ``verify`` sweep."""

    pages_scanned: int
    pages_bad: int
    bad_pages: Tuple[PageKey, ...]

    @property
    def clean(self) -> bool:
        return self.pages_bad == 0

    def as_row(self) -> str:
        return (
            f"scrub: {self.pages_scanned} pages scanned | "
            f"{self.pages_bad} bad | "
            f"quarantined {list(self.bad_pages)}"
        )


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one :meth:`EmbeddingStore.repair` pass."""

    pages_repaired: int
    pages_unrepairable: int
    repaired: Tuple[PageKey, ...]
    unrepairable: Tuple[PageKey, ...]

    @property
    def complete(self) -> bool:
        return self.pages_unrepairable == 0

    def as_row(self) -> str:
        return (
            f"repair: {self.pages_repaired} pages repaired | "
            f"{self.pages_unrepairable} unrepairable | "
            f"fixed {list(self.repaired)}"
        )


@dataclass
class _Table:
    """Runtime state of one table: spec, shard records, readers."""

    spec: TableSpec
    shards: List[ShardInfo]
    readers: Dict[int, ShardReader] = field(default_factory=dict)


@dataclass(frozen=True)
class RowSource:
    """Declared geometry plus a row-chunk iterator for a streamed build.

    ``chunks`` is a zero-argument callable returning an iterable of 2-D+
    row blocks (``(n, *row_shape)``, dtype exactly ``dtype``) that
    concatenate to the full table.  A callable — not a bare iterator —
    so a failed build can be retried and so sources stay reusable;
    chunk sizing is the producer's RAM knob and never changes the bytes
    on disk.
    """

    dtype: str
    row_shape: Tuple[int, ...]
    rows: int
    chunks: "object"  # Callable[[], Iterable[np.ndarray]]

    @classmethod
    def from_array(cls, array: np.ndarray, chunk_rows: int = 0) -> "RowSource":
        """Wrap an in-RAM array (optionally re-chunked for tests)."""
        array = np.ascontiguousarray(array)
        if array.ndim < 1:
            raise StoreSchemaError("a row source must be at least 1-D")
        step = chunk_rows if chunk_rows > 0 else max(1, int(array.shape[0]))

        def _chunks() -> List[np.ndarray]:
            return [
                array[start : start + step]
                for start in range(0, array.shape[0], step)
            ]

        return cls(
            dtype=str(array.dtype),
            row_shape=tuple(int(d) for d in array.shape[1:]),
            rows=int(array.shape[0]),
            chunks=_chunks,
        )


class EmbeddingStore:
    """Checksummed, mmap-backed, quarantine-aware embedding tables."""

    def __init__(
        self,
        directory: Union[str, Path],
        tables: Dict[str, _Table],
        metadata: Dict,
        page_bytes: int,
        cache_pages: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self._tables = tables
        self.metadata = metadata
        self.page_bytes = page_bytes
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._cache = LRUDict(max(1, cache_pages))
        self.quarantine: set = set()
        self._hits_c = self.metrics.counter(
            "store.page_hits", help="Page-cache hits"
        )
        self._faults_c = self.metrics.counter(
            "store.page_faults", help="Pages faulted in from disk"
        )
        self._evictions_c = self.metrics.counter(
            "store.page_evictions", help="Page-cache evictions"
        )
        self._crc_failures_c = self.metrics.counter(
            "store.crc_failures", help="Pages that failed CRC verification"
        )
        self._quarantined_c = self.metrics.counter(
            "store.pages_quarantined", help="Pages placed in quarantine"
        )
        self._quarantined_reads_c = self.metrics.counter(
            "store.quarantined_reads", help="Row reads denied by quarantine"
        )
        self._scrub_pages_c = self.metrics.counter(
            "store.scrub_pages", help="Pages scanned by scrub/verify"
        )
        self._repaired_c = self.metrics.counter(
            "store.pages_repaired", help="Quarantined pages rebuilt"
        )
        self._unrepairable_c = self.metrics.counter(
            "store.pages_unrepairable", help="Quarantined pages with no good source"
        )
        self._bytes_read_c = self.metrics.counter(
            "store.bytes_read", help="Payload bytes faulted in from disk"
        )
        self._quarantine_g = self.metrics.gauge(
            "store.quarantine_size", help="Pages currently quarantined"
        )
        self._cache_g = self.metrics.gauge(
            "store.cached_pages", help="Pages resident in the LRU cache"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        directory: Union[str, Path],
        arrays: Mapping[str, np.ndarray],
        *,
        num_shards: int = 1,
        layout: str = "contiguous",
        page_bytes: int = DEFAULT_PAGE_BYTES,
        metadata: Optional[Mapping] = None,
        cache_pages: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> "EmbeddingStore":
        """Write a store for ``arrays`` and return it opened.

        Shard payloads land first (each atomically), the sealed manifest
        strictly last — the checkpoint discipline, so a crash mid-build
        leaves no manifest and the directory reads as "no store" rather
        than a torn one.  Same arrays, same parameters → byte-identical
        files, which the chaos gate diffs across runs.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if not arrays:
            raise StoreSchemaError("a store needs at least one table")
        tables: Dict[str, _Table] = {}
        manifest_tables: Dict[str, dict] = {}
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            spec = spec_for_array(name, array, num_shards, layout, page_bytes)
            page_nbytes = spec.rows_per_page * spec.row_nbytes
            infos: List[ShardInfo] = []
            for shard in range(spec.num_shards):
                rows = shard_row_ids(spec, shard)
                data = array[rows].tobytes() if rows else b""
                infos.append(
                    write_shard(
                        directory,
                        shard_filename(name, shard),
                        data,
                        page_nbytes,
                    )
                )
            entry = spec.to_manifest()
            entry["shards"] = [info.to_manifest() for info in infos]
            manifest_tables[name] = entry
            tables[name] = _Table(spec=spec, shards=infos)
        return cls._finalize_build(
            directory,
            tables,
            manifest_tables,
            page_bytes,
            metadata,
            cache_pages,
            registry,
        )

    @classmethod
    def build_from_rows(
        cls,
        directory: Union[str, Path],
        sources: Mapping[str, "RowSource"],
        *,
        num_shards: int = 1,
        layout: str = "contiguous",
        page_bytes: int = DEFAULT_PAGE_BYTES,
        metadata: Optional[Mapping] = None,
        cache_pages: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> "EmbeddingStore":
        """:meth:`build` from row iterators — bounded by chunk size, not
        table size.

        Each table streams through one pass of its source: chunks are
        routed to per-shard :class:`StreamingShardWriter`\\ s (contiguous
        spans or strided masks), so peak memory is one chunk plus one
        partial page per shard.  The resulting shard files, manifest,
        and checksums are byte-identical to an in-RAM :meth:`build` of
        the concatenated chunks — the storage-chaos gate relies on it.
        Dtype, row shape, and row count are enforced against the
        declared geometry; any mismatch aborts every open temp file and
        leaves no manifest.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if not sources:
            raise StoreSchemaError("a store needs at least one table")
        tables: Dict[str, _Table] = {}
        manifest_tables: Dict[str, dict] = {}
        for name in sorted(sources):
            source = sources[name]
            spec = TableSpec(
                name=name,
                dtype=str(source.dtype),
                row_shape=tuple(int(d) for d in source.row_shape),
                rows=int(source.rows),
                num_shards=num_shards,
                layout=layout,
                page_bytes=page_bytes,
            )
            infos = cls._stream_table(directory, spec, source)
            entry = spec.to_manifest()
            entry["shards"] = [info.to_manifest() for info in infos]
            manifest_tables[name] = entry
            tables[name] = _Table(spec=spec, shards=infos)
        return cls._finalize_build(
            directory,
            tables,
            manifest_tables,
            page_bytes,
            metadata,
            cache_pages,
            registry,
        )

    @staticmethod
    def _stream_table(
        directory: Path,
        spec: TableSpec,
        source: "RowSource",
    ) -> List[ShardInfo]:
        """One streaming pass of ``source`` into per-shard writers."""
        page_nbytes = spec.rows_per_page * spec.row_nbytes
        dtype = np.dtype(spec.dtype)
        writers = [
            StreamingShardWriter(
                directory, shard_filename(spec.name, shard), page_nbytes
            )
            for shard in range(spec.num_shards)
        ]
        per = spec.rows_per_contiguous_shard
        offset = 0
        try:
            for chunk in source.chunks():
                chunk = np.ascontiguousarray(chunk)
                if chunk.dtype != dtype:
                    raise StoreSchemaError(
                        f"table {spec.name!r}: chunk dtype {chunk.dtype} "
                        f"!= declared {dtype}"
                    )
                if tuple(chunk.shape[1:]) != spec.row_shape:
                    raise StoreSchemaError(
                        f"table {spec.name!r}: chunk row shape "
                        f"{tuple(chunk.shape[1:])} != declared {spec.row_shape}"
                    )
                n = int(chunk.shape[0])
                if offset + n > spec.rows:
                    raise StoreSchemaError(
                        f"table {spec.name!r}: source yielded more than the "
                        f"declared {spec.rows} rows"
                    )
                if spec.layout == "strided":
                    globals_ = offset + np.arange(n)
                    for shard, writer in enumerate(writers):
                        part = chunk[globals_ % spec.num_shards == shard]
                        if part.shape[0]:
                            writer.write(np.ascontiguousarray(part).tobytes())
                else:
                    start = 0
                    while start < n:
                        shard = (offset + start) // per
                        stop = min(n, (shard + 1) * per - offset)
                        writers[shard].write(
                            np.ascontiguousarray(chunk[start:stop]).tobytes()
                        )
                        start = stop
                offset += n
            if offset != spec.rows:
                raise StoreSchemaError(
                    f"table {spec.name!r}: source yielded {offset} rows, "
                    f"declared {spec.rows}"
                )
        except BaseException:
            for writer in writers:
                writer.abort()
            raise
        return [writer.finish() for writer in writers]

    @classmethod
    def _finalize_build(
        cls,
        directory: Path,
        tables: Dict[str, _Table],
        manifest_tables: Dict[str, dict],
        page_bytes: int,
        metadata: Optional[Mapping],
        cache_pages: int,
        registry: Optional[MetricsRegistry],
    ) -> "EmbeddingStore":
        """Seal the manifest (strictly last) and open the built store."""
        document = seal_manifest(
            {
                "version": STORE_VERSION,
                "page_bytes": page_bytes,
                "metadata": dict(metadata) if metadata is not None else {},
                "tables": manifest_tables,
            }
        )
        atomic_write_bytes(
            directory / MANIFEST_NAME,
            canonical_json(document),
        )
        store = cls(
            directory,
            tables,
            document["metadata"],
            page_bytes,
            cache_pages=cache_pages,
            registry=registry,
        )
        store._attach_readers()
        return store

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        cache_pages: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> "EmbeddingStore":
        """Open an existing store, verifying only the manifest.

        Shard bytes are *not* touched here: page CRCs verify lazily on
        first fault, so a server cold-starts on a catalog far larger
        than its page-cache budget.  A damaged manifest fails closed
        with :class:`StoreManifestError`.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreManifestError(f"no store manifest under {directory}")
        document = parse_manifest(manifest_path.read_bytes())
        specs = specs_from_manifest(document)
        tables: Dict[str, _Table] = {}
        for name, spec in specs.items():
            entries = document["tables"][name].get("shards")
            if not isinstance(entries, list) or len(entries) != spec.num_shards:
                raise StoreManifestError(
                    f"table {name!r}: manifest lists "
                    f"{0 if not isinstance(entries, list) else len(entries)} "
                    f"shards, spec says {spec.num_shards}"
                )
            try:
                infos = [ShardInfo.from_manifest(entry) for entry in entries]
            except (KeyError, TypeError, ValueError) as error:
                raise StoreManifestError(
                    f"table {name!r}: malformed shard entry ({error})"
                ) from error
            tables[name] = _Table(spec=spec, shards=infos)
        store = cls(
            directory,
            tables,
            document.get("metadata", {}),
            int(document.get("page_bytes", DEFAULT_PAGE_BYTES)),
            cache_pages=cache_pages,
            registry=registry,
        )
        store._attach_readers()
        return store

    def _attach_readers(self) -> None:
        for name, table in self._tables.items():
            table.readers = {
                shard: ShardReader(
                    self.directory / info.file, table.spec, shard, info
                )
                for shard, info in enumerate(table.shards)
            }

    def close(self) -> None:
        """Release every mmap (tests and repair re-open as needed)."""
        for table in self._tables.values():
            for reader in table.readers.values():
                reader.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def spec(self, name: str) -> TableSpec:
        return self._table(name).spec

    def _table(self, name: str) -> _Table:
        if name not in self._tables:
            raise StoreSchemaError(f"store has no table {name!r}")
        return self._tables[name]

    @property
    def nbytes(self) -> int:
        """Total payload bytes across every table."""
        return sum(t.spec.nbytes for t in self._tables.values())

    def quarantined_pages(self) -> List[PageKey]:
        """The quarantine set, sorted for deterministic reports."""
        return sorted(self.quarantine)

    def quarantined_rows(self, name: str) -> List[int]:
        """Global row ids of ``name`` currently unreadable, ascending."""
        table = self._table(name)
        rows: List[int] = []
        for key_name, shard, page in self.quarantine:
            if key_name != name:
                continue
            start, stop = table.spec.page_rows(shard, page)
            rows.extend(
                table.spec.global_row(shard, local)
                for local in range(start, stop)
            )
        return sorted(rows)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _load_page(self, name: str, shard: int, page: int) -> bytes:
        """One page through the cache; quarantines CRC failures."""
        key: PageKey = (name, shard, page)
        if key in self.quarantine:
            self._quarantined_reads_c.inc()
            raise QuarantinedRowError(
                name, self._tables[name].spec.global_row(
                    shard, page * self._tables[name].spec.rows_per_page
                ), shard, page
            )
        cached = self._cache.get(key)
        if cached is not None:
            self._hits_c.inc()
            return cached
        table = self._tables[name]
        data, ok = table.readers[shard].read_page(page)
        self._faults_c.inc()
        self._bytes_read_c.inc(len(data))
        if not ok:
            self._crc_failures_c.inc()
            self._quarantine_page(key)
            self._quarantined_reads_c.inc()
            raise QuarantinedRowError(
                name,
                table.spec.global_row(shard, page * table.spec.rows_per_page),
                shard,
                page,
            )
        evicted = self._cache.put(key, data)
        if evicted:
            self._evictions_c.inc(evicted)
        self._cache_g.set(len(self._cache))
        return data

    def _quarantine_page(self, key: PageKey) -> None:
        if key not in self.quarantine:
            self.quarantine.add(key)
            self._quarantined_c.inc()
            self._quarantine_g.set(len(self.quarantine))
        self._cache.discard(key)

    def read_row(self, name: str, row: int) -> np.ndarray:
        """One row as a fresh array of the table's row shape."""
        table = self._table(name)
        spec = table.spec
        if row < 0:
            row += spec.rows
        shard, local = spec.locate(int(row))
        page = spec.page_of(local)
        data = self._load_page(name, shard, page)
        offset = (local - page * spec.rows_per_page) * spec.row_nbytes
        out = np.frombuffer(
            data, dtype=spec.dtype, count=spec.row_elems, offset=offset
        ).reshape(spec.row_shape)
        return out.copy()

    def read_rows(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Gather ``rows`` (any integer shape) → ``rows.shape + row_shape``.

        Damage surfaces per-request: the first quarantined page touched
        raises :class:`QuarantinedRowError` naming a row on it.
        """
        table = self._table(name)
        spec = table.spec
        index = np.asarray(rows)
        if index.dtype == np.bool_:
            raise TypeError("boolean masks are not supported by the store")
        flat = index.reshape(-1).astype(np.int64)
        flat = np.where(flat < 0, flat + spec.rows, flat)
        if flat.size and (flat.min() < 0 or flat.max() >= spec.rows):
            bad = flat[(flat < 0) | (flat >= spec.rows)][0]
            raise IndexError(
                f"row {int(bad)} out of range for table {name!r} "
                f"({spec.rows} rows)"
            )
        out = np.empty((flat.size, spec.row_elems), dtype=spec.dtype)
        for position, row in enumerate(flat):
            shard, local = spec.locate(int(row))
            page = spec.page_of(local)
            data = self._load_page(name, shard, page)
            offset = (local - page * spec.rows_per_page) * spec.row_nbytes
            out[position] = np.frombuffer(
                data, dtype=spec.dtype, count=spec.row_elems, offset=offset
            )
        return out.reshape(index.shape + spec.row_shape)

    def read_table(self, name: str) -> np.ndarray:
        """Materialize a whole table (through the page cache)."""
        spec = self._table(name).spec
        return self.read_rows(name, np.arange(spec.rows, dtype=np.int64))

    # ------------------------------------------------------------------
    # Scrub / verify
    # ------------------------------------------------------------------
    def iter_page_keys(self) -> List[PageKey]:
        """Every ``(table, shard, page)`` key, in sweep order.

        The canonical enumeration shared by the eager sweeps below and
        the incremental :class:`~repro.store.scrub.ScrubScheduler`.
        """
        keys: List[PageKey] = []
        for name in self.table_names():
            spec = self._tables[name].spec
            for shard in range(spec.num_shards):
                for page in range(spec.shard_pages(shard)):
                    keys.append((name, shard, page))
        return keys

    def check_page(self, key: PageKey, *, quarantine: bool = True) -> bool:
        """CRC-verify one page without touching the row-read path.

        Reads go through the shard reader directly — never
        ``_load_page`` — so a background sweep neither pollutes the LRU
        page cache nor shows up in the foreground hit/fault counters.
        An already-quarantined page reports ``False`` without a read;
        a fresh CRC failure is quarantined when ``quarantine`` is set.
        """
        name, shard, page = key
        table = self._table(name)
        self._scrub_pages_c.inc()
        if key in self.quarantine:
            return False
        _, ok = table.readers[shard].read_page(page)
        if not ok:
            self._crc_failures_c.inc()
            if quarantine:
                self._quarantine_page(key)
        return bool(ok)

    def _sweep(self, quarantine: bool) -> ScrubReport:
        scanned, bad = 0, []
        for key in self.iter_page_keys():
            scanned += 1
            if not self.check_page(key, quarantine=quarantine):
                bad.append(key)
        return ScrubReport(
            pages_scanned=scanned,
            pages_bad=len(bad),
            bad_pages=tuple(sorted(bad)),
        )

    def scrub(self) -> ScrubReport:
        """Eagerly verify every page, quarantining the damaged ones."""
        return self._sweep(quarantine=True)

    def verify(self) -> ScrubReport:
        """Report-only :meth:`scrub`: nothing is quarantined."""
        return self._sweep(quarantine=False)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, replica: "EmbeddingStore") -> RepairReport:
        """Rebuild quarantined pages from a sibling replica store.

        ``replica`` is any store holding the same tables — a mirrored
        build, or one reconstructed from the last good checkpoint.
        Donor pages are verified against the *replica's* manifest CRC
        first and against *this* manifest's CRC after patching, so a
        corrupt donor can never be stitched in.  Patched shard files are
        rewritten atomically; a fully repaired shard is byte-identical
        to the original build.
        """
        repaired: List[PageKey] = []
        unrepairable: List[PageKey] = []
        by_shard: Dict[Tuple[str, int], List[int]] = {}
        for name, shard, page in sorted(self.quarantine):
            by_shard.setdefault((name, shard), []).append(page)
        for (name, shard), pages in sorted(by_shard.items()):
            table = self._tables[name]
            spec = table.spec
            info = table.shards[shard]
            try:
                donor_table = replica._table(name)
            except StoreSchemaError:
                unrepairable.extend((name, shard, page) for page in pages)
                continue
            if donor_table.spec != spec:
                unrepairable.extend((name, shard, page) for page in pages)
                continue
            current = bytearray(table.readers[shard].raw_bytes())
            if len(current) < info.nbytes:  # torn write: restore length
                current.extend(b"\x00" * (info.nbytes - len(current)))
            patched: List[int] = []
            for page in pages:
                donor, ok = donor_table.readers[shard].read_page(page)
                start, stop = spec.page_byte_range(shard, page)
                if not ok or len(donor) != stop - start:
                    unrepairable.append((name, shard, page))
                    continue
                if zlib.crc32(donor) != info.page_crcs[page]:
                    # Donor disagrees with OUR manifest — wrong replica.
                    unrepairable.append((name, shard, page))
                    continue
                current[start:stop] = donor
                patched.append(page)
            if not patched:
                continue
            table.readers[shard].close()
            atomic_write_bytes(self.directory / info.file, bytes(current))
            for page in patched:
                key: PageKey = (name, shard, page)
                self.quarantine.discard(key)
                self._cache.discard(key)
                repaired.append(key)
        if repaired:
            self._repaired_c.inc(len(repaired))
            self._quarantine_g.set(len(self.quarantine))
        if unrepairable:
            self._unrepairable_c.inc(len(unrepairable))
        return RepairReport(
            pages_repaired=len(repaired),
            pages_unrepairable=len(unrepairable),
            repaired=tuple(sorted(repaired)),
            unrepairable=tuple(sorted(unrepairable)),
        )

    # ------------------------------------------------------------------
    # Manifest recovery
    # ------------------------------------------------------------------
    @staticmethod
    def restore_manifest(
        directory: Union[str, Path], replica_directory: Union[str, Path]
    ) -> Path:
        """Atomically re-copy a validated manifest from a replica.

        The recovery path for a truncated / corrupted manifest: shard
        payloads may be fine, but nothing can be trusted without a
        manifest, so the replica's (self-verified first) is installed
        and a subsequent :meth:`open` + :meth:`scrub` decides which
        pages actually need repair.
        """
        source = Path(replica_directory) / MANIFEST_NAME
        if not source.exists():
            raise StoreManifestError(
                f"replica has no manifest under {replica_directory}"
            )
        payload = source.read_bytes()
        parse_manifest(payload)  # fail closed on a damaged donor
        target = Path(directory) / MANIFEST_NAME
        atomic_write_bytes(target, payload)
        return target
