"""On-disk geometry of the embedding store.

A store directory holds one checksummed JSON manifest plus one raw
binary file per (table, shard)::

    <dir>/manifest.json
    <dir>/<table>-<shard:04d>.bin

Each table is a fixed-width row array: row ``r`` of ``entity_table``
is ``dim`` float64 values, row ``r`` of ``transfer`` is a flattened
``dim x dim`` matrix, and so on.  Rows never span shard files, and
pages are *row-aligned*: a page holds ``rows_per_page`` whole rows
(``max(1, page_bytes // row_nbytes)``), so a single CRC failure
quarantines a known row range instead of tearing rows in half.

Two row→shard layouts are supported:

* ``contiguous`` — shard ``s`` holds the dense row range
  ``[s * per, (s + 1) * per)`` (``per = ceil(rows / num_shards)``);
  the default for serving tables, where scans stay sequential;
* ``strided`` — shard ``s`` holds rows ``r`` with
  ``r % num_shards == s``, matching
  :meth:`repro.distributed.ParameterServer.shard_of`, so a PS shard
  maps onto exactly one file.

The manifest carries a ``checksum`` field: the SHA-256 of its own
canonical JSON with that field removed.  A truncated or bit-flipped
manifest therefore fails closed (:class:`StoreManifestError`) instead
of silently describing the wrong bytes.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from .errors import StoreManifestError, StoreSchemaError

MANIFEST_NAME = "manifest.json"
STORE_VERSION = 1
DEFAULT_PAGE_BYTES = 4096
LAYOUTS = ("contiguous", "strided")

#: Table names become file-name stems, so keep them path-safe.
_TABLE_NAME_RE = re.compile(r"[A-Za-z0-9_.]+\Z")


def shard_filename(table: str, shard: int) -> str:
    """Canonical shard file name for ``(table, shard)``."""
    return f"{table}-{shard:04d}.bin"


@dataclass(frozen=True)
class TableSpec:
    """Schema and shard geometry of one fixed-width table."""

    name: str
    dtype: str
    row_shape: Tuple[int, ...]
    rows: int
    num_shards: int
    layout: str
    page_bytes: int

    def __post_init__(self) -> None:
        if not _TABLE_NAME_RE.match(self.name):
            raise StoreSchemaError(
                f"table name {self.name!r} must match {_TABLE_NAME_RE.pattern}"
            )
        if self.rows < 0:
            raise StoreSchemaError(f"table {self.name!r}: rows must be >= 0")
        if self.num_shards < 1:
            raise StoreSchemaError(f"table {self.name!r}: num_shards must be >= 1")
        if self.layout not in LAYOUTS:
            raise StoreSchemaError(
                f"table {self.name!r}: layout must be one of {LAYOUTS}, "
                f"got {self.layout!r}"
            )
        if self.page_bytes < 1:
            raise StoreSchemaError(f"table {self.name!r}: page_bytes must be >= 1")
        object.__setattr__(self, "row_shape", tuple(int(d) for d in self.row_shape))

    # -- row geometry ---------------------------------------------------
    @property
    def row_nbytes(self) -> int:
        """Bytes per row (dtype itemsize times the row element count)."""
        return int(np.dtype(self.dtype).itemsize * self.row_elems)

    @property
    def row_elems(self) -> int:
        count = 1
        for dim in self.row_shape:
            count *= dim
        return count

    @property
    def shape(self) -> Tuple[int, ...]:
        return (self.rows, *self.row_shape)

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_nbytes

    @property
    def rows_per_page(self) -> int:
        """Whole rows per page — at least one, even for oversized rows."""
        return max(1, self.page_bytes // max(self.row_nbytes, 1))

    # -- shard geometry -------------------------------------------------
    @property
    def rows_per_contiguous_shard(self) -> int:
        return -(-self.rows // self.num_shards) if self.rows else 0

    def shard_rows(self, shard: int) -> int:
        """Local row count of one shard."""
        self._check_shard(shard)
        if self.layout == "strided":
            return len(range(shard, self.rows, self.num_shards))
        per = self.rows_per_contiguous_shard
        return max(0, min(self.rows, (shard + 1) * per) - shard * per)

    def shard_nbytes(self, shard: int) -> int:
        return self.shard_rows(shard) * self.row_nbytes

    def shard_pages(self, shard: int) -> int:
        rows = self.shard_rows(shard)
        return -(-rows // self.rows_per_page) if rows else 0

    def locate(self, row: int) -> Tuple[int, int]:
        """Global row → ``(shard, local_row)``."""
        if not 0 <= row < self.rows:
            raise IndexError(
                f"row {row} out of range for table {self.name!r} "
                f"({self.rows} rows)"
            )
        if self.layout == "strided":
            return row % self.num_shards, row // self.num_shards
        per = self.rows_per_contiguous_shard
        return row // per, row % per

    def global_row(self, shard: int, local_row: int) -> int:
        """``(shard, local_row)`` → global row (inverse of :meth:`locate`)."""
        self._check_shard(shard)
        if self.layout == "strided":
            return local_row * self.num_shards + shard
        return shard * self.rows_per_contiguous_shard + local_row

    def page_of(self, local_row: int) -> int:
        return local_row // self.rows_per_page

    def page_rows(self, shard: int, page: int) -> Tuple[int, int]:
        """Local ``[start, stop)`` row range covered by one page."""
        start = page * self.rows_per_page
        stop = min(self.shard_rows(shard), start + self.rows_per_page)
        return start, stop

    def page_byte_range(self, shard: int, page: int) -> Tuple[int, int]:
        """Byte ``[start, stop)`` range of one page inside its shard file."""
        start, stop = self.page_rows(shard, page)
        return start * self.row_nbytes, stop * self.row_nbytes

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise IndexError(
                f"shard {shard} out of range for table {self.name!r} "
                f"({self.num_shards} shards)"
            )

    # -- (de)serialization ----------------------------------------------
    def to_manifest(self) -> Dict:
        return {
            "dtype": self.dtype,
            "row_shape": list(self.row_shape),
            "rows": self.rows,
            "num_shards": self.num_shards,
            "layout": self.layout,
            "page_bytes": self.page_bytes,
        }

    @classmethod
    def from_manifest(cls, name: str, doc: Mapping) -> "TableSpec":
        try:
            return cls(
                name=name,
                dtype=str(doc["dtype"]),
                row_shape=tuple(doc["row_shape"]),
                rows=int(doc["rows"]),
                num_shards=int(doc["num_shards"]),
                layout=str(doc["layout"]),
                page_bytes=int(doc["page_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreSchemaError(
                f"table {name!r}: malformed manifest entry ({error})"
            ) from error


# ----------------------------------------------------------------------
# Manifest self-checksum
# ----------------------------------------------------------------------
def canonical_json(document: Mapping) -> bytes:
    """Key-sorted, whitespace-free JSON bytes — the checksum input."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def manifest_checksum(document: Mapping) -> str:
    """SHA-256 of the manifest with its ``checksum`` field removed."""
    body = {key: value for key, value in document.items() if key != "checksum"}
    return hashlib.sha256(canonical_json(body)).hexdigest()


def seal_manifest(document: Dict) -> Dict:
    """Return ``document`` with a fresh self-``checksum`` embedded."""
    sealed = dict(document)
    sealed["checksum"] = manifest_checksum(document)
    return sealed


def parse_manifest(payload: bytes) -> Dict:
    """Parse and self-verify manifest bytes; fail closed on any damage."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StoreManifestError(f"unreadable store manifest: {error}") from error
    if not isinstance(document, dict):
        raise StoreManifestError("store manifest is not a JSON object")
    declared = document.get("checksum")
    actual = manifest_checksum(document)
    if declared != actual:
        raise StoreManifestError(
            f"store manifest failed its self-checksum: declared "
            f"{declared!r}, recomputed {actual!r}"
        )
    version = document.get("version")
    if version != STORE_VERSION:
        raise StoreManifestError(
            f"unsupported store version {version!r} (expected {STORE_VERSION})"
        )
    return document


def specs_from_manifest(document: Mapping) -> Dict[str, TableSpec]:
    """Every :class:`TableSpec` in a parsed manifest, keyed by name."""
    tables = document.get("tables")
    if not isinstance(tables, dict):
        raise StoreManifestError("store manifest has no 'tables' object")
    return {
        name: TableSpec.from_manifest(name, entry)
        for name, entry in sorted(tables.items())
    }


def spec_for_array(
    name: str,
    array: np.ndarray,
    num_shards: int,
    layout: str,
    page_bytes: int,
) -> TableSpec:
    """The :class:`TableSpec` describing an in-RAM array."""
    array = np.asarray(array)
    if array.ndim < 1:
        raise StoreSchemaError(f"table {name!r} must be at least 1-D")
    return TableSpec(
        name=name,
        dtype=str(array.dtype),
        row_shape=tuple(int(d) for d in array.shape[1:]),
        rows=int(array.shape[0]),
        num_shards=num_shards,
        layout=layout,
        page_bytes=page_bytes,
    )


def shard_row_ids(spec: TableSpec, shard: int) -> List[int]:
    """Global row ids resident on one shard, in local-row order."""
    if spec.layout == "strided":
        return list(range(shard, spec.rows, spec.num_shards))
    per = spec.rows_per_contiguous_shard
    return list(range(shard * per, min(spec.rows, (shard + 1) * per)))
