"""Shard files: atomic writes, mmap reads, per-page CRC verification.

A shard file is nothing but the raw fixed-width rows of its table
slice — no header, no framing.  All integrity metadata (page CRC32s,
whole-file SHA-256, byte size) lives in the store manifest, written
strictly after every payload in the ``tmp → fsync → rename``
discipline of :mod:`repro.reliability.checkpoint`.  That split keeps
the data path dense and mmap-friendly while making damage *detectable*
at page granularity: a torn write shortens the file (every page past
the tear fails), a bit flip fails exactly one page.

:class:`ShardReader` maps the file read-only and verifies pages
lazily: bytes are CRC-checked the first time a page is faulted in, not
at open, so cold-start cost is proportional to the manifest — not the
catalog.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..reliability.checkpoint import (
    atomic_tmp_path,
    atomic_write_bytes,
    fsync_directory,
)
from .layout import TableSpec


def page_crc32s(data: bytes, page_nbytes: int) -> List[int]:
    """CRC32 of each ``page_nbytes`` slice of ``data`` (last may be short)."""
    if page_nbytes < 1:
        raise ValueError("page_nbytes must be >= 1")
    return [
        zlib.crc32(data[start : start + page_nbytes])
        for start in range(0, len(data), page_nbytes)
    ]


@dataclass(frozen=True)
class ShardInfo:
    """Manifest-side integrity record of one shard file."""

    file: str
    nbytes: int
    sha256: str
    page_crcs: Tuple[int, ...]

    def to_manifest(self) -> dict:
        return {
            "file": self.file,
            "nbytes": self.nbytes,
            "sha256": self.sha256,
            "page_crcs": list(self.page_crcs),
        }

    @classmethod
    def from_manifest(cls, doc: dict) -> "ShardInfo":
        return cls(
            file=str(doc["file"]),
            nbytes=int(doc["nbytes"]),
            sha256=str(doc["sha256"]),
            page_crcs=tuple(int(c) for c in doc["page_crcs"]),
        )


def write_shard(
    directory: Union[str, Path],
    filename: str,
    data: bytes,
    page_nbytes: int,
) -> ShardInfo:
    """Atomically write one shard file; returns its integrity record."""
    path = Path(directory) / filename
    digest = atomic_write_bytes(path, data)
    return ShardInfo(
        file=filename,
        nbytes=len(data),
        sha256=digest,
        page_crcs=tuple(page_crc32s(data, page_nbytes)),
    )


class StreamingShardWriter:
    """Incremental :func:`write_shard`: same bytes, bounded memory.

    ``write`` chunks append to a same-directory temp file while the
    SHA-256 and page CRCs accumulate incrementally; a partial trailing
    page is carried between chunks so CRC boundaries match a one-shot
    write exactly.  ``finish`` flushes, fsyncs, renames over the
    destination and fsyncs the directory — the identical crash contract
    to :func:`repro.reliability.checkpoint.atomic_write_bytes` — and
    returns a :class:`ShardInfo` byte-for-byte equal to what
    ``write_shard`` would have produced for the concatenated chunks.
    A crash (or ``abort``) before ``finish`` leaves only a temp file
    the manifest never names.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        filename: str,
        page_nbytes: int,
    ) -> None:
        if page_nbytes < 1:
            raise ValueError("page_nbytes must be >= 1")
        self.directory = Path(directory)
        self.filename = filename
        self.page_nbytes = page_nbytes
        self._path = self.directory / filename
        self._tmp = atomic_tmp_path(self._path)
        self._handle = open(self._tmp, "wb")
        self._digest = hashlib.sha256()
        self._crcs: List[int] = []
        self._carry = b""
        self._nbytes = 0
        self._done = False

    def write(self, data: bytes) -> None:
        """Append one chunk (any size, including empty)."""
        if self._done:
            raise RuntimeError("writer already finished/aborted")
        data = bytes(data)
        if not data:
            return
        self._handle.write(data)
        self._digest.update(data)
        self._nbytes += len(data)
        buffered = self._carry + data
        full = (len(buffered) // self.page_nbytes) * self.page_nbytes
        for start in range(0, full, self.page_nbytes):
            self._crcs.append(
                zlib.crc32(buffered[start : start + self.page_nbytes])
            )
        self._carry = buffered[full:]

    def finish(self) -> ShardInfo:
        """Seal the shard: fsync, rename, dir-fsync; return its record."""
        if self._done:
            raise RuntimeError("writer already finished/aborted")
        self._done = True
        if self._carry:
            self._crcs.append(zlib.crc32(self._carry))
            self._carry = b""
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._tmp, self._path)
        finally:
            if self._tmp.exists():
                self._tmp.unlink()
        fsync_directory(self.directory)
        return ShardInfo(
            file=self.filename,
            nbytes=self._nbytes,
            sha256=self._digest.hexdigest(),
            page_crcs=tuple(self._crcs),
        )

    def abort(self) -> None:
        """Discard the temp file; the destination is untouched."""
        if self._done:
            return
        self._done = True
        self._handle.close()
        if self._tmp.exists():
            self._tmp.unlink()


class ShardReader:
    """Read-only mmap view of one shard file with CRC-checked pages.

    ``read_page`` returns ``(data, ok)``: ``ok`` is ``False`` when the
    page's bytes are missing (file shorter than the manifest says — a
    torn write) or fail their manifest CRC (bit rot).  The reader never
    raises for damage; quarantine policy belongs to the store.
    """

    def __init__(self, path: Union[str, Path], spec: TableSpec, shard: int,
                 info: ShardInfo) -> None:
        self.path = Path(path)
        self.spec = spec
        self.shard = shard
        self.info = info
        self._mmap: Optional[mmap.mmap] = None
        self._file = None
        self._size = 0
        self._opened = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._opened:
            return
        self._opened = True
        try:
            self._file = open(self.path, "rb")
            self._size = os.fstat(self._file.fileno()).st_size
            if self._size > 0:
                self._mmap = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError:
            # Missing/unreadable file: every page reads as damaged.
            self.close()
            self._opened = True

    def close(self) -> None:
        """Release the mapping (repair reopens a fresh one)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._size = 0
        self._opened = False

    # -- page access ----------------------------------------------------
    def read_page(self, page: int) -> Tuple[bytes, bool]:
        """``(bytes, ok)`` for one page, verified against its CRC."""
        start, stop = self.spec.page_byte_range(self.shard, page)
        if not 0 <= page < len(self.info.page_crcs):
            return b"", False
        self._ensure_open()
        if self._mmap is None or stop > self._size:
            # Torn write / truncation: the page is (partly) gone.
            return b"", False
        data = bytes(self._mmap[start:stop])
        if zlib.crc32(data) != self.info.page_crcs[page]:
            return data, False
        return data, True

    def raw_bytes(self) -> bytes:
        """Whatever is on disk right now (may be short; repair input)."""
        self._ensure_open()
        if self._mmap is None:
            return b""
        return bytes(self._mmap[: self._size])
