"""Exception taxonomy for the out-of-core embedding store.

Kept dependency-free on purpose: :mod:`repro.reliability.serving`
imports :class:`QuarantinedRowError` to route damaged rows through the
degraded-read path, and :mod:`repro.store` imports the reliability
package for its atomic-write primitives — a module with no imports is
what keeps that loop from becoming a real cycle.
"""

from __future__ import annotations


class StoreError(RuntimeError):
    """Base class for every storage-engine failure."""


class StoreManifestError(StoreError):
    """The store manifest is missing, torn, unparseable, or fails its
    self-checksum — nothing under the directory can be trusted."""


class StoreSchemaError(StoreError):
    """A table is missing, or its declared schema is inconsistent."""


class QuarantinedRowError(StoreError, LookupError):
    """A read touched a page that failed its CRC and is quarantined.

    Deliberately *not* a :class:`KeyError` and *not* an ``RPCError``:
    data damage is neither a caller bug nor a transient network fault,
    so retries and circuit breakers must ignore it while the resilient
    serving facade resolves it stale → fallback instead of raising.
    """

    def __init__(self, table: str, row: int, shard: int, page: int) -> None:
        super().__init__(
            f"row {row} of table {table!r} is quarantined "
            f"(shard {shard}, page {page} failed its CRC)"
        )
        self.table = table
        self.row = row
        self.shard = shard
        self.page = page
