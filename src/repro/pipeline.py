"""End-to-end experiment pipeline: generate → pre-train → serve → fine-tune.

:func:`build_workbench` assembles every shared artifact once (catalog,
title generator, tokenizer, pre-trained PKGM + server, MLM-pre-trained
encoder weights); task runners then consume the workbench.  Benches and
examples all go through here so experiments stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .config import ExperimentConfig
from .core import (
    KeyRelationSelector,
    PKGM,
    PKGMServer,
    PKGMTrainer,
    TrainingHistory,
)
from .data import (
    Catalog,
    TitleGenerator,
    generate_catalog,
    title_vocabulary,
)
from .text import (
    MLMTrainer,
    MiniBert,
    MiniBertConfig,
    PairPretrainer,
    WordTokenizer,
)


@dataclass
class Workbench:
    """All shared artifacts of one experimental run."""

    config: ExperimentConfig
    catalog: Catalog
    titles: TitleGenerator
    tokenizer: WordTokenizer
    pkgm: PKGM
    pkgm_history: TrainingHistory
    selector: KeyRelationSelector
    server: PKGMServer
    encoder_config: MiniBertConfig
    mlm_state: Dict[str, np.ndarray]
    mlm_losses: List[float]
    pair_pretrain_losses: List[float]


def build_workbench(
    config: ExperimentConfig,
    pretrain_mlm: bool = True,
    verbose: bool = False,
) -> Workbench:
    """Run the full substrate pipeline for ``config``.

    Steps (mirroring the paper's §III-A setup):

    1. generate the synthetic catalog and its product KG (PKG-sub
       substitute);
    2. pre-train PKGM on the KG (TransE triple module + M_r relation
       module, margin loss);
    3. build the key-relation table (top-k per category) and snapshot a
       :class:`PKGMServer`;
    4. pre-train the mini-BERT with masked LM on the title corpus (the
       Google-checkpoint substitute); skipped when ``pretrain_mlm`` is
       False for speed-sensitive tests.
    """
    log = print if verbose else (lambda *_: None)

    log(f"[1/4] generating catalog (seed={config.catalog.seed}) ...")
    catalog = generate_catalog(config.catalog)
    titles = TitleGenerator(catalog, config.titles, seed=config.seed + 1)
    log(
        f"      items={len(catalog.items)} triples={len(catalog.store)} "
        f"relations={len(catalog.relations)}"
    )

    log("[2/4] pre-training PKGM ...")
    pkgm = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(config.seed),
    )
    history = PKGMTrainer(pkgm, config.pkgm_trainer).train(catalog.store)
    log(
        f"      margin loss {history.epoch_losses[0]:.3f} -> "
        f"{history.final_loss:.3f}"
    )

    log("[3/4] building key-relation table and service snapshot ...")
    item_to_category = {
        item.entity_id: item.category_id for item in catalog.items
    }
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    server = PKGMServer(pkgm, selector)

    tokenizer = WordTokenizer(title_vocabulary(catalog))
    encoder_config = MiniBertConfig(
        vocab_size=tokenizer.vocab_size,
        max_length=config.encoder_max_length,
        dim=config.encoder_dim,
        num_layers=config.encoder_layers,
        num_heads=config.encoder_heads,
        ffn_dim=config.encoder_ffn,
        # No dropout: at synthetic scale it prevents the encoder from
        # learning cross-segment token matching (a dropped token flips
        # the pair label's evidence), and the datasets are small enough
        # that regularization costs more than it saves.
        dropout=0.0,
        service_dim=config.pkgm.dim,
        max_service_vectors=4 * config.key_relations,
        tie_qk_init=True,
    )

    log("[4/4] masked-LM + pair pre-training of the text encoder ...")
    encoder = MiniBert(encoder_config, rng=np.random.default_rng(config.seed + 2))
    mlm_losses: List[float] = []
    pair_losses: List[float] = []
    if pretrain_mlm:
        corpus = [titles.title_of(item) for item in catalog.items]
        mlm_trainer = MLMTrainer(encoder, tokenizer, config.mlm)
        mlm_losses = mlm_trainer.train(corpus, max_length=config.encoder_max_length)
        log(
            f"      MLM loss {mlm_losses[0]:.3f} -> {mlm_losses[-1]:.3f}"
            if mlm_losses
            else "      (no MLM epochs)"
        )
        if config.pair_pretrain is not None:
            # The NSP substitute: same-item title pairs teach the encoder
            # cross-segment matching (see repro.text.pair_pretrain).
            pair_trainer = PairPretrainer(encoder, tokenizer, config.pair_pretrain)
            categories = [item.category_id for item in catalog.items]
            pair_losses = pair_trainer.train(
                lambda index: titles.title_of(catalog.items[index]),
                len(catalog.items),
                categories,
            )
            log(
                f"      pair pretext loss {pair_losses[0]:.3f} -> "
                f"{pair_losses[-1]:.3f}"
            )
    mlm_state = encoder.state_dict()

    return Workbench(
        config=config,
        catalog=catalog,
        titles=titles,
        tokenizer=tokenizer,
        pkgm=pkgm,
        pkgm_history=history,
        selector=selector,
        server=server,
        encoder_config=encoder_config,
        mlm_state=mlm_state,
        mlm_losses=mlm_losses,
        pair_pretrain_losses=pair_losses,
    )
