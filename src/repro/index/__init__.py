"""repro.index — deterministic vector retrieval (Flat / IVF / IVF-PQ).

The retrieval layer that turns PKGM's inferred tail embeddings
(``S_T = h + r``) back into entities.  Three index kinds share one
determinism contract — fixed distance formulas, ``(distance, id)``
tie-breaking, seeded k-means — so that the same seed and vectors
always produce byte-identical snapshots and identical search results:

* :class:`FlatIndex` — blocked exact scan; the recall oracle.
* :class:`IVFFlatIndex` — inverted-file cells, exact in-cell distances.
* :class:`IVFPQIndex` — inverted-file cells over product-quantized
  codes with asymmetric distance tables; ~10x smaller per vector.

:func:`save_index` / :func:`load_index` persist any of them with
checksummed atomic snapshots in the reliability-checkpoint style.
"""

from .flat import METRICS, FlatIndex, batch_top_k, pairwise_distances, top_k
from .ivf import IVFFlatIndex
from .kmeans import KMeansResult, kmeans
from .pq import IVFPQIndex, ProductQuantizer
from .snapshot import INDEX_KINDS, IndexSnapshotError, load_index, save_index

__all__ = [
    "METRICS",
    "FlatIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "INDEX_KINDS",
    "IndexSnapshotError",
    "KMeansResult",
    "ProductQuantizer",
    "batch_top_k",
    "kmeans",
    "load_index",
    "pairwise_distances",
    "save_index",
    "top_k",
]
