"""Checksummed atomic index snapshots.

An index snapshot is two files, written in the same discipline as
:mod:`repro.reliability.checkpoint` (payload first, manifest strictly
after, both via tmp → fsync → ``os.replace``)::

    <path>.npz    arrays (compressed, atomic)
    <path>.json   manifest: payload SHA-256 + index meta + schema

Load verifies the manifest's checksum against the payload on disk and
raises :class:`IndexSnapshotError` on any mismatch, torn pair, or
unknown index kind — a corrupt snapshot is refused, never half-loaded.

Because every index builds deterministically from ``(vectors, seed)``
and ``np.savez_compressed`` is byte-stable, two same-seed builds
produce *byte-identical* payloads and manifests; ``tools/check.sh``
gates on exactly that.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..reliability.checkpoint import atomic_save_npz, atomic_write_json, sha256_of_file
from .flat import FlatIndex
from .ivf import IVFFlatIndex
from .pq import IVFPQIndex

#: Index classes by their ``kind`` tag, for load-time dispatch.
INDEX_KINDS = {
    FlatIndex.kind: FlatIndex,
    IVFFlatIndex.kind: IVFFlatIndex,
    IVFPQIndex.kind: IVFPQIndex,
}

SNAPSHOT_VERSION = 1


class IndexSnapshotError(RuntimeError):
    """An index snapshot is missing, torn, corrupt, or unrecognized."""


def _paths(path: Union[str, Path]):
    path = Path(path)
    return path.with_suffix(".npz"), path.with_suffix(".json")


def save_index(index, path: Union[str, Path]) -> Path:
    """Snapshot ``index`` to ``<path>.npz`` + ``<path>.json``.

    Returns the manifest path.  The payload lands before the manifest,
    so a crash between the two leaves no manifest and the snapshot is
    simply invisible to :func:`load_index`.
    """
    payload_path, manifest_path = _paths(path)
    arrays, meta = index.state()
    digest = atomic_save_npz(payload_path, arrays)
    manifest = {
        "version": SNAPSHOT_VERSION,
        "kind": meta["kind"],
        "meta": meta,
        "payload": payload_path.name,
        "payload_sha256": digest,
        "arrays": {
            name: {"shape": list(array.shape), "dtype": str(array.dtype)}
            for name, array in arrays.items()
        },
        "ntotal": index.ntotal,
    }
    atomic_write_json(manifest_path, manifest)
    return manifest_path


def load_index(path: Union[str, Path], registry=None):
    """Load a snapshot written by :func:`save_index`, verifying it.

    Raises :class:`IndexSnapshotError` if either file is missing, the
    payload fails its manifest checksum, or the manifest names an
    unknown index kind.
    """
    payload_path, manifest_path = _paths(path)
    if not manifest_path.exists():
        raise IndexSnapshotError(f"missing manifest: {manifest_path}")
    if not payload_path.exists():
        raise IndexSnapshotError(f"missing payload: {payload_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise IndexSnapshotError(f"unreadable manifest: {error}") from error
    digest = sha256_of_file(payload_path)
    expected = manifest.get("payload_sha256")
    if digest != expected:
        raise IndexSnapshotError(
            f"checksum mismatch for {payload_path}: "
            f"manifest says {expected}, payload is {digest}"
        )
    kind = manifest.get("kind")
    if kind not in INDEX_KINDS:
        raise IndexSnapshotError(f"unknown index kind: {kind!r}")
    with np.load(payload_path) as payload:
        arrays = {name: payload[name] for name in payload.files}
    return INDEX_KINDS[kind].from_state(
        arrays, manifest["meta"], registry=registry
    )
