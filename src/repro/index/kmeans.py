"""Seeded Lloyd's k-means with deterministic init and tie-breaking.

The coarse quantizer behind IVF and the per-subspace codebooks behind
PQ both reduce to k-means, and both inherit this module's determinism
guarantees:

* **init** — centroids start from ``k`` distinct rows drawn by an
  explicit ``np.random.default_rng(seed)`` permutation; no wall clock,
  no global RNG (lint rule R001 covers this package);
* **assignment** — each point goes to its nearest centroid under the
  index's metric; ``argmin`` resolves distance ties to the lowest
  centroid id;
* **empty clusters** — an emptied centroid is re-seeded on the point
  currently *farthest* from its assigned centroid (ties broken by
  lowest point id), a deterministic split-the-worst-cluster rule;
* **update** — centroid = arithmetic mean of members for L2, the
  coordinate-wise *median* for L1 (the actual minimizer of summed L1
  distance; ``np.median`` of a fixed member list is deterministic);
* **stop** — when assignments reach a fixed point, or after ``iters``
  rounds.

Two calls with identical inputs therefore return bit-identical
centroids, which is what makes IVF / IVF-PQ snapshots byte-identical
across same-seed builds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .flat import METRICS, pairwise_distances


@dataclass(frozen=True)
class KMeansResult:
    """Output of one :func:`kmeans` run.

    ``centroids`` is (k, d); ``assignments`` is (N,) centroid ids;
    ``inertia`` is the summed point-to-centroid distance under the
    training metric; ``iterations`` counts completed Lloyd rounds.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def kmeans(
    vectors: np.ndarray,
    k: int,
    metric: str = "l2",
    iters: int = 25,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm, fully deterministic given ``(inputs, seed)``.

    ``k`` is clamped to the number of distinct training rows by the
    caller's choice of ``k``; passing ``k > len(vectors)`` raises.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"expected (N, d) vectors, got {vectors.shape}")
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > len(vectors):
        raise ValueError(f"k={k} exceeds the {len(vectors)} training vectors")
    if iters < 1:
        raise ValueError("iters must be >= 1")

    rng = np.random.default_rng(seed)
    centroids = vectors[rng.permutation(len(vectors))[:k]].copy()
    assignments = np.full(len(vectors), -1, dtype=np.int64)
    distances = pairwise_distances(vectors, centroids, metric)
    iterations = 0
    for _ in range(iters):
        new_assignments = np.argmin(distances, axis=1).astype(np.int64)
        new_assignments = _fix_empty_clusters(
            new_assignments, distances, k
        )
        iterations += 1
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for c in range(k):
            members = vectors[assignments == c]
            if metric == "l1":
                centroids[c] = np.median(members, axis=0)
            else:
                centroids[c] = members.mean(axis=0)
        distances = pairwise_distances(vectors, centroids, metric)
    point_distance = distances[np.arange(len(vectors)), assignments]
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=float(point_distance.sum()),
        iterations=iterations,
    )


def _fix_empty_clusters(
    assignments: np.ndarray, distances: np.ndarray, k: int
) -> np.ndarray:
    """Re-seed each empty cluster on the worst-served point.

    The point with the largest distance to its assigned centroid (ties:
    lowest point id) is moved into the empty cluster; repeat per empty
    cluster in ascending cluster-id order.  Deterministic, and each
    donor cluster keeps at least one member because the moved point is
    strictly one of many (``k <= N`` is enforced by the caller).
    """
    assignments = assignments.copy()
    counts = np.bincount(assignments, minlength=k)
    for cluster in np.flatnonzero(counts == 0):
        assigned = distances[np.arange(len(assignments)), assignments]
        # Points alone in their cluster must not be stolen (that would
        # just move the hole); mask them out.
        singleton = counts[assignments] <= 1
        candidates = np.where(singleton, -np.inf, assigned)
        worst = int(np.argmax(candidates))  # ties -> lowest point id
        counts[assignments[worst]] -= 1
        assignments[worst] = cluster
        counts[cluster] += 1
    return assignments
