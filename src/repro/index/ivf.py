"""IVF-Flat: inverted-file search over a k-means coarse quantizer.

The paper's PKG-sub table holds 142.6M items; answering "which entities
sit closest to ``S_T = h + r``" by brute force is a full-table scan per
query.  IVF cuts that cost by partitioning the table into ``nlist``
cells (seeded k-means, :mod:`repro.index.kmeans`) and scanning only the
``nprobe`` cells whose centroids are nearest the query: the per-query
work drops from ``N`` distances to ``nlist + nprobe * N / nlist`` on a
balanced partition — the ≥5x saving the bench enforces at recall@10
≥ 0.9.

Everything is deterministic: the coarse quantizer is seeded, probe
order breaks centroid-distance ties by cell id, and candidate ranking
uses the shared ``(distance, id)`` order from :mod:`repro.index.flat`.
Same seed, same vectors ⇒ byte-identical snapshots and search results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .flat import METRICS, batch_top_k, pairwise_distances
from .kmeans import kmeans


class IVFFlatIndex:
    """Inverted-file index with exact distances inside probed cells.

    Lifecycle: ``train`` (k-means on a representative sample), then
    ``add`` (assign vectors to cells), then ``search``; ``build`` does
    train+add in one call.  ``nprobe`` may be overridden per search to
    trade recall against scanned volume.
    """

    kind = "ivf"

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        nprobe: int = 8,
        metric: str = "l2",
        seed: int = 0,
        kmeans_iters: int = 25,
        registry=None,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
        if nlist < 1:
            raise ValueError("nlist must be >= 1")
        if not 1 <= nprobe <= nlist:
            raise ValueError("nprobe must be in [1, nlist]")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = nprobe
        self.metric = metric
        self.seed = seed
        self.kmeans_iters = kmeans_iters
        if registry is None:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        self._queries_c = registry.counter(
            "index.search.queries", help="Search queries answered"
        )
        self._search_dc = registry.counter(
            "index.search.distance_computations",
            help="Query-to-vector distances evaluated during search",
        )
        self._build_dc = registry.counter(
            "index.build.distance_computations",
            help="Distances evaluated while training/adding",
        )
        self._size_g = registry.gauge(
            "index.size", help="Vectors currently indexed"
        )
        self.centroids: Optional[np.ndarray] = None
        self._list_vectors: List[np.ndarray] = []
        self._list_ids: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        """Whether the coarse quantizer has centroids."""
        return self.centroids is not None

    @property
    def ntotal(self) -> int:
        """Number of vectors across all inverted lists."""
        return int(sum(len(ids) for ids in self._list_ids))

    @property
    def bytes_per_vector(self) -> float:
        """Storage cost per vector (float64 coordinates + int64 id)."""
        return self.dim * 8 + 8

    def train(self, vectors: np.ndarray) -> None:
        """Fit the coarse quantizer on ``vectors`` (seeded k-means)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        nlist = min(self.nlist, len(vectors))
        if nlist < self.nlist:
            raise ValueError(
                f"nlist={self.nlist} exceeds the {len(vectors)} training vectors"
            )
        result = kmeans(
            vectors,
            self.nlist,
            metric=self.metric,
            iters=self.kmeans_iters,
            seed=self.seed,
        )
        self._build_dc.inc(result.iterations * len(vectors) * self.nlist)
        self.centroids = result.centroids
        self._list_vectors = [
            np.empty((0, self.dim)) for _ in range(self.nlist)
        ]
        self._list_ids = [
            np.empty(0, dtype=np.int64) for _ in range(self.nlist)
        ]

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> None:
        """Assign ``vectors`` to their nearest cell and store them."""
        if not self.is_trained:
            raise RuntimeError("train() the coarse quantizer before add()")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (N, {self.dim}) vectors, got {vectors.shape}"
            )
        if ids is None:
            ids = np.arange(
                self.ntotal, self.ntotal + len(vectors), dtype=np.int64
            )
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (len(vectors),):
                raise ValueError("ids must be one id per vector")
        cells = np.argmin(
            pairwise_distances(vectors, self.centroids, self.metric), axis=1
        )
        self._build_dc.inc(len(vectors) * self.nlist)
        for cell in np.unique(cells):
            members = cells == cell
            self._list_vectors[cell] = np.concatenate(
                [self._list_vectors[cell], vectors[members]], axis=0
            )
            self._list_ids[cell] = np.concatenate(
                [self._list_ids[cell], ids[members]]
            )
        self._size_g.set(self.ntotal)

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> None:
        """Train on ``vectors`` and add them — the common one-shot path."""
        self.train(vectors)
        self.add(vectors, ids)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def probe_cells(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """(Q, nprobe) nearest cell ids per query, ties by cell id."""
        centroid_d = pairwise_distances(queries, self.centroids, self.metric)
        self._search_dc.inc(queries.shape[0] * self.nlist)
        cell_ids = np.broadcast_to(
            np.arange(self.nlist, dtype=np.int64), centroid_d.shape
        )
        _, probes = batch_top_k(centroid_d, cell_ids, nprobe)
        return probes

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, ids)`` over the probed cells.

        Distances inside a probed cell are exact; recall is governed by
        how often the true neighbors' cells are among the ``nprobe``
        probes.  Rows pad with ``(inf, -1)`` when the probed cells hold
        fewer than ``k`` vectors.
        """
        if not self.is_trained:
            raise RuntimeError("train() the coarse quantizer before search()")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"expected (Q, {self.dim}) queries, got {queries.shape}"
            )
        if k < 1:
            raise ValueError("k must be >= 1")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if not 1 <= nprobe <= self.nlist:
            raise ValueError("nprobe must be in [1, nlist]")
        self._queries_c.inc(len(queries))
        probes = self.probe_cells(queries, nprobe)
        out_d = np.full((len(queries), k), np.inf)
        out_i = np.full((len(queries), k), -1, dtype=np.int64)
        for row, row_probes in enumerate(probes):
            cand_vectors = [self._list_vectors[c] for c in row_probes]
            cand_ids = [self._list_ids[c] for c in row_probes]
            vectors = np.concatenate(cand_vectors, axis=0)
            ids = np.concatenate(cand_ids)
            if not len(ids):
                continue
            distances = pairwise_distances(
                queries[row : row + 1], vectors, self.metric
            )
            self._search_dc.inc(len(ids))
            pad = max(0, k - len(ids))
            if pad:
                distances = np.pad(
                    distances, ((0, 0), (0, pad)), constant_values=np.inf
                )
                ids = np.pad(ids, (0, pad), constant_values=-1)
            out_d[row], out_i[row] = batch_top_k(
                distances, ids[None, :], k
            )
        return out_d, out_i

    # ------------------------------------------------------------------
    # Snapshot surface (see repro.index.snapshot)
    # ------------------------------------------------------------------
    def state(self):
        """``(arrays, meta)`` capturing the index for serialization.

        Inverted lists flatten into one vector block + one id block
        with per-cell offsets, so the payload is a handful of arrays
        regardless of ``nlist``.
        """
        if not self.is_trained:
            raise RuntimeError("cannot snapshot an untrained index")
        offsets = np.zeros(self.nlist + 1, dtype=np.int64)
        for cell in range(self.nlist):
            offsets[cell + 1] = offsets[cell] + len(self._list_ids[cell])
        arrays = {
            "centroids": self.centroids,
            "vectors": (
                np.concatenate(self._list_vectors, axis=0)
                if self.ntotal
                else np.empty((0, self.dim))
            ),
            "ids": (
                np.concatenate(self._list_ids)
                if self.ntotal
                else np.empty(0, dtype=np.int64)
            ),
            "offsets": offsets,
        }
        meta = {
            "kind": self.kind,
            "dim": self.dim,
            "metric": self.metric,
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
        }
        return arrays, meta

    @classmethod
    def from_state(cls, arrays, meta, registry=None) -> "IVFFlatIndex":
        """Rebuild an index captured by :meth:`state`."""
        index = cls(
            dim=int(meta["dim"]),
            nlist=int(meta["nlist"]),
            nprobe=int(meta["nprobe"]),
            metric=str(meta["metric"]),
            seed=int(meta["seed"]),
            kmeans_iters=int(meta["kmeans_iters"]),
            registry=registry,
        )
        index.centroids = np.asarray(arrays["centroids"], dtype=np.float64)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        vectors = np.asarray(arrays["vectors"], dtype=np.float64)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        index._list_vectors = [
            vectors[offsets[c] : offsets[c + 1]] for c in range(index.nlist)
        ]
        index._list_ids = [
            ids[offsets[c] : offsets[c + 1]] for c in range(index.nlist)
        ]
        index._size_g.set(index.ntotal)
        return index
