"""Product quantization and IVF-PQ: memory-compressed approximate search.

At 142.6M items the PKG-sub entity table does not fit in RAM as raw
float64 — PQ trades a bounded distance error for a ~10x smaller
footprint.  Each vector is split into ``m`` contiguous subspaces; each
subspace gets a seeded k-means codebook of ``ksub`` centroids
(:mod:`repro.index.kmeans`), and the vector is stored as ``m`` one-byte
code indices instead of ``dim`` floats.

Search uses **asymmetric distance computation** (ADC): the query stays
exact, and a per-query table of query-subvector-to-centroid distances
is built once (``m * ksub`` entries); each candidate's approximate
distance is then ``m`` table lookups, never a decode.  For L2 the
table holds *squared* subspace distances so per-subspace sums compose
(the root is taken once at the end); L1 sums compose directly.

:class:`IVFPQIndex` layers the PQ codes behind the same coarse
quantizer as IVF-Flat: probe ``nprobe`` cells, rank their members by
ADC.  Codes are quantized from raw vectors (not cell residuals), so one
ADC table serves every probed cell — simpler, and deterministic by the
same ``(distance, id)`` order as the rest of the package.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .flat import METRICS, batch_top_k, pairwise_distances
from .kmeans import kmeans


class ProductQuantizer:
    """Per-subspace k-means codebooks mapping vectors to ``m`` bytes.

    ``dim`` must divide evenly into ``m`` subspaces; ``ksub`` (codebook
    size, at most 256 so codes fit ``uint8``) is capped by the caller's
    training-set size.  ``train`` → ``encode``/``decode`` mirror the
    index lifecycle.
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        ksub: int = 16,
        seed: int = 0,
        iters: int = 25,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if m < 1 or dim % m != 0:
            raise ValueError(f"m must divide dim ({dim}), got m={m}")
        if not 1 <= ksub <= 256:
            raise ValueError("ksub must be in [1, 256] (codes are uint8)")
        self.dim = dim
        self.m = m
        self.dsub = dim // m
        self.ksub = ksub
        self.seed = seed
        self.iters = iters
        self.codebooks: Optional[np.ndarray] = None  # (m, ksub, dsub)

    @property
    def is_trained(self) -> bool:
        """Whether codebooks exist."""
        return self.codebooks is not None

    def _subspaces(self, vectors: np.ndarray) -> np.ndarray:
        """(N, d) → (m, N, dsub) contiguous subvector views."""
        return np.transpose(
            vectors.reshape(len(vectors), self.m, self.dsub), (1, 0, 2)
        )

    def train(self, vectors: np.ndarray) -> None:
        """Fit one seeded k-means codebook per subspace.

        Subspace ``j`` trains with seed ``seed + j`` so codebooks are
        independent yet reproducible.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (N, {self.dim}) vectors, got {vectors.shape}"
            )
        if len(vectors) < self.ksub:
            raise ValueError(
                f"ksub={self.ksub} exceeds the {len(vectors)} training vectors"
            )
        codebooks = np.empty((self.m, self.ksub, self.dsub))
        for j, sub in enumerate(self._subspaces(vectors)):
            result = kmeans(
                sub,
                self.ksub,
                metric="l2",
                iters=self.iters,
                seed=self.seed + j,
            )
            codebooks[j] = result.centroids
        self.codebooks = codebooks

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize ``vectors`` to (N, m) uint8 code indices.

        Each subvector maps to its nearest codeword (ties to the lowest
        code id, matching the package-wide order).
        """
        if not self.is_trained:
            raise RuntimeError("train() the quantizer before encode()")
        vectors = np.asarray(vectors, dtype=np.float64)
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for j, sub in enumerate(self._subspaces(vectors)):
            distances = pairwise_distances(sub, self.codebooks[j], "l2")
            codes[:, j] = np.argmin(distances, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (N, dim) vectors from (N, m) codes."""
        if not self.is_trained:
            raise RuntimeError("train() the quantizer before decode()")
        codes = np.asarray(codes)
        out = np.empty((len(codes), self.dim))
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[j][
                codes[:, j]
            ]
        return out

    def adc_tables(self, queries: np.ndarray, metric: str) -> np.ndarray:
        """(Q, m, ksub) asymmetric distance tables for ``queries``.

        Entry ``[q, j, c]`` is the distance from query ``q``'s ``j``-th
        subvector to codeword ``c`` — squared L2 for ``l2`` (so subspace
        contributions add), plain L1 for ``l1``.
        """
        if not self.is_trained:
            raise RuntimeError("train() the quantizer before adc_tables()")
        if metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
        queries = np.asarray(queries, dtype=np.float64)
        tables = np.empty((len(queries), self.m, self.ksub))
        for j, sub in enumerate(self._subspaces(queries)):
            if metric == "l1":
                tables[:, j, :] = pairwise_distances(sub, self.codebooks[j], "l1")
            else:
                diff = sub[:, None, :] - self.codebooks[j][None, :, :]
                tables[:, j, :] = (diff * diff).sum(axis=2)
        return tables

    def adc_distances(self, table: np.ndarray, codes: np.ndarray, metric: str) -> np.ndarray:
        """Approximate distances of coded candidates to one query.

        ``table`` is that query's (m, ksub) slice of :meth:`adc_tables`;
        ``codes`` is (C, m).  Returns (C,) distances.
        """
        looked_up = table[np.arange(self.m)[None, :], codes]
        total = looked_up.sum(axis=1)
        if metric == "l2":
            return np.sqrt(np.maximum(total, 0.0))
        return total

    def state_arrays(self) -> np.ndarray:
        """The (m, ksub, dsub) codebook tensor for snapshotting."""
        if not self.is_trained:
            raise RuntimeError("cannot snapshot an untrained quantizer")
        return self.codebooks


class IVFPQIndex:
    """IVF cells + PQ codes: compressed approximate nearest neighbors.

    Identical probe logic to :class:`~repro.index.ivf.IVFFlatIndex`,
    but cell members are stored as ``m``-byte PQ codes and ranked by
    ADC lookups, cutting per-vector storage from ``dim * 8 + 8`` bytes
    to ``m + 8``.
    """

    kind = "ivfpq"

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        nprobe: int = 8,
        m: int = 8,
        ksub: int = 16,
        metric: str = "l2",
        seed: int = 0,
        kmeans_iters: int = 25,
        registry=None,
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
        if nlist < 1:
            raise ValueError("nlist must be >= 1")
        if not 1 <= nprobe <= nlist:
            raise ValueError("nprobe must be in [1, nlist]")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = nprobe
        self.metric = metric
        self.seed = seed
        self.kmeans_iters = kmeans_iters
        self.pq = ProductQuantizer(
            dim, m=m, ksub=ksub, seed=seed, iters=kmeans_iters
        )
        if registry is None:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        self._queries_c = registry.counter(
            "index.search.queries", help="Search queries answered"
        )
        self._search_dc = registry.counter(
            "index.search.distance_computations",
            help="Full-vector-equivalent distances evaluated during search",
        )
        self._build_dc = registry.counter(
            "index.build.distance_computations",
            help="Distances evaluated while training/adding",
        )
        self._size_g = registry.gauge(
            "index.size", help="Vectors currently indexed"
        )
        self.centroids: Optional[np.ndarray] = None
        self._list_codes: List[np.ndarray] = []
        self._list_ids: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        """Whether both the coarse quantizer and PQ codebooks exist."""
        return self.centroids is not None and self.pq.is_trained

    @property
    def ntotal(self) -> int:
        """Number of vectors across all inverted lists."""
        return int(sum(len(ids) for ids in self._list_ids))

    @property
    def bytes_per_vector(self) -> float:
        """Storage cost per vector (``m`` code bytes + int64 id)."""
        return self.pq.m + 8

    def train(self, vectors: np.ndarray) -> None:
        """Fit the coarse quantizer and the PQ codebooks."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (N, {self.dim}) vectors, got {vectors.shape}"
            )
        if len(vectors) < self.nlist:
            raise ValueError(
                f"nlist={self.nlist} exceeds the {len(vectors)} training vectors"
            )
        result = kmeans(
            vectors,
            self.nlist,
            metric=self.metric,
            iters=self.kmeans_iters,
            seed=self.seed,
        )
        self._build_dc.inc(result.iterations * len(vectors) * self.nlist)
        self.centroids = result.centroids
        self.pq.train(vectors)
        self._build_dc.inc(len(vectors) * self.pq.ksub)
        self._list_codes = [
            np.empty((0, self.pq.m), dtype=np.uint8) for _ in range(self.nlist)
        ]
        self._list_ids = [
            np.empty(0, dtype=np.int64) for _ in range(self.nlist)
        ]

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> None:
        """Encode ``vectors`` and file them under their nearest cell."""
        if not self.is_trained:
            raise RuntimeError("train() the index before add()")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (N, {self.dim}) vectors, got {vectors.shape}"
            )
        if ids is None:
            ids = np.arange(
                self.ntotal, self.ntotal + len(vectors), dtype=np.int64
            )
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (len(vectors),):
                raise ValueError("ids must be one id per vector")
        cells = np.argmin(
            pairwise_distances(vectors, self.centroids, self.metric), axis=1
        )
        self._build_dc.inc(len(vectors) * self.nlist)
        codes = self.pq.encode(vectors)
        for cell in np.unique(cells):
            members = cells == cell
            self._list_codes[cell] = np.concatenate(
                [self._list_codes[cell], codes[members]], axis=0
            )
            self._list_ids[cell] = np.concatenate(
                [self._list_ids[cell], ids[members]]
            )
        self._size_g.set(self.ntotal)

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> None:
        """Train on ``vectors`` and add them — the common one-shot path."""
        self.train(vectors)
        self.add(vectors, ids)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate ``(distances, ids)`` via ADC over probed cells.

        Work accounting: probing costs ``nlist`` distances per query,
        the ADC table costs ``ksub`` full-vector equivalents (its
        ``m * ksub`` subspace entries sum to that), and each scanned
        candidate costs one lookup-sum.
        """
        if not self.is_trained:
            raise RuntimeError("train() the index before search()")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"expected (Q, {self.dim}) queries, got {queries.shape}"
            )
        if k < 1:
            raise ValueError("k must be >= 1")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if not 1 <= nprobe <= self.nlist:
            raise ValueError("nprobe must be in [1, nlist]")
        n_q = len(queries)
        self._queries_c.inc(n_q)
        centroid_d = pairwise_distances(queries, self.centroids, self.metric)
        self._search_dc.inc(n_q * self.nlist)
        cell_ids = np.broadcast_to(
            np.arange(self.nlist, dtype=np.int64), centroid_d.shape
        )
        _, probes = batch_top_k(centroid_d, cell_ids, nprobe)
        tables = self.pq.adc_tables(queries, self.metric)
        self._search_dc.inc(n_q * self.pq.ksub)
        out_d = np.full((n_q, k), np.inf)
        out_i = np.full((n_q, k), -1, dtype=np.int64)
        for row, row_probes in enumerate(probes):
            codes = np.concatenate(
                [self._list_codes[c] for c in row_probes], axis=0
            )
            ids = np.concatenate([self._list_ids[c] for c in row_probes])
            if not len(ids):
                continue
            distances = self.pq.adc_distances(tables[row], codes, self.metric)
            self._search_dc.inc(len(ids))
            pad = max(0, k - len(ids))
            if pad:
                distances = np.pad(distances, (0, pad), constant_values=np.inf)
                ids = np.pad(ids, (0, pad), constant_values=-1)
            out_d[row], out_i[row] = batch_top_k(
                distances[None, :], ids[None, :], k
            )
        return out_d, out_i

    # ------------------------------------------------------------------
    # Snapshot surface (see repro.index.snapshot)
    # ------------------------------------------------------------------
    def state(self):
        """``(arrays, meta)`` capturing the index for serialization."""
        if not self.is_trained:
            raise RuntimeError("cannot snapshot an untrained index")
        offsets = np.zeros(self.nlist + 1, dtype=np.int64)
        for cell in range(self.nlist):
            offsets[cell + 1] = offsets[cell] + len(self._list_ids[cell])
        arrays = {
            "centroids": self.centroids,
            "codebooks": self.pq.state_arrays(),
            "codes": (
                np.concatenate(self._list_codes, axis=0)
                if self.ntotal
                else np.empty((0, self.pq.m), dtype=np.uint8)
            ),
            "ids": (
                np.concatenate(self._list_ids)
                if self.ntotal
                else np.empty(0, dtype=np.int64)
            ),
            "offsets": offsets,
        }
        meta = {
            "kind": self.kind,
            "dim": self.dim,
            "metric": self.metric,
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "m": self.pq.m,
            "ksub": self.pq.ksub,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
        }
        return arrays, meta

    @classmethod
    def from_state(cls, arrays, meta, registry=None) -> "IVFPQIndex":
        """Rebuild an index captured by :meth:`state`."""
        index = cls(
            dim=int(meta["dim"]),
            nlist=int(meta["nlist"]),
            nprobe=int(meta["nprobe"]),
            m=int(meta["m"]),
            ksub=int(meta["ksub"]),
            metric=str(meta["metric"]),
            seed=int(meta["seed"]),
            kmeans_iters=int(meta["kmeans_iters"]),
            registry=registry,
        )
        index.centroids = np.asarray(arrays["centroids"], dtype=np.float64)
        index.pq.codebooks = np.asarray(arrays["codebooks"], dtype=np.float64)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        index._list_codes = [
            codes[offsets[c] : offsets[c + 1]] for c in range(index.nlist)
        ]
        index._list_ids = [
            ids[offsets[c] : offsets[c + 1]] for c in range(index.nlist)
        ]
        index._size_g.set(index.ntotal)
        return index
