"""Blocked exact nearest-neighbor search — the ground-truth baseline.

:class:`FlatIndex` answers k-NN queries against an in-memory vector
table by brute force, but never materializes the full query-by-base
distance matrix: the base table is scanned in fixed-size blocks and a
running top-k per query is merged block by block, so peak memory is
``O(num_queries * (k + block_size))`` regardless of table size.  That
bound is what lets :func:`repro.analysis.embeddings.knn_category_purity`
drop its O(N^2) pairwise matrix while returning the same answers.

Determinism contract (shared by every index in this package):

* distances are computed with one fixed formula per metric (a
  broadcast difference reduced over the coordinate axis), so two runs
  on the same inputs produce bit-identical floats — and the reduction
  never spans the base axis, so blocking cannot perturb them;
* ties are broken by ascending vector id — neighbor lists are sorted by
  ``(distance, id)`` (:func:`top_k`), never by partition order;
* the only stochastic choice anywhere downstream (k-means init) comes
  from an explicit seed.

Every search also counts its work: ``index.search.queries`` and
``index.search.distance_computations`` land in the instance's
:class:`~repro.obs.metrics.MetricsRegistry`, which is how the bench and
the IVF acceptance bar ("5x fewer distance computations than brute
force") are measured rather than guessed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Metrics an index can rank by.  ``l1`` matches TransE's energy (the
#: PKGM service space); ``l2`` is the conventional ANN benchmark metric.
METRICS = ("l1", "l2")


def pairwise_distances(
    queries: np.ndarray, base: np.ndarray, metric: str
) -> np.ndarray:
    """Exact (Q, B) distance matrix under ``metric``.

    One formula per metric, used by every index in the package, so Flat
    / IVF / IVF-PQ rankings are comparable bit-for-bit.  Both metrics
    reduce the broadcast difference over the coordinate axis only —
    never over the base axis — so each (query, vector) distance is a
    fixed-length reduction whose result cannot depend on how the base
    table was blocked.  (The BLAS-backed ``||q||^2 - 2 q.b + ||b||^2``
    expansion would be faster, but gemm's reduction order varies with
    operand shape, which would break blocked-search bit-invariance.)
    """
    if metric == "l1":
        return np.abs(queries[:, None, :] - base[None, :, :]).sum(axis=2)
    if metric == "l2":
        diff = queries[:, None, :] - base[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))
    raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")


def top_k(
    distances: np.ndarray, ids: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic top-k of one candidate row: ``(distances, ids)``.

    Candidates are ordered by ``(distance, id)`` — a total order, so
    equal distances can never reshuffle between runs.  Pads with
    ``(inf, -1)`` when fewer than ``k`` candidates exist.
    """
    order = np.lexsort((ids, distances))[:k]
    out_d = np.full(k, np.inf)
    out_i = np.full(k, -1, dtype=np.int64)
    out_d[: len(order)] = distances[order]
    out_i[: len(order)] = ids[order]
    return out_d, out_i


def batch_top_k(
    distances: np.ndarray, ids: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise deterministic top-k for (Q, C) candidate matrices.

    Equivalent to :func:`top_k` applied per row (``(distance, id)``
    order), but vectorized: a stable sort by id followed by a stable
    sort by distance realizes the lexicographic order without a Python
    loop.  Pad candidates — id ``-1`` at distance ``inf`` — sink to the
    end of every row, so callers can pre-pad freely.
    """
    id_order = np.argsort(ids, axis=1, kind="stable")
    d_by_id = np.take_along_axis(distances, id_order, axis=1)
    rank = np.argsort(d_by_id, axis=1, kind="stable")[:, :k]
    order = np.take_along_axis(id_order, rank, axis=1)
    return (
        np.take_along_axis(distances, order, axis=1),
        np.take_along_axis(ids, order, axis=1),
    )


class FlatIndex:
    """Exact blocked k-NN over an explicit id-tagged vector table.

    ``add`` appends vectors (ids default to the running row count);
    ``search`` scans every vector but only ``block_size`` rows at a
    time, merging a per-query running top-k.  Being exact, this index
    doubles as the recall oracle for IVF / IVF-PQ.
    """

    kind = "flat"

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        block_size: int = 1024,
        registry=None,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.dim = dim
        self.metric = metric
        self.block_size = block_size
        if registry is None:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        self._queries_c = registry.counter(
            "index.search.queries", help="Search queries answered"
        )
        self._search_dc = registry.counter(
            "index.search.distance_computations",
            help="Query-to-vector distances evaluated during search",
        )
        self._size_g = registry.gauge(
            "index.size", help="Vectors currently indexed"
        )
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @property
    def ntotal(self) -> int:
        """Number of vectors in the index."""
        return len(self._vectors)

    @property
    def bytes_per_vector(self) -> float:
        """Storage cost per vector (float64 coordinates + int64 id)."""
        return self.dim * 8 + 8

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> None:
        """Append ``vectors`` (and their ids) to the table."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected (N, {self.dim}) vectors, got {vectors.shape}"
            )
        if ids is None:
            ids = np.arange(
                self.ntotal, self.ntotal + len(vectors), dtype=np.int64
            )
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (len(vectors),):
                raise ValueError("ids must be one id per vector")
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)
        self._ids = np.concatenate([self._ids, ids])
        self._size_g.set(self.ntotal)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact ``(distances, ids)`` of the k nearest vectors per query.

        Both outputs are (Q, k), nearest first; rows with fewer than
        ``k`` indexed vectors pad with ``(inf, -1)``.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"expected (Q, {self.dim}) queries, got {queries.shape}"
            )
        if k < 1:
            raise ValueError("k must be >= 1")
        n_q = len(queries)
        self._queries_c.inc(n_q)
        best_d = np.full((n_q, k), np.inf)
        best_i = np.full((n_q, k), -1, dtype=np.int64)
        for start in range(0, self.ntotal, self.block_size):
            block = self._vectors[start : start + self.block_size]
            block_ids = self._ids[start : start + self.block_size]
            distances = pairwise_distances(queries, block, self.metric)
            self._search_dc.inc(n_q * len(block))
            merged_d = np.concatenate([best_d, distances], axis=1)
            merged_i = np.concatenate(
                [best_i, np.broadcast_to(block_ids, (n_q, len(block_ids)))],
                axis=1,
            )
            best_d, best_i = batch_top_k(merged_d, merged_i, k)
        return best_d, best_i

    # ------------------------------------------------------------------
    # Snapshot surface (see repro.index.snapshot)
    # ------------------------------------------------------------------
    def state(self):
        """``(arrays, meta)`` capturing the index for serialization."""
        arrays = {"vectors": self._vectors, "ids": self._ids}
        meta = {
            "kind": self.kind,
            "dim": self.dim,
            "metric": self.metric,
            "block_size": self.block_size,
        }
        return arrays, meta

    @classmethod
    def from_state(cls, arrays, meta, registry=None) -> "FlatIndex":
        """Rebuild an index captured by :meth:`state`."""
        index = cls(
            dim=int(meta["dim"]),
            metric=str(meta["metric"]),
            block_size=int(meta["block_size"]),
            registry=registry,
        )
        index.add(arrays["vectors"], arrays["ids"])
        return index
