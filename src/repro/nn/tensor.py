"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for every model in the
reproduction (PKGM, the mini-BERT text encoder, NCF, and the KGE
baselines).  The paper trained with TensorFlow on a parameter-server
cluster; we substitute a small, self-contained autograd engine whose
semantics match the subset of operations those models need.

The design follows the classic tape-based approach: every
:class:`Tensor` records the operation that produced it and closures
that propagate gradients to its parents.  Calling :meth:`Tensor.backward`
runs a topological sort over the recorded graph and accumulates
gradients into every tensor with ``requires_grad=True``.

All arrays are kept in ``float64`` by default so that the numeric
gradient checks in :mod:`repro.nn.gradcheck` are tight; models that
care about memory can pass ``float32`` data explicitly.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import sanitizer as _sanitizer

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Global autograd switch flipped by :class:`no_grad`.  When ``False``,
#: :meth:`Tensor._make` stops recording the graph entirely.
_GRAD_ENABLED = True

#: Optional op-dispatch observer, sharing the sanitizer's interception
#: point in :meth:`Tensor._make`.  ``repro.obs.profile`` installs a
#: callable ``hook(op, data)`` here to count ops per training phase;
#: ``None`` (the default) keeps the hot path branch-predictable.
_OP_HOOK: Optional[Callable[[str, np.ndarray], None]] = None


def set_op_hook(hook: Optional[Callable[[str, np.ndarray], None]]) -> None:
    """Install (or with ``None`` remove) the global op-dispatch hook."""
    global _OP_HOOK
    _OP_HOOK = hook


def get_op_hook() -> Optional[Callable[[str, np.ndarray], None]]:
    """Return the currently installed op-dispatch hook, if any."""
    return _OP_HOOK


class no_grad:
    """Context manager (and decorator) that disables graph recording.

    Inside the scope, ops produce plain constant tensors — no parents,
    no backward closures — which is both faster and the explicit signal
    (enforced by the ``tensor-inplace-grad`` lint rule) that raw
    ``.data`` writes such as optimizer updates and norm constraints are
    intentionally invisible to autograd.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce ``value`` to a numpy array of the requested dtype."""
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data (anything :func:`numpy.asarray` accepts).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    parents:
        Tensors this tensor was computed from (internal).
    backward_fns:
        One gradient closure per parent, mapping the incoming gradient
        to the parent's gradient contribution (internal).
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fns", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fns: Sequence[Callable[[np.ndarray], np.ndarray]] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fns: Tuple[Callable[[np.ndarray], np.ndarray], ...] = tuple(
            backward_fns
        )
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(
            self.data
        )

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
        op: str = "op",
    ) -> "Tensor":
        if _sanitizer.ENABLED:
            _sanitizer.check_op(op, data, [p.data for p in parents])
        if _OP_HOOK is not None:
            _OP_HOOK(op, data)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward_fns=backward_fns)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = ensure_tensor(other)
        out = self.data + other.data
        return Tensor._make(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g, self.shape),
                lambda g: _unbroadcast(g, other.shape),
            ),
            op="add",
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), (lambda g: -g,), op="neg")

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = ensure_tensor(other)
        out = self.data - other.data
        return Tensor._make(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g, self.shape),
                lambda g: _unbroadcast(-g, other.shape),
            ),
            op="sub",
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = ensure_tensor(other)
        out = self.data * other.data
        return Tensor._make(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g * other.data, self.shape),
                lambda g: _unbroadcast(g * self.data, other.shape),
            ),
            op="mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = ensure_tensor(other)
        out = self.data / other.data
        return Tensor._make(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g / other.data, self.shape),
                lambda g: _unbroadcast(-g * self.data / (other.data**2), other.shape),
            ),
            op="div",
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = self.data**exponent
        return Tensor._make(
            out,
            (self,),
            (lambda g: g * exponent * self.data ** (exponent - 1),),
            op="pow",
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = ensure_tensor(other)
        out = self.data @ other.data

        def grad_a(g: np.ndarray) -> np.ndarray:
            if other.data.ndim == 1:
                # (..., n) = (..., n, m) @ (m,) is not a case we hit; the
                # common case is vec @ mat or mat @ vec.
                ga = np.outer(g, other.data) if self.data.ndim == 2 else g[..., None] * other.data
            else:
                ga = g @ np.swapaxes(other.data, -1, -2)
            return _unbroadcast(ga, self.shape)

        def grad_b(g: np.ndarray) -> np.ndarray:
            if self.data.ndim == 1:
                # vec @ vec -> scalar out; vec @ mat -> vec out.
                gb = self.data * g if np.ndim(g) == 0 else np.outer(self.data, g)
            else:
                gb = np.swapaxes(self.data, -1, -2) @ g
            return _unbroadcast(gb, other.shape)

        return Tensor._make(out, (self, other), (grad_a, grad_b), op="matmul")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, self.shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, self.shape).copy()

        return Tensor._make(out, (self,), (grad_fn,), op="sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (self.data == out).astype(self.data.dtype)
                mask /= mask.sum()
                return g * mask
            out_expanded = out if keepdims else np.expand_dims(out, axis)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return g_expanded * mask

        return Tensor._make(out, (self,), (grad_fn,), op="max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._make(out, (self,), (lambda g: g * out,), op="exp")

    def log(self) -> "Tensor":
        out = np.log(self.data)
        return Tensor._make(out, (self,), (lambda g: g / self.data,), op="log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._make(out, (self,), (lambda g: g * 0.5 / out,), op="sqrt")

    def abs(self) -> "Tensor":
        out = np.abs(self.data)
        return Tensor._make(out, (self,), (lambda g: g * np.sign(self.data),), op="abs")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self.data * mask
        return Tensor._make(out, (self,), (lambda g: g * mask,), op="relu")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor._make(out, (self,), (lambda g: g * (1.0 - out**2),), op="tanh")

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._make(out, (self,), (lambda g: g * out * (1.0 - out),), op="sigmoid")

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out = 0.5 * x * (1.0 + t)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            dt = (1.0 - t**2) * dinner
            return g * (0.5 * (1.0 + t) + 0.5 * x * dt)

        return Tensor._make(out, (self,), (grad_fn,), op="gelu")

    def clip(self, low: float, high: float) -> "Tensor":
        out = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._make(out, (self,), (lambda g: g * mask,), op="clip")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self.data.reshape(shape)
        return Tensor._make(out, (self,), (lambda g: g.reshape(self.shape),), op="reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        out = self.data.transpose(axes)
        return Tensor._make(out, (self,), (lambda g: g.transpose(inverse),), op="transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = np.swapaxes(self.data, a, b)
        return Tensor._make(out, (self,), (lambda g: np.swapaxes(g, a, b),), op="swapaxes")

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return full

        return Tensor._make(out, (self,), (grad_fn,), op="getitem")

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): ``out[i...] = self[indices[i...]]``.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.  Gradients scatter-add back,
        which is exactly the embedding-gradient semantics.
        """
        indices = np.asarray(indices)
        out = self.data[indices]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), g.reshape(-1, *self.shape[1:]))
            return full

        return Tensor._make(out, (self,), (grad_fn,), op="take_rows")

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for a scalar loss).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without requires_grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad).reshape(self.shape)

        order = _topological_order(self)
        grads = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            if node.requires_grad and node._parents:
                # Interior node: optionally record grad for debugging, then
                # push to parents.
                for parent, fn in zip(node._parents, node._backward_fns):
                    if not parent.requires_grad:
                        continue
                    contribution = fn(node_grad)
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + contribution
                    else:
                        grads[key] = contribution


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return tensors reachable from ``root`` in reverse-topological order."""
    order: List[Tensor] = []
    visited = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def ensure_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Wrap ``value`` in a constant :class:`Tensor` if it isn't one."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_fn(i: int) -> Callable[[np.ndarray], np.ndarray]:
        start, stop = offsets[i], offsets[i + 1]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        return grad_fn

    return Tensor._make(
        out, tensors, tuple(make_fn(i) for i in range(len(tensors))), op="concat"
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_fn(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return grad_fn

    return Tensor._make(
        out, tensors, tuple(make_fn(i) for i in range(len(tensors))), op="stack"
    )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradients flowing to both branches."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out = np.where(condition, a.data, b.data)
    return Tensor._make(
        out,
        (a, b),
        (
            lambda g: _unbroadcast(g * condition, a.shape),
            lambda g: _unbroadcast(g * ~condition, b.shape),
        ),
        op="where",
    )


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """A zero-filled tensor of the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """A one-filled tensor of the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
