"""From-scratch numpy neural-network substrate.

Substitutes TensorFlow in the original PKGM implementation: a
reverse-mode autograd :class:`Tensor`, layers, a transformer encoder,
and the optimizers the paper uses.
"""

from . import functional, init, sanitizer
from .attention import MultiHeadAttention
from .gradcheck import check_gradients, numeric_gradient
from .layers import (
    MLP,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .module import Module, Parameter
from .optim import SGD, Adam, AdamW, Optimizer, WarmupLinearSchedule
from .sanitizer import NumericGuardError
from .tensor import (
    Tensor,
    concat,
    ensure_tensor,
    get_op_hook,
    is_grad_enabled,
    no_grad,
    ones,
    set_op_hook,
    stack,
    where,
    zeros,
)
from .transformer import TransformerConfig, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Adam",
    "AdamW",
    "Dropout",
    "Embedding",
    "GELU",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "MultiHeadAttention",
    "NumericGuardError",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "TransformerConfig",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "WarmupLinearSchedule",
    "check_gradients",
    "concat",
    "ensure_tensor",
    "functional",
    "get_op_hook",
    "init",
    "is_grad_enabled",
    "no_grad",
    "numeric_gradient",
    "ones",
    "sanitizer",
    "set_op_hook",
    "stack",
    "where",
    "zeros",
]
