"""Module and parameter abstractions for the numpy autograd engine.

A :class:`Module` owns :class:`Parameter` leaves and child modules,
mirroring the familiar ``torch.nn.Module`` contract: recursive parameter
iteration, train/eval mode, ``state_dict`` round-tripping, and
``zero_grad``.  Every model in the reproduction (PKGM, mini-BERT, NCF,
the KGE baselines) derives from it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor, no_grad


class Parameter(Tensor):
    """A :class:`Tensor` that is always a trainable leaf."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration happens automatically through
    ``__setattr__``.  Subclasses implement :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter (used for dynamic names)."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module (used for dynamic names)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Set training mode recursively (enables dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively (disables dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays saved by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch, so silent partial loads cannot happen.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state_dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.shape}, got {value.shape}"
                )
            with no_grad():
                param.data = value.astype(param.data.dtype).copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
