"""Numeric gradient checking for the autograd engine.

Central-difference verification that analytic gradients from
:meth:`repro.nn.Tensor.backward` match numeric derivatives.  Used by the
test suite to validate every op the models rely on.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients match numeric ones for every grad input.

    Raises ``AssertionError`` with the offending input index and maximum
    deviation on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numeric_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            deviation = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max deviation {deviation:.3e}"
            )
