"""Multi-head self-attention for the mini-BERT encoder.

Implements scaled dot-product attention with an additive mask, exactly
the mechanism of the BERT base model used in the paper's downstream
experiments (we shrink the width/depth, not the math).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor, no_grad


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product self-attention.

    Parameters
    ----------
    dim:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    dropout:
        Dropout rate applied to attention probabilities.
    rng:
        Generator for weight initialization and dropout masks.
    tie_qk_init:
        Initialize the key projection identically to the query
        projection (they remain independent trainable parameters).
        With ``W_q = W_k = W`` the pre-softmax score of two positions is
        ``(Wx)·(Wy)`` — a positive-definite kernel maximized when the
        positions hold the same token.  This *matching-aware
        initialization* is what lets a small encoder learn cross-segment
        lexical matching (paraphrase/alignment) from little data; large
        pre-trained models acquire the same behaviour from scale.
    qk_init_scale:
        Multiplier on the tied q/k weights so the matching signal
        dominates the softmax at initialization.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        tie_qk_init: bool = False,
        qk_init_scale: float = 2.0,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        if tie_qk_init:
            with no_grad():
                self.query.weight.data = self.query.weight.data * qk_init_scale
                self.key.weight.data = self.query.weight.data.copy()

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend over ``x`` of shape (batch, seq, dim).

        ``attention_mask`` is 1 for real tokens and 0 for padding, shape
        (batch, seq); padded key positions receive -inf-like bias so they
        get zero attention weight.
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=np.float64)
            if mask.shape != (batch, seq):
                raise ValueError(
                    f"attention_mask shape {mask.shape} != ({batch}, {seq})"
                )
            # (batch, 1, 1, seq): broadcast over heads and query positions.
            bias = (1.0 - mask)[:, None, None, :] * -1e9
            scores = scores + bias

        probs = F.softmax(scores, axis=-1)
        probs = self.attn_dropout(probs)
        context = probs @ v  # (batch, heads, seq, head_dim)
        merged = context.swapaxes(1, 2).reshape(batch, seq, self.dim)
        return self.out(merged)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(batch, seq, dim) -> (batch, heads, seq, head_dim)."""
        return x.reshape(batch, seq, self.num_heads, self.head_dim).swapaxes(1, 2)
