"""Opt-in NaN/Inf numeric sanitizer for the autograd engine.

PKGM's service vectors are only meaningful when every intermediate of
``S_R(h, r) = M_r h - r`` stays finite; a single NaN produced deep in a
forward pass silently poisons every embedding it touches.  This module
provides a runtime guard that the tensor op dispatch
(:meth:`repro.nn.tensor.Tensor._make`) and the optimizer steps
(:mod:`repro.nn.optim`) consult on every operation:

* **disabled** (the default) the guard is a single module-attribute
  truthiness check per op — no array is inspected, no allocation
  happens, so the hot path is effectively free;
* **enabled** every op output, incoming gradient, and parameter update
  is checked with ``np.isfinite`` and a :class:`NumericGuardError` is
  raised naming the offending op and the shapes involved.

Enable it one of three ways:

* programmatically: ``sanitizer.enable()`` / ``sanitizer.disable()``;
* scoped: ``with sanitizer.guard(): ...`` (restores the previous state
  on exit, and never turns an already-enabled guard off);
* environment: export ``REPRO_NUMERIC_GUARD=1`` — the trainers in
  :mod:`repro.core.trainer` and :mod:`repro.baselines.trainer` check
  the flag at the start of every run.

This is the dynamic companion of the static checks in
:mod:`repro.lint`.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

#: Environment variable that turns the guard on for trainer runs.
ENV_FLAG = "REPRO_NUMERIC_GUARD"

#: Module-level switch.  Read directly (``sanitizer.ENABLED``) on hot
#: paths so the disabled case costs one attribute lookup.
ENABLED = False


class NumericGuardError(FloatingPointError):
    """A non-finite value was produced while the sanitizer was active.

    Attributes
    ----------
    op:
        Name of the operation (or optimizer step) that produced or
        received the non-finite value.
    shapes:
        Shapes of the arrays involved, for the diagnostic message.
    """

    def __init__(
        self,
        message: str,
        op: Optional[str] = None,
        shapes: Sequence[Tuple[int, ...]] = (),
    ) -> None:
        super().__init__(message)
        self.op = op
        self.shapes = tuple(shapes)


def is_enabled() -> bool:
    """Whether the sanitizer is currently active."""
    return ENABLED


def enable() -> None:
    """Turn the sanitizer on globally."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn the sanitizer off globally."""
    global ENABLED
    ENABLED = False


def env_enabled() -> bool:
    """Whether ``REPRO_NUMERIC_GUARD`` requests the guard."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in {"1", "true", "yes", "on"}


class guard:
    """Context manager that enables the sanitizer for a scope.

    ``guard(False)`` is a no-op scope: it never *disables* an
    already-active guard (an outer caller's request wins), it only
    refrains from enabling.  The previous state is restored on exit.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._requested = bool(enabled)
        self._previous = False

    def __enter__(self) -> "guard":
        global ENABLED
        self._previous = ENABLED
        ENABLED = ENABLED or self._requested
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global ENABLED
        ENABLED = self._previous


def _kinds(array: np.ndarray) -> str:
    """Describe which non-finite kinds ``array`` contains (``NaN``/``Inf``)."""
    found = []
    if np.isnan(array).any():
        found.append("NaN")
    if np.isinf(array).any():
        found.append("Inf")
    return "/".join(found) or "non-finite value"


def check_op(op: str, out: np.ndarray, operands: Iterable[np.ndarray] = ()) -> None:
    """Raise :class:`NumericGuardError` if ``out`` is not finite.

    Called from :meth:`repro.nn.tensor.Tensor._make` for every recorded
    op while the guard is enabled.  ``operands`` are the parent arrays;
    their shapes go into the diagnostic.
    """
    if np.isfinite(out).all():
        return
    shapes = tuple(np.shape(o) for o in operands)
    raise NumericGuardError(
        f"numeric guard: op '{op}' produced {_kinds(np.asarray(out))} "
        f"(output shape {np.shape(out)}, operand shapes {list(shapes)})",
        op=op,
        shapes=shapes,
    )


def check_update(
    where: str,
    param,
    grad: Optional[np.ndarray] = None,
    update: Optional[np.ndarray] = None,
) -> None:
    """Guard one optimizer update for one parameter.

    Raises if the incoming gradient or the post-step parameter value is
    non-finite, naming the optimizer step and the parameter.
    """
    name = getattr(param, "name", None) or "<unnamed parameter>"
    if grad is not None and not np.isfinite(grad).all():
        raise NumericGuardError(
            f"numeric guard: {where} received a gradient containing "
            f"{_kinds(np.asarray(grad))} for parameter '{name}' "
            f"(shape {np.shape(grad)})",
            op=where,
            shapes=(np.shape(grad),),
        )
    if update is not None and not np.isfinite(update).all():
        raise NumericGuardError(
            f"numeric guard: {where} produced {_kinds(np.asarray(update))} "
            f"in parameter '{name}' (shape {np.shape(update)})",
            op=where,
            shapes=(np.shape(update),),
        )
