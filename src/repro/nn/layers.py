"""Core neural network layers on the numpy autograd engine.

Provides the building blocks shared by the mini-BERT encoder, NCF, and
PKGM: linear projections, embedding tables, layer normalization,
dropout, activation modules, a generic MLP, and ``Sequential``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, no_grad


class Linear(Module):
    """Affine projection ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to add a learned bias.
    rng:
        Generator used for Xavier-uniform initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.swapaxes(0, 1)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for token embeddings, entity/relation embeddings, and the
    user/item embedding matrices ``P``/``Q`` of NCF (Eq. 11).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        init_fn: Optional[Callable[[np.random.Generator, tuple], np.ndarray]] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        init_fn = init_fn if init_fn is not None else init.xavier_uniform
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init_fn(rng, (num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight.take_rows(ids)

    def renormalize(self, max_norm: float = 1.0) -> None:
        """Project rows with L2 norm above ``max_norm`` back onto the ball.

        TransE constrains entity embeddings to the unit sphere; PKGM
        inherits the constraint via its TransE triple query module.
        Operates in-place on the raw parameter data.
        """
        norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
        scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
        with no_grad():
            self.weight.data = self.weight.data * scale


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered**2).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self.rng)


class ReLU(Module):
    """Elementwise max(x, 0)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (BERT's activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.add_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``sizes`` lists every layer width including input and output, e.g.
    ``[64, 32, 16, 8]`` builds three linear layers — the tower shape NCF
    uses above the concatenated user/item embeddings (Eq. 14–17).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "relu",
        final_activation: bool = False,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng if rng is not None else np.random.default_rng(0)
        act_classes = {"relu": ReLU, "gelu": GELU, "tanh": Tanh, "sigmoid": Sigmoid}
        if activation not in act_classes:
            raise ValueError(f"unknown activation {activation!r}")

        modules: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            modules.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(sizes) - 2
            if not is_last or final_activation:
                modules.append(act_classes[activation]())
                if dropout > 0.0:
                    modules.append(Dropout(dropout, rng=rng))
        self.net = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
