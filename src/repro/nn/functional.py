"""Free-standing functional operations built on :class:`repro.nn.Tensor`.

These mirror the subset of ``torch.nn.functional`` the reproduction
needs: stable softmax / log-softmax, the classification and ranking
losses used by PKGM and the downstream task models, and a handful of
utility transforms.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor, ensure_tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape (N, C) and integer ``labels``.

    This is the fine-tuning loss for item classification (Eq. 10 in the
    paper, followed by cross entropy over category labels).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), labels]
    loss = -picked
    return _reduce(loss, reduction)


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: Union[np.ndarray, Tensor], reduction: str = "mean"
) -> Tensor:
    """Numerically stable BCE on raw logits.

    Uses the identity ``bce = max(x, 0) - x*y + log(1 + exp(-|x|))`` so the
    loss never overflows.  This is the NCF objective (Eq. 19).
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets, dtype=np.float64)
    zero = logits * 0.0
    pos = _maximum(logits, zero)
    loss = pos - logits * targets + ((-logits.abs()).exp() + 1.0).log()
    return _reduce(loss, reduction)


def margin_ranking_loss(
    positive_scores: Tensor,
    negative_scores: Tensor,
    margin: float,
    reduction: str = "sum",
) -> Tensor:
    """Margin-based ranking loss ``[pos + γ - neg]_+`` (paper Eq. 4–5).

    Positive triples should score *lower* than negatives by at least
    ``margin``, matching TransE's distance-style scoring.
    """
    gap = positive_scores - negative_scores + margin
    loss = gap.relu()
    return _reduce(loss, reduction)


def mse_loss(prediction: Tensor, target: Union[np.ndarray, Tensor], reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = ensure_tensor(target)
    return _reduce((prediction - target) ** 2, reduction)


def l1_norm(x: Tensor, axis: int = -1) -> Tensor:
    """L1 norm along ``axis`` — TransE's distance (Eq. 1–2)."""
    return x.abs().sum(axis=axis)


def l2_norm(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2 norm along ``axis`` with an epsilon for gradient stability at 0."""
    return ((x**2).sum(axis=axis) + eps).sqrt()


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit L2 ball (TransE entity constraint)."""
    norms = ((x**2).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norms


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * mask


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, num_classes), dtype=np.float64)
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(*indices.shape, num_classes)


def _maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max of two tensors via relu identity."""
    return (a - b).relu() + b


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
