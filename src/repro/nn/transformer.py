"""Transformer encoder stack (the body of the mini-BERT substitute).

The paper fine-tunes Google's pre-trained Chinese BERT-base
(12 layers / hidden 768 / 12 heads).  Pre-trained checkpoints cannot be
downloaded in this environment, so :mod:`repro.text` instantiates this
encoder at a smaller width and pre-trains it with masked language
modeling on the synthetic title corpus — same architecture family,
laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .attention import MultiHeadAttention
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of the encoder stack.

    Defaults give a small but non-trivial encoder that trains in seconds
    on synthetic data; the paper's BERT-base corresponds to
    ``dim=768, num_layers=12, num_heads=12, ffn_dim=3072``.
    """

    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 128
    dropout: float = 0.1
    tie_qk_init: bool = False

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError(
                f"dim {self.dim} must be divisible by num_heads {self.num_heads}"
            )
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")


class TransformerEncoderLayer(Module):
    """Post-norm transformer block: attention + FFN, each with residual."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.attention = MultiHeadAttention(
            config.dim,
            config.num_heads,
            dropout=config.dropout,
            rng=rng,
            tie_qk_init=config.tie_qk_init,
        )
        self.attn_norm = LayerNorm(config.dim)
        self.ffn_in = Linear(config.dim, config.ffn_dim, rng=rng)
        self.ffn_act = GELU()
        self.ffn_out = Linear(config.ffn_dim, config.dim, rng=rng)
        self.ffn_norm = LayerNorm(config.dim)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask)
        x = self.attn_norm(x + self.dropout(attended))
        ffn = self.ffn_out(self.ffn_act(self.ffn_in(x)))
        return self.ffn_norm(x + self.dropout(ffn))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`.

    Input embeddings (token + position + segment) are produced by the
    caller; this module only applies the encoder blocks.
    """

    def __init__(
        self,
        config: TransformerConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config
        self._layer_names: List[str] = []
        for i in range(config.num_layers):
            name = f"block{i}"
            self.add_module(name, TransformerEncoderLayer(config, rng))
            self._layer_names.append(name)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        for name in self._layer_names:
            x = self._modules[name](x, attention_mask=attention_mask)
        return x
