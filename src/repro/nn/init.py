"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every
model in the reproduction is deterministic given a seed — a requirement
for the paper-vs-measured comparisons in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def uniform(rng: np.random.Generator, shape: Tuple[int, ...], low: float, high: float) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(rng: np.random.Generator, shape: Tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian initialization (BERT uses std 0.02)."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform: bound = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier normal: std = sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He uniform, appropriate before ReLU layers."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def transe_embedding(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """The TransE paper's embedding init: uniform(-6/sqrt(d), 6/sqrt(d))."""
    dim = shape[-1]
    bound = 6.0 / np.sqrt(dim)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases, padding rows)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialization (LayerNorm gain)."""
    return np.ones(shape)


def identity_stack(count: int, dim: int, noise_std: float = 0.0, rng: np.random.Generator = None) -> np.ndarray:
    """``count`` copies of the d×d identity, optionally perturbed.

    Used to initialize PKGM's per-relation transfer matrices ``M_r`` so
    the relation query module starts near the identity map, which keeps
    early-training scores well conditioned.
    """
    out = np.tile(np.eye(dim), (count, 1, 1))
    if noise_std > 0.0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        out = out + rng.normal(0.0, noise_std, size=out.shape)
    return out


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
