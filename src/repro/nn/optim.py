"""Optimizers for the numpy autograd engine.

The paper trains PKGM with Adam (lr 1e-4) and fine-tunes BERT with Adam
(lr 2e-5); NCF uses minibatch Adam.  We provide SGD (with momentum),
Adam, and AdamW, plus gradient clipping and a simple warmup scheduler.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from . import sanitizer as _sanitizer
from .module import Parameter
from .tensor import no_grad


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm.
        """
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        with no_grad():
            for param in self.parameters:
                if param.grad is None:
                    continue
                grad = param.grad
                if _sanitizer.ENABLED:
                    _sanitizer.check_update("SGD.step", param, grad=grad)
                if self.weight_decay:
                    grad = grad + self.weight_decay * param.data
                if self.momentum:
                    vel = self._velocity.get(id(param))
                    vel = self.momentum * vel + grad if vel is not None else grad
                    self._velocity[id(param)] = vel
                    grad = vel
                param.data = param.data - self.lr * grad
                if _sanitizer.ENABLED:
                    _sanitizer.check_update("SGD.step", param, update=param.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used throughout the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        with no_grad():
            for param in self.parameters:
                if param.grad is None:
                    continue
                grad = param.grad
                if _sanitizer.ENABLED:
                    _sanitizer.check_update("Adam.step", param, grad=grad)
                if self.weight_decay:
                    # L2-style decay folded into the gradient (classic Adam).
                    grad = grad + self.weight_decay * param.data
                key = id(param)
                m = self._m.get(key)
                v = self._v.get(key)
                m = self.beta1 * m + (1 - self.beta1) * grad if m is not None else (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad**2 if v is not None else (1 - self.beta2) * grad**2
                self._m[key], self._v[key] = m, v
                m_hat = m / bias1
                v_hat = v / bias2
                param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
                if _sanitizer.ENABLED:
                    _sanitizer.check_update("Adam.step", param, update=param.data)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            if decay:
                with no_grad():
                    for param in self.parameters:
                        if param.grad is not None:
                            param.data = param.data * (1.0 - self.lr * decay)
            super().step()
        finally:
            self.weight_decay = decay


class WarmupLinearSchedule:
    """Linear warmup then linear decay, as used for BERT fine-tuning.

    Call :meth:`step` once per optimizer step; it mutates ``optimizer.lr``.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps]")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        self._step_count += 1
        t = self._step_count
        if self.warmup_steps and t <= self.warmup_steps:
            factor = t / self.warmup_steps
        else:
            remaining = max(self.total_steps - t, 0)
            denom = max(self.total_steps - self.warmup_steps, 1)
            factor = remaining / denom
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
