"""Degraded-mode serving: the resilient facade over the PKGM server.

The paper's serving tier answers billions of service-vector requests;
a production facade in front of it must never turn one bad id or one
flaky backend into a caller-visible exception.  The contract of
:class:`ResilientPKGMServer`:

* ``serve`` **never raises** — unknown / out-of-range entity ids and
  backend failures return a *flagged* fallback payload
  (``ServiceVectors.degraded`` is ``True``) with well-defined vectors:
  zeros, or the catalog-mean service vectors (``fallback="mean"``);
* transient backend errors are retried under a
  :class:`repro.reliability.retry.RetryPolicy`, and repeated failures
  trip a :class:`repro.reliability.retry.CircuitBreaker` so a dying
  backend stops being hammered;
* while the breaker is open, requests are answered from the
  :class:`repro.core.CachedPKGMServer` LRU — **stale** entries are
  valid model output and served as such (counted, not flagged);
* every degradation is counted in :class:`DegradationStats` for
  monitoring.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.cache import CachedPKGMServer
from ..core.service import ServiceVectors
from ..obs.metrics import MetricsRegistry, counter_view
from ..store.errors import QuarantinedRowError
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    Retrier,
    RetryExhaustedError,
    RetryPolicy,
    RPCError,
    StepClock,
)

FALLBACK_MODES = ("zero", "mean")


def fallback_payload(
    entity_id: int, k: int, dim: int, vectors: Optional[np.ndarray] = None
) -> ServiceVectors:
    """A flagged, well-defined payload for an unanswerable request.

    ``vectors`` is an optional (2, k, d) substitute (e.g. the catalog
    mean); without one the payload is all-zeros.  Shared by the
    resilient facade and the overload gateway so every degraded answer
    in the stack has the same shape and flag semantics.
    """
    if vectors is None:
        vectors = np.zeros((2, k, dim))
    return ServiceVectors(
        entity_id=int(entity_id),
        key_relations=np.full(k, -1, dtype=np.int64),
        triple_vectors=vectors[0].copy(),
        relation_vectors=vectors[1].copy(),
        degraded=True,
    )


class DegradationStats:
    """Structured error/degradation counters for the facade.

    The counters are registry-backed (``serving.*`` in a
    :class:`repro.obs.metrics.MetricsRegistry`) with the original
    attribute surface kept as read/write views, so both
    ``stats.requests += 1`` call sites and registry snapshots see the
    same numbers.
    """

    #: Every registry-backed counter attribute, in declaration order —
    #: the single list :meth:`snapshot` and :meth:`reset` iterate, so a
    #: new counter added above cannot be silently missed by either.
    COUNTER_FIELDS = (
        "requests",
        "served_live",
        "served_stale",
        "fallback_unknown",
        "fallback_error",
        "fallback_quarantined",
        "deadline_exceeded",
        "breaker_short_circuits",
    )

    requests = counter_view("serving.requests", help="Requests offered")
    served_live = counter_view("serving.served_live", help="Live answers")
    served_stale = counter_view("serving.served_stale", help="Stale-cache answers")
    fallback_unknown = counter_view(
        "serving.fallback_unknown", help="Unknown-id fallbacks"
    )
    fallback_error = counter_view(
        "serving.fallback_error", help="Backend-error fallbacks"
    )
    fallback_quarantined = counter_view(
        "serving.fallback_quarantined", help="Quarantined-row degraded reads"
    )
    deadline_exceeded = counter_view(
        "serving.deadline_exceeded", help="Deadline-blown fallbacks"
    )
    breaker_short_circuits = counter_view(
        "serving.breaker_short_circuits", help="Circuit-open short circuits"
    )

    def __init__(
        self,
        requests: int = 0,
        served_live: int = 0,
        served_stale: int = 0,
        fallback_unknown: int = 0,
        fallback_error: int = 0,
        fallback_quarantined: int = 0,
        deadline_exceeded: int = 0,
        breaker_short_circuits: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.requests = requests
        self.served_live = served_live
        self.served_stale = served_stale
        self.fallback_unknown = fallback_unknown
        self.fallback_error = fallback_error
        self.fallback_quarantined = fallback_quarantined
        self.deadline_exceeded = deadline_exceeded
        self.breaker_short_circuits = breaker_short_circuits

    def snapshot(self) -> dict:
        """Counter name → value, a plain-int copy safe to diff or log."""
        return {name: int(getattr(self, name)) for name in self.COUNTER_FIELDS}

    def reset(self) -> None:
        """Zero every counter *through* its registry view.

        Assignment goes through the ``counter_view`` descriptor
        (``set_total`` on the registry instrument), so the registry
        stays attached: post-reset increments keep landing in the same
        ``serving.*`` instruments and the next registry snapshot shows
        the zeroed values — which is what lets two loadtest runs over
        one facade be diffed cleanly.
        """
        for name in self.COUNTER_FIELDS:
            setattr(self, name, 0)

    @property
    def degraded_rate(self) -> float:
        degraded = (
            self.fallback_unknown
            + self.fallback_error
            + self.fallback_quarantined
            + self.deadline_exceeded
        )
        return degraded / self.requests if self.requests else 0.0

    def as_row(self) -> str:
        return (
            f"requests {self.requests} | live {self.served_live} | "
            f"stale {self.served_stale} | unknown-fallbacks "
            f"{self.fallback_unknown} | error-fallbacks {self.fallback_error} | "
            f"quarantined-fallbacks {self.fallback_quarantined} | "
            f"deadline-exceeded {self.deadline_exceeded} | "
            f"short-circuits {self.breaker_short_circuits} | "
            f"degraded {self.degraded_rate:.2%}"
        )


class ResilientPKGMServer:
    """Never-raising serving facade with retry, breaker, and fallbacks.

    ``backend`` may be a plain ``PKGMServer``-surface object or an
    existing :class:`CachedPKGMServer`; a plain backend is wrapped in a
    fresh LRU (the stale-serving path needs one).
    """

    #: Resolution outcomes (exactly one per request), pre-registered so
    #: every facade's snapshot exposes the same
    #: ``serving.resolution{outcome=...}`` keys.
    RESOLUTIONS = (
        "live",
        "stale",
        "fallback-unknown",
        "fallback-error",
        "fallback-quarantined",
        "deadline",
    )

    def __init__(
        self,
        backend,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fallback: str = "zero",
        cache_capacity: int = 1024,
        clock: Optional[StepClock] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if fallback not in FALLBACK_MODES:
            raise ValueError(
                f"fallback must be one of {FALLBACK_MODES}, got {fallback!r}"
            )
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._resolution = {
            outcome: self.metrics.counter(
                "serving.resolution",
                help="How requests were resolved",
                labels={"outcome": outcome},
            )
            for outcome in self.RESOLUTIONS
        }
        self.clock = clock if clock is not None else StepClock()
        if isinstance(backend, CachedPKGMServer):
            self._cached = backend
        else:
            self._cached = CachedPKGMServer(
                backend, capacity=cache_capacity, registry=self.metrics
            )
        self._retrier = Retrier(retry, clock=self.clock)
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(clock=self.clock)
        )
        if self.breaker.clock is not self.clock:
            # One clock drives backoff and recovery windows together.
            self.breaker.clock = self.clock
        self.fallback = fallback
        self.stats = DegradationStats(registry=self.metrics)
        self._mean_payload: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Surface passthrough
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._cached.k

    @property
    def dim(self) -> int:
        return self._cached.dim

    @property
    def num_entities(self) -> int:
        return self._cached.num_entities

    @property
    def num_relations(self) -> int:
        return self._cached.num_relations

    def cache_stats(self):
        return self._cached.stats()

    def retry_stats(self):
        return self._retrier.stats

    # ------------------------------------------------------------------
    # Fallback payloads
    # ------------------------------------------------------------------
    def _mean_vectors(self) -> Optional[np.ndarray]:
        """Catalog-mean (2, k, d) payload, computed once and memoized.

        Averages the true service vectors over every known item; if the
        backend cannot enumerate items (or is down), returns ``None``
        and the caller degrades to zeros.
        """
        if self._mean_payload is not None:
            return self._mean_payload
        try:
            item_ids = self._cached.known_items()
            if not item_ids:
                return None
            total = np.zeros((2, self.k, self.dim))
            for item in item_ids:
                vectors = self._cached.serve(int(item))
                total[0] += vectors.triple_vectors
                total[1] += vectors.relation_vectors
            self._mean_payload = total / len(item_ids)
        except (RPCError, KeyError, IndexError, AttributeError, QuarantinedRowError):
            return None
        return self._mean_payload

    def _fallback_payload(self, entity_id: int) -> ServiceVectors:
        """A flagged, well-defined payload for an unanswerable request."""
        vectors = None
        if self.fallback == "mean":
            vectors = self._mean_vectors()
        return fallback_payload(entity_id, self.k, self.dim, vectors)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, entity_id: Union[int, np.integer], deadline=None
    ) -> ServiceVectors:
        """Service vectors for one item.  Never raises.

        Resolution order: live backend (with retries, through the
        breaker) → stale cache entry → flagged fallback payload.

        ``deadline`` is an optional
        :class:`repro.reliability.admission.Deadline` on this facade's
        clock; a backend slower than the remaining budget (including
        backoff pauses that would overrun it) yields a flagged fallback
        payload and increments ``stats.deadline_exceeded`` — exactly
        once, and never an exception.
        """
        entity_id = int(entity_id)
        self.stats.requests += 1
        self.clock.advance(1.0)  # one virtual second per request tick
        try:
            vectors = self.breaker.call(
                self._retrier.call_with_deadline,
                deadline,
                self._cached.serve,
                entity_id,
            )
        except CircuitOpenError:
            self.stats.breaker_short_circuits += 1
            return self._stale_or_fallback(entity_id, error=True)
        except DeadlineExceededError:
            self.stats.deadline_exceeded += 1
            self._resolution["deadline"].inc()
            return self._fallback_payload(entity_id)
        except (RPCError, RetryExhaustedError):
            return self._stale_or_fallback(entity_id, error=True)
        except QuarantinedRowError:
            # Storage damage: the row's page failed its CRC and is
            # quarantined.  Not a caller bug (the id is valid) and not a
            # transient fault (retrying re-reads the same bad bytes), so
            # it bypasses retry/breaker and resolves stale → fallback.
            return self._stale_or_fallback(entity_id, error=True, quarantined=True)
        except (KeyError, IndexError):
            self.stats.fallback_unknown += 1
            self._resolution["fallback-unknown"].inc()
            return self._fallback_payload(entity_id)
        self.stats.served_live += 1
        self._resolution["live"].inc()
        return vectors

    def _stale_or_fallback(
        self, entity_id: int, error: bool, quarantined: bool = False
    ) -> ServiceVectors:
        stale = self._cached.peek(entity_id)
        if stale is not None:
            self.stats.served_stale += 1
            self._resolution["stale"].inc()
            return stale
        if quarantined:
            self.stats.fallback_quarantined += 1
            self._resolution["fallback-quarantined"].inc()
        elif error:
            self.stats.fallback_error += 1
            self._resolution["fallback-error"].inc()
        else:
            self.stats.fallback_unknown += 1
            self._resolution["fallback-unknown"].inc()
        return self._fallback_payload(entity_id)

    def serve_batch(self, entity_ids: Sequence[int]) -> List[ServiceVectors]:
        return [self.serve(int(e)) for e in entity_ids]

    def serve_sequence_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """(batch, 2k, d) payload; degraded rows are fallback vectors."""
        return np.stack([self.serve(int(e)).sequence() for e in entity_ids])

    def serve_condensed_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """(batch, 2d) payload; degraded rows are fallback vectors."""
        return np.stack([self.serve(int(e)).condensed() for e in entity_ids])

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        """Existence score, or ``nan`` when it cannot be computed."""
        try:
            return self.breaker.call(
                self._retrier.call,
                self._cached.relation_existence_score,
                int(entity_id),
                int(relation),
            )
        except (
            CircuitOpenError,
            RPCError,
            RetryExhaustedError,
            QuarantinedRowError,
            KeyError,
            IndexError,
        ):
            return float("nan")
