"""Seeded open-loop traffic generation against the overload gateway.

The acceptance question for admission control is not "does it work on
one request" but "what happens to goodput and tail latency when traffic
triples for thirty seconds".  This module drives a
:class:`~repro.reliability.gateway.PKGMGateway` with deterministic
open-loop traffic (arrivals do not wait for responses — the pattern
that actually overloads servers) and reports the metrics operators
watch: goodput, shed rate, p50/p99 virtual latency, hedge-win rate.

Three canonical profiles:

* ``sustained`` — constant arrival rate (capacity planning baseline);
* ``ramp`` — linear growth from 0.2× to 2× the base rate (finds the
  knee where the AIMD limiter starts shedding);
* ``spike`` — 1× base with an 8× burst through the middle fifth (the
  flash-crowd scenario; sheds must absorb it without a single raise).

Everything is a pure function of the seed: inter-arrival gaps, the
Zipf-skewed item popularity, priorities, the occasional unknown id,
and the replicas' latency draws.  Two runs with the same
:class:`LoadTestConfig` produce byte-identical reports, so overload
behaviour is replayable and diffable in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .gateway import GatewayResponse, PKGMGateway


def _sustained(frac: float) -> float:
    """Constant 1× the base rate."""
    return 1.0


def _ramp(frac: float) -> float:
    """Linear 0.2× → 2× of the base rate across the run."""
    return 0.2 + 1.8 * frac


def _spike(frac: float) -> float:
    """1× base with an 8× flash crowd through the middle fifth."""
    return 8.0 if 0.4 <= frac < 0.6 else 1.0


#: Profile name → arrival-rate multiplier over run fraction [0, 1).
PROFILES: Dict[str, Callable[[float], float]] = {
    "sustained": _sustained,
    "ramp": _ramp,
    "spike": _spike,
}


@dataclass(frozen=True)
class LoadTestConfig:
    """One reproducible load-test scenario."""

    profile: str = "spike"
    requests: int = 2000
    base_rate: float = 400.0  # mean arrivals per virtual second at 1x
    seed: int = 0
    priority_levels: int = 3
    unknown_prob: float = 0.01
    zipf_alpha: float = 1.1  # popularity skew over the item catalog
    drain_at: Optional[float] = 0.5  # run fraction for drain+swap (None: never)

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(
                f"profile must be one of {sorted(PROFILES)}, got {self.profile!r}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")
        if not 0.0 <= self.unknown_prob <= 1.0:
            raise ValueError("unknown_prob must be in [0, 1]")
        if self.drain_at is not None and not 0.0 < self.drain_at < 1.0:
            raise ValueError("drain_at must be in (0, 1) when set")


@dataclass
class LoadTestReport:
    """What one load-test run measured (all latencies virtual seconds)."""

    profile: str
    requests: int
    completed: int
    ok: int
    shed: int
    degraded_backend: int
    deadline_misses: int
    hedges_sent: int
    hedge_wins: int
    drains: int
    swaps: int
    p50_latency: float
    p99_latency: float
    duration: float

    @property
    def goodput(self) -> float:
        return self.ok / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def hedge_win_rate(self) -> float:
        return self.hedge_wins / self.hedges_sent if self.hedges_sent else 0.0

    def as_rows(self) -> List[str]:
        """Fixed-precision report lines (byte-identical per seed)."""
        return [
            f"profile {self.profile} | requests {self.requests} | "
            f"duration {self.duration:.3f}s",
            f"goodput {self.goodput:.4f} | shed {self.shed_rate:.4f} | "
            f"degraded-backend {self.degraded_backend} | "
            f"deadline-misses {self.deadline_misses}",
            f"latency p50 {self.p50_latency:.6f}s | p99 {self.p99_latency:.6f}s",
            f"hedges {self.hedges_sent} | hedge-wins {self.hedge_wins} | "
            f"hedge-win-rate {self.hedge_win_rate:.4f}",
            f"drains {self.drains} | swaps {self.swaps}",
        ]


def run_loadtest(
    gateway: PKGMGateway,
    item_ids: Sequence[int],
    config: Optional[LoadTestConfig] = None,
    swap_server=None,
) -> LoadTestReport:
    """Drive ``gateway`` with one open-loop traffic scenario.

    ``item_ids`` is the catalog to draw (Zipf-skewed) requests from.
    With ``config.drain_at`` set, the run performs a mid-run
    ``drain()`` + ``swap(swap_server)`` — ``swap_server`` defaults to
    the replicas' current snapshot source, i.e. a same-model refresh.
    Raises only on configuration errors; traffic itself can never
    raise (that is the gateway's contract, and the report asserts
    every request was answered exactly once).
    """
    config = config if config is not None else LoadTestConfig()
    if not item_ids:
        raise ValueError("need a non-empty item catalog")
    shape = PROFILES[config.profile]
    rng = np.random.default_rng(config.seed)
    items = np.asarray(sorted(int(i) for i in item_ids), dtype=np.int64)
    # Zipf-skewed popularity: weight 1/rank^alpha over the sorted catalog.
    weights = 1.0 / np.arange(1, len(items) + 1, dtype=np.float64) ** config.zipf_alpha
    weights /= weights.sum()
    unknown_id = int(items.max()) + 10**6

    responses: List[GatewayResponse] = []
    drain_index = (
        int(config.requests * config.drain_at) if config.drain_at is not None else -1
    )
    start_time = gateway.clock.now()
    for index in range(config.requests):
        if index == drain_index:
            responses.extend(gateway.drain())
            target = swap_server
            if target is None:
                # Same-model refresh: re-install the primary replica's
                # current underlying snapshot.
                primary = gateway.replicas[0].server
                target = getattr(primary, "_server", primary)
            gateway.swap(target)
        rate = config.base_rate * shape(index / config.requests)
        gateway.clock.advance(float(rng.exponential(1.0 / rate)))
        responses.extend(gateway.step())
        if config.unknown_prob and float(rng.random()) < config.unknown_prob:
            entity = unknown_id + index
        else:
            entity = int(items[int(rng.choice(len(items), p=weights))])
        priority = int(rng.integers(0, config.priority_levels))
        shed = gateway.submit(entity, priority=priority)
        if shed is not None:
            responses.append(shed)
    responses.extend(gateway.drain())
    duration = gateway.clock.now() - start_time

    if len(responses) != config.requests:
        raise AssertionError(
            f"gateway answered {len(responses)} of {config.requests} requests; "
            "the exactly-once contract is broken"
        )
    seen = {response.request_id for response in responses}
    if len(seen) != config.requests:
        raise AssertionError("duplicate responses violate the exactly-once contract")

    stats = gateway.stats
    ok_latencies = np.asarray(
        [response.latency for response in responses if response.ok], dtype=np.float64
    )
    if ok_latencies.size:
        p50 = float(np.percentile(ok_latencies, 50))
        p99 = float(np.percentile(ok_latencies, 99))
    else:
        p50 = p99 = float("nan")
    return LoadTestReport(
        profile=config.profile,
        requests=config.requests,
        completed=len(responses),
        ok=stats.completed_ok,
        shed=stats.shed,
        degraded_backend=stats.backend_errors,
        deadline_misses=stats.deadline_queue_misses + stats.deadline_backend_misses,
        hedges_sent=stats.hedges_sent,
        hedge_wins=stats.hedge_wins,
        drains=stats.drains,
        swaps=stats.swaps,
        p50_latency=p50,
        p99_latency=p99,
        duration=duration,
    )
