"""Admission control: rate limiting, adaptive concurrency, and shedding.

The paper's serving tier answers service-vector requests for hundreds
of millions of items; at that scale *overload* is as routine as
failure.  A server without admission control converts a traffic spike
into unbounded queueing, blown tail latencies, and cascading timeouts.
This module supplies the standard production counter-measures, every
one of them deterministic on the virtual
:class:`repro.reliability.retry.StepClock`:

* :class:`TokenBucket` — a classic rate limiter: requests spend
  tokens that refill at ``rate`` per virtual second up to ``burst``;
* :class:`AIMDLimiter` — an adaptive concurrency limit (additive
  increase on healthy completions, multiplicative decrease on overload
  signals), the TCP-congestion-control shape used by gradient/Netflix
  concurrency-limits style limiters;
* :class:`BoundedPriorityQueue` — the wait queue: bounded, ordered by
  (priority desc, arrival asc), with deterministic shedding on
  overflow (a higher-priority arrival evicts the youngest
  lowest-priority waiter; otherwise the arrival itself is shed);
* :class:`Deadline` — a per-request time budget that layers propagate
  into backend calls so work is cancelled, not queued, once it cannot
  possibly be useful;
* :class:`AdmissionController` — composes the three mechanisms behind
  one decision API and keeps :class:`AdmissionStats`.

Shedding here never *errors*: callers (the gateway) translate a shed
decision into the existing flagged ``degraded=True`` fallback payload,
so overload degrades answers instead of raising exceptions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Generic, List, Optional, Tuple, TypeVar

from ..obs.metrics import MetricsRegistry, counter_view
from .retry import StepClock

T = TypeVar("T")


class Deadline:
    """An absolute virtual-time budget for one request.

    Created from a relative ``budget`` against a :class:`StepClock`;
    layers pass the object down (gateway → retrier → backend call) so
    every stage sees the *same* remaining budget instead of each
    applying its own timeout.
    """

    def __init__(self, clock: StepClock, budget: float) -> None:
        if budget < 0:
            raise ValueError("deadline budget must be >= 0")
        self.clock = clock
        self.expires_at = clock.now() + budget

    def remaining(self) -> float:
        """Virtual seconds left before expiry (never negative)."""
        return max(0.0, self.expires_at - self.clock.now())

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.clock.now() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(expires_at={self.expires_at:.3f}, " f"remaining={self.remaining():.3f})"


class TokenBucket:
    """Deterministic token-bucket rate limiter on a virtual clock.

    ``rate`` tokens accrue per virtual second up to ``burst``; a
    request takes one token or is refused.  ``rate=None`` disables the
    limiter (always admits).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 32.0,
        clock: Optional[StepClock] = None,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self.clock = clock if clock is not None else StepClock()
        self._tokens = float(burst)
        self._last_refill = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0 and self.rate is not None:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last_refill = now

    def available(self) -> float:
        """Tokens currently available (after refill)."""
        self._refill()
        return self._tokens if self.rate is not None else float("inf")

    def try_take(self) -> bool:
        """Spend one token; ``False`` means the request is rate-shed."""
        if self.rate is None:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AIMDLimiter:
    """Adaptive concurrency limit: additive increase, multiplicative decrease.

    Healthy completions grow the limit by ``increase / limit`` (one
    extra slot per full window of successes, TCP-style); overload
    signals — deadline misses, latencies past the target — cut it by
    ``decrease`` at most once per limit-window.  The limit always stays
    within ``[min_limit, max_limit]``.
    """

    def __init__(
        self,
        initial: int = 8,
        min_limit: int = 1,
        max_limit: int = 64,
        increase: float = 1.0,
        decrease: float = 0.5,
    ) -> None:
        if not 1 <= min_limit <= initial <= max_limit:
            raise ValueError("need 1 <= min_limit <= initial <= max_limit")
        if increase <= 0:
            raise ValueError("increase must be positive")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease
        self._limit = float(initial)
        self.raises = 0
        self.backoffs = 0

    @property
    def limit(self) -> int:
        """The current integer concurrency limit."""
        return int(self._limit)

    def on_success(self) -> None:
        """A completion under the latency target: grow additively."""
        before = self.limit
        self._limit = min(
            float(self.max_limit), self._limit + self.increase / max(self._limit, 1.0)
        )
        if self.limit > before:
            self.raises += 1

    def on_overload(self) -> None:
        """An overload signal: shrink multiplicatively."""
        self._limit = max(float(self.min_limit), self._limit * self.decrease)
        self.backoffs += 1


@dataclass(order=True)
class _QueueEntry(Generic[T]):
    """Heap entry ordered by (priority desc, arrival seq asc)."""

    sort_key: Tuple[int, int]
    seq: int = field(compare=False)
    priority: int = field(compare=False)
    item: T = field(compare=False)


class BoundedPriorityQueue(Generic[T]):
    """A bounded wait queue ordered by priority, FIFO within a priority.

    ``push`` on a full queue sheds deterministically: if the arrival
    outranks the weakest waiter (lowest priority; youngest arrival
    breaks ties), that waiter is evicted and returned; otherwise the
    arrival itself is returned as rejected.  Tail-dropping equal
    priorities keeps older (already-queued) work first.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._heap: List[_QueueEntry[T]] = []
        self._dead: set = set()
        self._size = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: T, priority: int = 0) -> Optional[T]:
        """Enqueue ``item``; returns the shed item on overflow (which
        may be ``item`` itself), else ``None``."""
        if self._size >= self.capacity:
            weakest = self._weakest()
            if weakest is None or priority <= weakest.priority:
                return item
            self._dead.add(weakest.seq)
            self._size -= 1
            evicted = weakest.item
        else:
            evicted = None
        entry = _QueueEntry(
            sort_key=(-priority, self._seq), seq=self._seq, priority=priority, item=item
        )
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._size += 1
        return evicted

    def pop(self) -> Optional[T]:
        """Dequeue the highest-priority, oldest waiter (``None`` if empty)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.seq in self._dead:
                self._dead.discard(entry.seq)
                continue
            self._size -= 1
            return entry.item
        return None

    def _weakest(self) -> Optional[_QueueEntry[T]]:
        """The live entry shed first: lowest priority, youngest arrival."""
        weakest: Optional[_QueueEntry[T]] = None
        for entry in self._heap:
            if entry.seq in self._dead:
                continue
            if weakest is None or (entry.priority, -entry.seq) < (
                weakest.priority,
                -weakest.seq,
            ):
                weakest = entry
        return weakest


class AdmissionAction(Enum):
    """What the controller decided for one arriving request."""

    START = "start"
    QUEUE = "queue"
    SHED_RATE = "shed-rate-limited"
    SHED_QUEUE_FULL = "shed-queue-full"


@dataclass
class AdmissionDecision(Generic[T]):
    """Controller verdict: the action plus any evicted queue victim."""

    action: AdmissionAction
    evicted: Optional[T] = None


class AdmissionStats:
    """Accounting for one :class:`AdmissionController`.

    Counters are registry-backed (``admission.*``) with the original
    attribute names kept as read/write views — both the controller's
    ``stats.arrived += 1`` increments and registry snapshots observe
    the same instruments.
    """

    arrived = counter_view("admission.arrived", help="Requests offered")
    started = counter_view("admission.started", help="Requests started")
    queued = counter_view("admission.queued", help="Requests queued")
    shed_rate_limited = counter_view(
        "admission.shed_rate_limited", help="Token-bucket sheds"
    )
    shed_queue_full = counter_view(
        "admission.shed_queue_full", help="Queue-overflow sheds"
    )
    evicted = counter_view("admission.evicted", help="Queue evictions")
    completed_ok = counter_view(
        "admission.completed_ok", help="Healthy completions"
    )
    completed_overload = counter_view(
        "admission.completed_overload", help="Overloaded completions"
    )

    def __init__(
        self,
        arrived: int = 0,
        started: int = 0,
        queued: int = 0,
        shed_rate_limited: int = 0,
        shed_queue_full: int = 0,
        evicted: int = 0,
        completed_ok: int = 0,
        completed_overload: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.arrived = arrived
        self.started = started
        self.queued = queued
        self.shed_rate_limited = shed_rate_limited
        self.shed_queue_full = shed_queue_full
        self.evicted = evicted
        self.completed_ok = completed_ok
        self.completed_overload = completed_overload

    @property
    def shed(self) -> int:
        """Total requests refused by admission (rate + queue + evictions)."""
        return self.shed_rate_limited + self.shed_queue_full + self.evicted

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0

    def as_row(self) -> str:
        return (
            f"admission: arrived {self.arrived} | started {self.started} | "
            f"queued {self.queued} | shed-rate {self.shed_rate_limited} | "
            f"shed-queue {self.shed_queue_full} | evicted {self.evicted} | "
            f"shed {self.shed_rate:.2%}"
        )


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one :class:`AdmissionController`."""

    rate: Optional[float] = None
    burst: float = 32.0
    initial_limit: int = 8
    min_limit: int = 1
    max_limit: int = 64
    increase: float = 1.0
    decrease: float = 0.5
    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


class AdmissionController(Generic[T]):
    """Token bucket + AIMD concurrency limit + bounded priority queue.

    The controller tracks in-flight occupancy itself: ``offer`` admits,
    queues, or sheds an arrival; ``release`` returns a slot (feeding
    the AIMD limiter a health signal); ``next_ready`` hands back the
    next queued item once a slot is free.  It knows nothing about what
    a request *is* — the gateway owns payloads and fallback semantics.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Optional[StepClock] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.clock = clock if clock is not None else StepClock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.bucket = TokenBucket(
            rate=self.config.rate, burst=self.config.burst, clock=self.clock
        )
        self.limiter = AIMDLimiter(
            initial=self.config.initial_limit,
            min_limit=self.config.min_limit,
            max_limit=self.config.max_limit,
            increase=self.config.increase,
            decrease=self.config.decrease,
        )
        self.queue: BoundedPriorityQueue[T] = BoundedPriorityQueue(
            self.config.queue_capacity
        )
        self.inflight = 0
        self.stats = AdmissionStats(registry=self.metrics)
        self._inflight_g = self.metrics.gauge(
            "admission.inflight", help="Occupied concurrency slots"
        )
        self._limit_g = self.metrics.gauge(
            "admission.limit", help="Current AIMD concurrency limit"
        )
        self._limit_g.set(self.limiter.limit)

    def has_slot(self) -> bool:
        """Whether a request could start right now (slot free, no queue)."""
        return self.inflight < self.limiter.limit and len(self.queue) == 0

    def offer(self, item: T, priority: int = 0) -> AdmissionDecision[T]:
        """Decide the fate of one arrival; occupies a slot on START."""
        self.stats.arrived += 1
        if not self.bucket.try_take():
            self.stats.shed_rate_limited += 1
            return AdmissionDecision(AdmissionAction.SHED_RATE)
        if self.has_slot():
            self.inflight += 1
            self._inflight_g.set(self.inflight)
            self.stats.started += 1
            return AdmissionDecision(AdmissionAction.START)
        shed = self.queue.push(item, priority)
        if shed is item:
            self.stats.shed_queue_full += 1
            return AdmissionDecision(AdmissionAction.SHED_QUEUE_FULL)
        self.stats.queued += 1
        if shed is not None:
            self.stats.evicted += 1
            return AdmissionDecision(AdmissionAction.QUEUE, evicted=shed)
        return AdmissionDecision(AdmissionAction.QUEUE)

    def release(self, overloaded: bool = False) -> None:
        """Return a slot; ``overloaded`` feeds the AIMD limiter."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching started request")
        self.inflight -= 1
        self._inflight_g.set(self.inflight)
        if overloaded:
            self.stats.completed_overload += 1
            self.limiter.on_overload()
        else:
            self.stats.completed_ok += 1
            self.limiter.on_success()
        self._limit_g.set(self.limiter.limit)

    def next_ready(self) -> Optional[T]:
        """Pop the next queued item into a free slot, if any."""
        if self.inflight >= self.limiter.limit:
            return None
        item = self.queue.pop()
        if item is not None:
            self.inflight += 1
            self._inflight_g.set(self.inflight)
            self.stats.started += 1
        return item
