"""Reliability engineering for the PKGM training and serving stack.

The paper's system (50 parameter servers, 200 workers, billions of
service calls) treats failure as the steady state; this package makes
the reproduction survive the same weather, deterministically:

* :mod:`repro.reliability.faults` — seeded fault injection on the PS
  pull/push channel (drops, duplicates, staleness spikes, transient
  RPC errors, shard crashes) and a flaky serving backend;
* :mod:`repro.reliability.retry` — exponential backoff with seeded
  jitter, retry budgets, and a closed/open/half-open circuit breaker
  over a virtual clock;
* :mod:`repro.reliability.checkpoint` — crash-consistent checkpoints
  (atomic tmp-write → fsync → rename, checksummed manifests) with
  bit-exact RNG-state resume;
* :mod:`repro.reliability.serving` — :class:`ResilientPKGMServer`, the
  never-raising degraded-mode serving facade;
* :mod:`repro.reliability.admission` — overload protection: token
  bucket, AIMD concurrency limit, bounded priority queue, deadlines;
* :mod:`repro.reliability.gateway` — :class:`PKGMGateway`, the
  overload-safe front door with deadline propagation, hedged requests
  and graceful drain/swap;
* :mod:`repro.reliability.loadtest` — seeded open-loop traffic
  profiles (spike / ramp / sustained) with deterministic reports.
"""

from .admission import (
    AdmissionAction,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    AIMDLimiter,
    BoundedPriorityQueue,
    Deadline,
    TokenBucket,
)
from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    atomic_save_npz,
    atomic_write_bytes,
    atomic_write_json,
    restore_rng,
    rng_state,
)
from .faults import (
    CrashEvent,
    FaultPlan,
    FaultStats,
    FaultyParameterServer,
    FlakyServingBackend,
    StorageFaultPlan,
    StorageFaultStats,
    inject_storage_faults,
)
from .gateway import (
    GatewayConfig,
    GatewayRequest,
    GatewayResponse,
    GatewayStats,
    LatencyModel,
    PKGMGateway,
    RetrievalPayload,
    TimedBackend,
    build_replicas,
)
from .loadtest import PROFILES, LoadTestConfig, LoadTestReport, run_loadtest
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    Retrier,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    RPCError,
    StepClock,
)
from .serving import DegradationStats, ResilientPKGMServer, fallback_payload

__all__ = [
    "AIMDLimiter",
    "AdmissionAction",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "BoundedPriorityQueue",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpenError",
    "CrashEvent",
    "Deadline",
    "DeadlineExceededError",
    "DegradationStats",
    "FaultPlan",
    "FaultStats",
    "FaultyParameterServer",
    "FlakyServingBackend",
    "GatewayConfig",
    "GatewayRequest",
    "GatewayResponse",
    "GatewayStats",
    "LatencyModel",
    "LoadTestConfig",
    "LoadTestReport",
    "PKGMGateway",
    "RetrievalPayload",
    "PROFILES",
    "RPCError",
    "ResilientPKGMServer",
    "Retrier",
    "RetryExhaustedError",
    "RetryPolicy",
    "RetryStats",
    "StepClock",
    "StorageFaultPlan",
    "StorageFaultStats",
    "TimedBackend",
    "TokenBucket",
    "atomic_save_npz",
    "atomic_write_bytes",
    "atomic_write_json",
    "build_replicas",
    "fallback_payload",
    "inject_storage_faults",
    "restore_rng",
    "rng_state",
    "run_loadtest",
]
