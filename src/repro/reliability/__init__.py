"""Reliability engineering for the PKGM training and serving stack.

The paper's system (50 parameter servers, 200 workers, billions of
service calls) treats failure as the steady state; this package makes
the reproduction survive the same weather, deterministically:

* :mod:`repro.reliability.faults` — seeded fault injection on the PS
  pull/push channel (drops, duplicates, staleness spikes, transient
  RPC errors, shard crashes) and a flaky serving backend;
* :mod:`repro.reliability.retry` — exponential backoff with seeded
  jitter, retry budgets, and a closed/open/half-open circuit breaker
  over a virtual clock;
* :mod:`repro.reliability.checkpoint` — crash-consistent checkpoints
  (atomic tmp-write → fsync → rename, checksummed manifests) with
  bit-exact RNG-state resume;
* :mod:`repro.reliability.serving` — :class:`ResilientPKGMServer`, the
  never-raising degraded-mode serving facade.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    atomic_save_npz,
    atomic_write_bytes,
    atomic_write_json,
    restore_rng,
    rng_state,
)
from .faults import (
    CrashEvent,
    FaultPlan,
    FaultStats,
    FaultyParameterServer,
    FlakyServingBackend,
)
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    Retrier,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    RPCError,
    StepClock,
)
from .serving import DegradationStats, ResilientPKGMServer

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpenError",
    "CrashEvent",
    "DegradationStats",
    "FaultPlan",
    "FaultStats",
    "FaultyParameterServer",
    "FlakyServingBackend",
    "RPCError",
    "ResilientPKGMServer",
    "Retrier",
    "RetryExhaustedError",
    "RetryPolicy",
    "RetryStats",
    "StepClock",
    "atomic_save_npz",
    "atomic_write_bytes",
    "atomic_write_json",
    "restore_rng",
    "rng_state",
]
