"""Retry policy engine: backoff, budgets, and a circuit breaker.

The paper's PKGM serves billions of requests from 50 parameter servers;
at that scale transient RPC failures are the steady state, and every
production PS/serving stack wraps its channels in exactly three
mechanisms reproduced here:

* :class:`RetryPolicy` / :class:`Retrier` — exponential backoff with
  seeded jitter, per-call attempt caps, and a global retry *budget*
  (so a dying backend cannot trap every caller in retry loops);
* :class:`CircuitBreaker` — closed/open/half-open state machine that
  stops hammering a failing dependency and probes for recovery;
* a **virtual clock** (:class:`StepClock`) — delays are accounted, not
  slept, so fault-injection runs stay fast *and* deterministic.

Everything is seeded: two runs with the same policy observe the same
jitter sequence, which the chaos tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

import numpy as np


class RPCError(RuntimeError):
    """A transient remote-call failure (retryable by contract)."""


class RetryExhaustedError(RuntimeError):
    """Raised when a call fails after exhausting attempts or budget."""


class CircuitOpenError(RuntimeError):
    """Raised when the breaker short-circuits a call without trying it."""


class DeadlineExceededError(RuntimeError):
    """Raised when a call's :class:`~repro.reliability.admission.Deadline`
    budget runs out before (or between) attempts."""


class StepClock:
    """Deterministic monotonic clock: advances only when told to.

    The reliability stack never sleeps; backoff delays advance this
    clock instead, so breaker recovery windows are reproducible and
    tests run at full speed.
    """

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff knobs (delays are virtual seconds).

    ``delay(attempt) = min(max_delay, base_delay * multiplier**attempt)``
    scaled down by up to ``jitter`` (seeded), the standard
    "decorrelated-ish" jitter that prevents retry synchronization.
    ``budget`` bounds *total* retries across all calls through one
    :class:`Retrier`; ``None`` means unbounded.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0 when set")


@dataclass
class RetryStats:
    """Accounting for one :class:`Retrier`."""

    calls: int = 0
    retries: int = 0
    failures: int = 0
    budget_denials: int = 0
    deadline_denials: int = 0
    virtual_sleep: float = 0.0

    def as_row(self) -> str:
        return (
            f"retry calls {self.calls} | retries {self.retries} | "
            f"failures {self.failures} | budget-denials {self.budget_denials} | "
            f"deadline-denials {self.deadline_denials} | "
            f"backoff {self.virtual_sleep:.2f}s"
        )


class Retrier:
    """Executes callables under a :class:`RetryPolicy`.

    Only exceptions listed in ``retryable`` are retried; anything else
    propagates immediately (a ``KeyError`` is a caller bug, not a flaky
    network).  The final failure raises :class:`RetryExhaustedError`
    chained to the last cause.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[StepClock] = None,
        retryable: Tuple[Type[BaseException], ...] = (RPCError,),
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else StepClock()
        self.retryable = retryable
        self.stats = RetryStats()
        self._rng = np.random.default_rng(self.policy.seed)
        self._budget_left = self.policy.budget

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter applied."""
        raw = min(
            self.policy.max_delay,
            self.policy.base_delay * self.policy.multiplier**attempt,
        )
        if self.policy.jitter:
            raw *= 1.0 - self.policy.jitter * float(self._rng.random())
        return raw

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` with retries; returns its value or raises."""
        return self.call_with_deadline(None, fn, *args, **kwargs)

    def call_with_deadline(self, deadline, fn: Callable, *args, **kwargs):
        """Run ``fn`` with retries under an optional deadline budget.

        ``deadline`` is a :class:`repro.reliability.admission.Deadline`
        (or anything with ``expired()`` / ``remaining()``).  An expired
        budget — on entry, or one the next backoff pause would blow —
        raises :class:`DeadlineExceededError` instead of burning more
        attempts: past the deadline the answer is useless, so retrying
        only adds load to an already-struggling backend.
        """
        self.stats.calls += 1
        last: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            if deadline is not None and deadline.expired():
                self.stats.deadline_denials += 1
                raise DeadlineExceededError(
                    "deadline expired before attempt "
                    f"{attempt + 1}/{self.policy.max_attempts}"
                ) from last
            try:
                return fn(*args, **kwargs)
            except self.retryable as exc:
                last = exc
                if attempt + 1 >= self.policy.max_attempts:
                    break
                if self._budget_left is not None:
                    if self._budget_left <= 0:
                        self.stats.budget_denials += 1
                        break
                    self._budget_left -= 1
                pause = self.delay(attempt)
                if deadline is not None and pause >= deadline.remaining():
                    self.stats.deadline_denials += 1
                    raise DeadlineExceededError(
                        f"backoff of {pause:.3f}s would overrun the "
                        f"remaining {deadline.remaining():.3f}s budget"
                    ) from last
                self.clock.advance(pause)
                self.stats.virtual_sleep += pause
                self.stats.retries += 1
        self.stats.failures += 1
        raise RetryExhaustedError(
            f"call failed after {self.stats.retries} retr"
            f"{'y' if self.stats.retries == 1 else 'ies'}: {last!r}"
        ) from last


class CircuitBreaker:
    """Closed → open → half-open failure isolation.

    *Closed*: calls pass through; ``failure_threshold`` consecutive
    failures trip the breaker.  *Open*: calls raise
    :class:`CircuitOpenError` without touching the backend until
    ``recovery_time`` virtual seconds elapse.  *Half-open*: up to
    ``half_open_probes`` trial calls are admitted; one success closes
    the breaker, one failure re-opens it.

    Only ``failure_types`` count as failures — domain errors (unknown
    id → ``KeyError``) pass through without moving the state machine.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_probes: int = 1,
        clock: Optional[StepClock] = None,
        failure_types: Tuple[Type[BaseException], ...] = (
            RPCError,
            RetryExhaustedError,
        ),
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.clock = clock if clock is not None else StepClock()
        self.failure_types = failure_types
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.times_opened = 0
        self.short_circuits = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    def _trip(self) -> None:
        self.state = self.OPEN
        self.times_opened += 1
        self._opened_at = self.clock.now()
        self._probes_in_flight = 0

    def allow(self) -> bool:
        """Whether a call would currently be admitted (no side effects
        beyond the open→half-open transition on timeout)."""
        if self.state == self.OPEN:
            if self.clock.now() - self._opened_at >= self.recovery_time:
                self.state = self.HALF_OPEN
                self._probes_in_flight = 0
            else:
                return False
        if self.state == self.HALF_OPEN:
            return self._probes_in_flight < self.half_open_probes
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._trip()
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker."""
        if not self.allow():
            self.short_circuits += 1
            raise CircuitOpenError(
                f"circuit open for another "
                f"{self.recovery_time - (self.clock.now() - self._opened_at):.2f}s"
            )
        if self.state == self.HALF_OPEN:
            self._probes_in_flight += 1
        try:
            # Domain errors (KeyError, ...) propagate without moving the
            # state machine — only failure_types indict the backend.
            result = fn(*args, **kwargs)
        except self.failure_types:
            self.record_failure()
            raise
        self.record_success()
        return result
