"""Deterministic, seeded fault injection for the PS pull/push channel.

The paper's deployment (50 parameter servers, 200 workers, billions of
service calls) lives with dropped RPCs, duplicated retries, stale
reads, and crashed shards as routine events.  This module injects
exactly those faults into the :class:`repro.distributed.ParameterServer`
channel — *deterministically*: a :class:`FaultPlan` is seeded, so the
same plan over the same workload produces the same fault sequence,
making chaos tests and ablation benches reproducible.

Fault classes modeled:

* **push drop** — the update RPC is lost; the server never applies it
  (silent, like a lost UDP datagram or a timed-out write after commit);
* **push duplicate** — an at-least-once channel redelivers the same
  gradient (the server applies it twice);
* **pull delay** — a read is served from a stale replica refreshed
  only every ``stale_refresh_every`` pushes (a staleness spike);
* **transient RPC error** — :class:`repro.reliability.retry.RPCError`
  surfaces to the caller, who is expected to retry;
* **shard crash** — a shard process dies and restarts empty-handed:
  its rows lose server-side Adam state and revert to their *initially
  registered* values (what a restart without a checkpoint recovers).
  Trainers repair the damage by restoring a checkpoint.

There is also :class:`FlakyServingBackend`, the serving-side analogue:
it wraps any ``PKGMServer``-surface object and raises seeded transient
``RPCError`` from ``serve``, to exercise breaker + stale-cache paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from .retry import RPCError


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled shard crash, pinned to an (epoch, batch) tick."""

    epoch: int
    batch: int
    shard: int

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.batch < 0 or self.shard < 0:
            raise ValueError("epoch, batch and shard must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of what goes wrong, and how often."""

    seed: int = 0
    push_drop_prob: float = 0.0
    push_duplicate_prob: float = 0.0
    pull_delay_prob: float = 0.0
    stale_refresh_every: int = 8
    rpc_error_prob: float = 0.0
    crashes: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "push_drop_prob",
            "push_duplicate_prob",
            "pull_delay_prob",
            "rpc_error_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.stale_refresh_every < 1:
            raise ValueError("stale_refresh_every must be >= 1")
        object.__setattr__(self, "crashes", tuple(self.crashes))

    def describe(self) -> str:
        """One-line human summary for logs and bench tables."""
        parts = [
            f"seed={self.seed}",
            f"drop={self.push_drop_prob:.0%}",
            f"dup={self.push_duplicate_prob:.0%}",
            f"delay={self.pull_delay_prob:.0%}",
            f"rpc-err={self.rpc_error_prob:.0%}",
            f"crashes={len(self.crashes)}",
        ]
        return " ".join(parts)


@dataclass
class FaultStats:
    """What the harness actually injected (for reports and asserts)."""

    pushes_dropped: int = 0
    pushes_duplicated: int = 0
    pulls_delayed: int = 0
    rpc_errors: int = 0
    shard_crashes: int = 0
    crash_log: List[Tuple[int, int]] = field(default_factory=list)

    def as_row(self) -> str:
        return (
            f"faults: dropped {self.pushes_dropped} | "
            f"duplicated {self.pushes_duplicated} | "
            f"delayed {self.pulls_delayed} | rpc-errors {self.rpc_errors} | "
            f"crashes {self.shard_crashes}"
        )


class FaultyParameterServer:
    """Wraps a ``ParameterServer`` with a seeded :class:`FaultPlan`.

    Exposes the full server surface (register/pull/push/snapshot/...)
    so :class:`repro.distributed.PKGMWorker` and the trainer use it
    unchanged.  All randomness flows through one ``default_rng(seed)``
    stream, so the injected fault sequence is a pure function of the
    plan and the call sequence.
    """

    def __init__(self, server, plan: FaultPlan) -> None:
        self.server = server
        self.plan = plan
        self.stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)
        # Stale replica tables for delayed pulls, refreshed lazily.
        self._stale: Dict[str, np.ndarray] = {}
        self._pushes_since_refresh = 0
        # Initial registered values: what a crashed shard restarts with.
        self._initial: Dict[str, np.ndarray] = {}

    # -- plumbing -------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.server.num_shards

    @property
    def pull_count(self) -> int:
        return self.server.pull_count

    @property
    def push_count(self) -> int:
        return self.server.push_count

    def register(self, name: str, table: np.ndarray) -> None:
        self.server.register(name, table)
        self._initial[name] = self.server.snapshot(name)
        self._stale[name] = self.server.snapshot(name)

    def shard_of(self, row: int) -> int:
        return self.server.shard_of(row)

    def shard_sizes(self, name: str):
        return self.server.shard_sizes(name)

    def snapshot(self, name: str) -> np.ndarray:
        return self.server.snapshot(name)

    def renormalize_rows(self, name: str, max_norm: float = 1.0) -> None:
        self.server.renormalize_rows(name, max_norm)

    def table_names(self):
        return self.server.table_names()

    def state(self, name: str):
        return self.server.state(name)

    def load_state(self, name: str, state) -> None:
        self.server.load_state(name, state)

    # -- faulted channel ------------------------------------------------
    def _maybe_rpc_error(self, op: str) -> None:
        if self.plan.rpc_error_prob and (
            float(self._rng.random()) < self.plan.rpc_error_prob
        ):
            self.stats.rpc_errors += 1
            raise RPCError(f"injected transient failure during {op}")

    def pull(self, name: str, rows: np.ndarray) -> np.ndarray:
        self._maybe_rpc_error(f"pull({name})")
        if self.plan.pull_delay_prob and (
            float(self._rng.random()) < self.plan.pull_delay_prob
        ):
            self.stats.pulls_delayed += 1
            rows = np.asarray(rows, dtype=np.int64)
            # Account the RPC on the real server, serve stale payload.
            self.server.pull_count += len(
                set(self.shard_of(int(r)) for r in np.unique(rows))
            )
            return self._stale[name][rows].copy()
        return self.server.pull(name, rows)

    def push(self, name: str, rows: np.ndarray, gradients: np.ndarray) -> None:
        self._maybe_rpc_error(f"push({name})")
        if self.plan.push_drop_prob and (
            float(self._rng.random()) < self.plan.push_drop_prob
        ):
            self.stats.pushes_dropped += 1
            return
        self.server.push(name, rows, gradients)
        if self.plan.push_duplicate_prob and (
            float(self._rng.random()) < self.plan.push_duplicate_prob
        ):
            self.stats.pushes_duplicated += 1
            self.server.push(name, rows, gradients)
        self._pushes_since_refresh += 1
        if self._pushes_since_refresh >= self.plan.stale_refresh_every:
            self._pushes_since_refresh = 0
            for table in self._stale:
                self._stale[table] = self.server.snapshot(table)

    # -- crash model ----------------------------------------------------
    def crash_shard(self, shard: int) -> None:
        """Kill and restart one shard without a checkpoint.

        The restarted process recovers only what registration gave it:
        parameter rows revert to their initial values and the Adam
        moments/step counters are zeroed.  Rows on other shards are
        untouched.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        self.stats.shard_crashes += 1
        for name in self.server.table_names():
            state = self.server.state(name)
            rows = np.arange(len(state["table"]))
            mask = rows % self.num_shards == shard
            state["table"][mask] = self._initial[name][mask]
            state["m"][mask] = 0.0
            state["v"][mask] = 0.0
            state["step"][mask] = 0
            self.server.load_state(name, state)


class FlakyServingBackend:
    """Serving-side chaos: a PKGM server whose calls fail transiently.

    Wraps any object with the ``PKGMServer`` surface; each ``serve`` /
    ``triple_service`` / ``relation_service`` call fails with
    probability ``error_prob`` (seeded).  Set ``fail_next`` to force a
    run of failures regardless of probability — tests use this to trip
    a breaker deterministically.
    """

    def __init__(self, server, error_prob: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= error_prob <= 1.0:
            raise ValueError("error_prob must be in [0, 1]")
        self.server = server
        self.error_prob = error_prob
        self.fail_next = 0
        self.calls = 0
        self.errors = 0
        self._rng = np.random.default_rng(seed)

    @property
    def k(self) -> int:
        return self.server.k

    @property
    def dim(self) -> int:
        return self.server.dim

    @property
    def num_entities(self) -> int:
        return self.server.num_entities

    @property
    def num_relations(self) -> int:
        return self.server.num_relations

    def _roll(self, op: str) -> None:
        self.calls += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            self.errors += 1
            raise RPCError(f"forced failure during {op}")
        if self.error_prob and float(self._rng.random()) < self.error_prob:
            self.errors += 1
            raise RPCError(f"injected transient failure during {op}")

    def serve(self, entity_id: int):
        self._roll(f"serve({entity_id})")
        return self.server.serve(entity_id)

    def serve_batch(self, entity_ids):
        return [self.serve(int(e)) for e in entity_ids]

    def triple_service(self, heads, relations):
        self._roll("triple_service")
        return self.server.triple_service(heads, relations)

    def relation_service(self, heads, relations):
        self._roll("relation_service")
        return self.server.relation_service(heads, relations)

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        self._roll("relation_existence_score")
        return self.server.relation_existence_score(entity_id, relation)

    def __getattr__(self, name: str):
        # Anything not faulted (selector access, save, ...) passes through.
        return getattr(self.server, name)


# ----------------------------------------------------------------------
# Storage faults: what disks and crashed writers do to store files
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StorageFaultPlan:
    """A seeded description of on-disk damage to inject into a store.

    Four physically motivated fault classes, applied to the shard files
    (and optionally the manifest) of a :class:`repro.store`
    directory:

    * **torn write** — a crash mid-write leaves a shard file truncated
      at some byte ``k``; every page at or past the tear reads short;
    * **bit flip** — media/bus corruption flips one bit at offset ``j``
      of a shard file; exactly one page fails its CRC;
    * **truncated manifest** — the crash hit the manifest itself; the
      store must refuse to open rather than trust half a description;
    * **lost fsync tail** — a write that was acknowledged but never
      durably flushed: the final ``tail_bytes`` of a shard file read as
      zeros after the "power loss".

    All target selection and offsets flow from one
    ``default_rng(seed)`` stream over the *sorted* file list, so the
    same plan over the same store damages the same bytes — the property
    the storage-chaos gate diffs across runs.
    """

    seed: int = 0
    torn_writes: int = 0
    bit_flips: int = 0
    truncate_manifest: bool = False
    lost_fsync_tails: int = 0
    tail_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("torn_writes", "bit_flips", "lost_fsync_tails"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.tail_bytes < 1:
            raise ValueError("tail_bytes must be >= 1")

    def describe(self) -> str:
        """One-line human summary for logs and chaos reports."""
        return (
            f"seed={self.seed} torn={self.torn_writes} "
            f"flips={self.bit_flips} "
            f"manifest={'torn' if self.truncate_manifest else 'ok'} "
            f"lost-tails={self.lost_fsync_tails}"
        )


@dataclass
class StorageFaultStats:
    """What was actually damaged: ``(kind, file, offset)`` events.

    ``events`` is ordered and offsets are exact, so two runs of the
    same plan can be compared record-for-record.
    """

    torn_writes: int = 0
    bit_flips: int = 0
    manifests_truncated: int = 0
    lost_fsync_tails: int = 0
    events: List[Tuple[str, str, int]] = field(default_factory=list)

    def as_row(self) -> str:
        return (
            f"storage-faults: torn {self.torn_writes} | "
            f"bit-flips {self.bit_flips} | "
            f"manifests {self.manifests_truncated} | "
            f"lost-tails {self.lost_fsync_tails}"
        )


def inject_storage_faults(
    directory: Union[str, Path], plan: StorageFaultPlan
) -> StorageFaultStats:
    """Damage the store under ``directory`` according to ``plan``.

    Shard files are discovered as ``*.bin`` under the directory, sorted
    by name; targets and offsets are drawn from ``default_rng(seed)``.
    Files are modified in place (this is the disk misbehaving, so no
    atomic-rename discipline here — that is the point).  Raises
    ``FileNotFoundError`` when the directory holds no shard files but
    shard damage was requested.
    """
    directory = Path(directory)
    stats = StorageFaultStats()
    rng = np.random.default_rng(plan.seed)
    shard_files = sorted(p for p in directory.glob("*.bin") if p.stat().st_size > 0)
    wants_shard_damage = (
        plan.torn_writes or plan.bit_flips or plan.lost_fsync_tails
    )
    if wants_shard_damage and not shard_files:
        raise FileNotFoundError(f"no non-empty shard files under {directory}")

    for _ in range(plan.torn_writes):
        target = shard_files[int(rng.integers(len(shard_files)))]
        size = target.stat().st_size
        tear_at = int(rng.integers(1, size)) if size > 1 else 0
        with open(target, "r+b") as handle:
            handle.truncate(tear_at)
        stats.torn_writes += 1
        stats.events.append(("torn-write", target.name, tear_at))

    for _ in range(plan.bit_flips):
        target = shard_files[int(rng.integers(len(shard_files)))]
        size = target.stat().st_size
        offset = int(rng.integers(size))
        bit = int(rng.integers(8))
        with open(target, "r+b") as handle:
            handle.seek(min(offset, max(0, size - 1)))
            byte = handle.read(1)
            if not byte:  # a prior tear shortened the file; flip byte 0
                handle.seek(0)
                byte = handle.read(1)
                offset = 0
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ (1 << bit)]))
        stats.bit_flips += 1
        stats.events.append(("bit-flip", target.name, offset * 8 + bit))

    for _ in range(plan.lost_fsync_tails):
        target = shard_files[int(rng.integers(len(shard_files)))]
        size = target.stat().st_size
        tail = min(plan.tail_bytes, size)
        with open(target, "r+b") as handle:
            handle.seek(size - tail)
            handle.write(b"\x00" * tail)
        stats.lost_fsync_tails += 1
        stats.events.append(("lost-fsync-tail", target.name, size - tail))

    if plan.truncate_manifest:
        manifest = directory / "manifest.json"
        if manifest.exists():
            size = manifest.stat().st_size
            with open(manifest, "r+b") as handle:
                handle.truncate(size // 2)
            stats.manifests_truncated += 1
            stats.events.append(("manifest-truncated", manifest.name, size // 2))

    return stats
