"""The overload-safe serving gateway: deadlines, hedging, drain/swap.

:class:`PKGMGateway` fronts any PKGM-serving backend (``PKGMServer``,
``CachedPKGMServer``, ``ResilientPKGMServer``) the way a production
edge fronts a model service:

* every arrival passes the :class:`~repro.reliability.admission.AdmissionController`
  — token-bucket rate limit, AIMD concurrency limit, bounded priority
  queue — and a shed request is *answered* with the existing flagged
  ``degraded=True`` fallback payload, never an exception;
* every admitted request carries a :class:`~repro.reliability.admission.Deadline`
  budget that is propagated into the backend call (and, when the
  backend supports it, into its retry loop), so work is cancelled once
  it can no longer meet its deadline;
* slow calls are **hedged**: after ``hedge_after`` virtual seconds the
  same request is duplicated to the next replica and the first answer
  wins, with cancellation accounting for the loser (the tail-latency
  technique from Dean & Barroso's "The Tail at Scale");
* a **graceful drain** lifecycle (``serving → draining → quiesced →
  serving`` after ``swap``) refreshes the model snapshot without
  dropping a single in-flight request.

Time is entirely virtual: the gateway is a deterministic discrete-event
simulation over the shared :class:`~repro.reliability.retry.StepClock`.
The load generator advances the clock between arrivals; the gateway
schedules starts and completions at exact virtual timestamps, so two
runs with the same seed produce byte-identical metrics.
"""

from __future__ import annotations

import heapq
import inspect
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import CachedPKGMServer
from ..core.service import ServiceVectors
from ..obs.metrics import MetricsRegistry, counter_view
from .admission import AdmissionConfig, AdmissionController, AdmissionAction, Deadline
from .retry import RPCError, StepClock
from .serving import fallback_payload

#: Gateway lifecycle states (the drain/refresh state machine).
SERVING, DRAINING, QUIESCED = "serving", "draining", "quiesced"


class LatencyModel:
    """Seeded virtual-latency distribution for one replica.

    ``base + uniform(0, jitter)`` for the body of the distribution,
    plus — with probability ``tail_prob`` — an exponential tail of mean
    ``tail_scale`` (the stragglers hedging exists to cut).  All draws
    come from one ``default_rng(seed)`` stream, so a replica's latency
    sequence is a pure function of its seed and call order.
    """

    def __init__(
        self,
        base: float = 0.004,
        jitter: float = 0.004,
        tail_prob: float = 0.03,
        tail_scale: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base < 0 or jitter < 0 or tail_scale < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= tail_prob <= 1.0:
            raise ValueError("tail_prob must be in [0, 1]")
        self.base = base
        self.jitter = jitter
        self.tail_prob = tail_prob
        self.tail_scale = tail_scale
        self._rng = np.random.default_rng(seed)

    def sample(self) -> float:
        """One virtual service latency draw."""
        latency = self.base + self.jitter * float(self._rng.random())
        if self.tail_prob and float(self._rng.random()) < self.tail_prob:
            latency += float(self._rng.exponential(self.tail_scale))
        return latency


@dataclass
class BackendOutcome:
    """What one (possibly hedged) backend call produced."""

    vectors: Optional[ServiceVectors]
    latency: float
    reason: Optional[str] = None  # None | "rpc-error" | "unknown-id" | "deadline"
    hedged: bool = False
    hedge_won: bool = False


class TimedBackend:
    """A serving replica: any server surface plus a virtual-latency model.

    ``serve_timed`` reports how long the call took in virtual seconds
    *instead of* advancing any clock — the gateway owns the timeline.
    A ``budget`` caps the call: a draw past the remaining budget is
    reported as cancelled at the budget (reason ``"deadline"``) without
    touching the server, and for backends whose ``serve`` accepts a
    ``deadline`` (e.g. :class:`ResilientPKGMServer`) the remaining
    budget is propagated as a :class:`Deadline` on the backend's own
    clock.
    """

    def __init__(self, server, latency: Optional[LatencyModel] = None, name: str = "") -> None:
        self.server = server
        self.latency = latency if latency is not None else LatencyModel()
        self.name = name
        self.calls = 0
        self.cancelled = 0
        self._accepts_deadline = (
            "deadline" in inspect.signature(server.serve).parameters
        )

    @property
    def k(self) -> int:
        return self.server.k

    @property
    def dim(self) -> int:
        return self.server.dim

    def serve_timed(
        self, entity_id: int, budget: Optional[float] = None
    ) -> Tuple[Optional[ServiceVectors], float, Optional[str]]:
        """``(vectors, virtual_latency, reason)`` for one call."""
        self.calls += 1
        latency = self.latency.sample()
        if budget is not None and latency >= budget:
            self.cancelled += 1
            return None, budget, "deadline"
        try:
            if self._accepts_deadline and budget is not None:
                clock = getattr(self.server, "clock", None)
                deadline = (
                    Deadline(clock, budget - latency) if clock is not None else None
                )
                vectors = self.server.serve(entity_id, deadline=deadline)
            else:
                vectors = self.server.serve(entity_id)
        except RPCError:
            return None, latency, "rpc-error"
        except (KeyError, IndexError):
            return None, latency, "unknown-id"
        return vectors, latency, None

    def retrieve_timed(
        self,
        entity_id: int,
        relation: int,
        k: int,
        budget: Optional[float] = None,
    ) -> Tuple[Optional["RetrievalPayload"], float, Optional[str]]:
        """``(payload, virtual_latency, reason)`` for one tail search.

        Same timing/cancellation envelope as :meth:`serve_timed`; the
        server must expose ``nearest_tails`` (``PKGMServer`` and the
        cached facade both do).
        """
        self.calls += 1
        latency = self.latency.sample()
        if budget is not None and latency >= budget:
            self.cancelled += 1
            return None, budget, "deadline"
        try:
            distances, neighbor_ids = self.server.nearest_tails(
                entity_id, relation, k
            )
        except RPCError:
            return None, latency, "rpc-error"
        except (KeyError, IndexError):
            return None, latency, "unknown-id"
        payload = RetrievalPayload(
            entity_id=entity_id,
            relation=relation,
            k=k,
            distances=distances,
            neighbor_ids=neighbor_ids,
        )
        return payload, latency, None

    def swap(self, server) -> None:
        """Install a refreshed snapshot on this replica.

        A :class:`CachedPKGMServer` (or anything exposing ``refresh``)
        is refreshed in place — dropping its now-stale LRU entries —
        otherwise the server object is replaced wholesale.
        """
        if hasattr(self.server, "refresh"):
            self.server.refresh(server)
        else:
            self.server = server
        self._accepts_deadline = (
            "deadline" in inspect.signature(self.server.serve).parameters
        )


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for one :class:`PKGMGateway`."""

    deadline_budget: float = 0.25
    hedge_after: Optional[float] = 0.05
    latency_target: float = 0.1
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self) -> None:
        if self.deadline_budget <= 0:
            raise ValueError("deadline_budget must be positive")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be positive (or None to disable)")
        if self.latency_target <= 0:
            raise ValueError("latency_target must be positive")


@dataclass(frozen=True)
class GatewayRequest:
    """One admitted request and its timing envelope.

    ``kind`` selects the backend call: ``"serve"`` (service vectors,
    the default) or ``"retrieve"`` (nearest-tail search, with
    ``relation``/``k`` as the query payload).
    """

    request_id: int
    entity_id: int
    priority: int
    arrival: float
    deadline_at: float
    kind: str = "serve"
    relation: int = -1
    k: int = 0


@dataclass(frozen=True)
class RetrievalPayload:
    """Answer body for one ``"retrieve"`` request.

    ``distances``/``neighbor_ids`` are the (k,) nearest-tail search
    results for ``S_T(entity_id, relation)``; a ``degraded`` payload
    (shed, deadline, backend error) carries ``(inf, -1)`` padding
    instead of real neighbors, mirroring ``ServiceVectors.degraded``.
    """

    entity_id: int
    relation: int
    k: int
    distances: np.ndarray
    neighbor_ids: np.ndarray
    degraded: bool = False


@dataclass(frozen=True)
class GatewayResponse:
    """The answer for one request — exactly one per submitted request.

    ``vectors`` is a :class:`ServiceVectors` for ``"serve"`` requests
    and a :class:`RetrievalPayload` for ``"retrieve"`` requests; both
    expose ``degraded``, which is all :attr:`ok` needs.
    """

    request_id: int
    entity_id: int
    vectors: "ServiceVectors | RetrievalPayload"
    reason: Optional[str]  # None (ok) or why the answer is degraded
    latency: float  # virtual queue wait + service time
    completed_at: float
    hedged: bool = False
    hedge_won: bool = False

    @property
    def ok(self) -> bool:
        """Whether this is a real (non-degraded) model answer."""
        return not self.vectors.degraded


class GatewayStats:
    """End-to-end accounting for one gateway.

    Counters are registry-backed (``gateway.*``) with the original
    attribute names kept as read/write views, so the gateway's
    increments and registry snapshots observe the same instruments.
    """

    arrived = counter_view("gateway.arrived", help="Requests submitted")
    completed_ok = counter_view("gateway.completed_ok", help="Real answers")
    completed_degraded = counter_view(
        "gateway.completed_degraded", help="Degraded answers"
    )
    shed_rate_limited = counter_view(
        "gateway.shed_rate_limited", help="Token-bucket sheds"
    )
    shed_queue_full = counter_view(
        "gateway.shed_queue_full", help="Queue-overflow sheds"
    )
    shed_evicted = counter_view("gateway.shed_evicted", help="Queue evictions")
    shed_draining = counter_view(
        "gateway.shed_draining", help="Sheds while draining"
    )
    deadline_queue_misses = counter_view(
        "gateway.deadline_queue_misses", help="Deadlines blown in queue"
    )
    deadline_rejected = counter_view(
        "gateway.deadline_rejected",
        help="Arrivals with an already-expired budget, refused pre-dispatch",
    )
    deadline_backend_misses = counter_view(
        "gateway.deadline_backend_misses", help="Deadlines blown in backend"
    )
    backend_errors = counter_view("gateway.backend_errors", help="Backend failures")
    hedges_sent = counter_view("gateway.hedges_sent", help="Hedge requests fired")
    hedge_wins = counter_view("gateway.hedge_wins", help="Hedges that won")
    hedge_cancelled = counter_view(
        "gateway.hedge_cancelled", help="Hedge losers cancelled"
    )
    drains = counter_view("gateway.drains", help="Drain cycles")
    swaps = counter_view("gateway.swaps", help="Snapshot swaps")
    retrievals = counter_view(
        "gateway.retrievals", help="Nearest-tail retrieval requests"
    )
    explanations = counter_view(
        "gateway.explanations", help="Explanation requests"
    )
    recommendations = counter_view(
        "gateway.recommendations", help="Recommendation requests"
    )

    def __init__(
        self,
        arrived: int = 0,
        completed_ok: int = 0,
        completed_degraded: int = 0,
        shed_rate_limited: int = 0,
        shed_queue_full: int = 0,
        shed_evicted: int = 0,
        shed_draining: int = 0,
        deadline_queue_misses: int = 0,
        deadline_rejected: int = 0,
        deadline_backend_misses: int = 0,
        backend_errors: int = 0,
        hedges_sent: int = 0,
        hedge_wins: int = 0,
        hedge_cancelled: int = 0,
        drains: int = 0,
        swaps: int = 0,
        retrievals: int = 0,
        explanations: int = 0,
        recommendations: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.arrived = arrived
        self.completed_ok = completed_ok
        self.completed_degraded = completed_degraded
        self.shed_rate_limited = shed_rate_limited
        self.shed_queue_full = shed_queue_full
        self.shed_evicted = shed_evicted
        self.shed_draining = shed_draining
        self.deadline_queue_misses = deadline_queue_misses
        self.deadline_rejected = deadline_rejected
        self.deadline_backend_misses = deadline_backend_misses
        self.backend_errors = backend_errors
        self.hedges_sent = hedges_sent
        self.hedge_wins = hedge_wins
        self.hedge_cancelled = hedge_cancelled
        self.drains = drains
        self.swaps = swaps
        self.retrievals = retrievals
        self.explanations = explanations
        self.recommendations = recommendations

    @property
    def shed(self) -> int:
        """Requests refused by admission or the drain lifecycle."""
        return (
            self.shed_rate_limited
            + self.shed_queue_full
            + self.shed_evicted
            + self.shed_draining
        )

    @property
    def goodput(self) -> float:
        """Fraction of arrivals answered with real model output."""
        return self.completed_ok / self.arrived if self.arrived else 0.0

    @property
    def hedge_win_rate(self) -> float:
        return self.hedge_wins / self.hedges_sent if self.hedges_sent else 0.0

    def as_row(self) -> str:
        return (
            f"gateway: arrived {self.arrived} | ok {self.completed_ok} | "
            f"degraded {self.completed_degraded} | shed {self.shed} | "
            f"deadline-misses "
            f"{self.deadline_queue_misses + self.deadline_backend_misses} | "
            f"hedges {self.hedges_sent} (wins {self.hedge_wins}) | "
            f"goodput {self.goodput:.2%}"
        )


@dataclass(order=True)
class _Completion:
    """A scheduled in-flight completion (ordered by virtual time)."""

    at: float
    seq: int
    response: GatewayResponse = field(compare=False)
    overloaded: bool = field(compare=False, default=False)


class PKGMGateway:
    """Overload-safe front door for a set of serving replicas.

    Usage is a three-call protocol driven by the load generator, which
    owns the clock::

        gateway.submit(entity_id, priority)   # at clock.now(); may shed
        gateway.step()                        # completions up to now
        gateway.drain(); gateway.swap(new)    # refresh lifecycle

    ``submit`` returns a degraded :class:`GatewayResponse` immediately
    when the request is shed, or ``None`` when it was started/queued —
    its response then appears in a later ``step()`` (or ``drain()``)
    batch.  Every submitted request is answered exactly once, and no
    path raises.
    """

    def __init__(
        self,
        replicas: Sequence,
        config: Optional[GatewayConfig] = None,
        clock: Optional[StepClock] = None,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        scenarios=None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        # Optional ScenarioService backend for the "explain"/"recommend"
        # request kinds; without it those submissions are a config error.
        self.scenarios = scenarios
        self.config = config if config is not None else GatewayConfig()
        self.clock = clock if clock is not None else StepClock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.replicas: List[TimedBackend] = [
            replica
            if isinstance(replica, TimedBackend)
            else TimedBackend(
                replica,
                latency=LatencyModel(seed=seed + index),
                name=f"replica-{index}",
            )
            for index, replica in enumerate(replicas)
        ]
        self.admission: AdmissionController[GatewayRequest] = AdmissionController(
            self.config.admission, clock=self.clock, registry=self.metrics
        )
        self.state = SERVING
        self.stats = GatewayStats(registry=self.metrics)
        self._latency_h = self.metrics.histogram(
            "gateway.latency",
            help="End-to-end virtual latency of completed requests",
        )
        self._inflight: List[_Completion] = []
        self._done: List[GatewayResponse] = []
        self._next_id = 0
        self._seq = 0
        self._rr = 0  # round-robin primary-replica cursor
        # Serializes the public surface so genuinely concurrent clients
        # (threads submitting while another drains) see a consistent
        # state machine: a submit observes either pre-drain SERVING or
        # post-drain QUIESCED, never a half-drained middle.  Reentrant
        # because drain/step call back into the shared internals.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Surface
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.replicas[0].k

    @property
    def dim(self) -> int:
        return self.replicas[0].dim

    def inflight_count(self) -> int:
        """Requests started but not yet completed (at the current time)."""
        with self._lock:
            return len(self._inflight)

    def queued_count(self) -> int:
        with self._lock:
            return len(self.admission.queue)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, entity_id: int, priority: int = 0
    ) -> Optional[GatewayResponse]:
        """Offer one request at the current virtual time.

        Returns the (degraded) response right away when the request is
        shed; otherwise ``None`` — the answer will be emitted by a
        later :meth:`step` / :meth:`drain`.
        """
        with self._lock:
            now = self.clock.now()
            self._advance(now)
            self.stats.arrived += 1
            request = GatewayRequest(
                request_id=self._next_id,
                entity_id=int(entity_id),
                priority=int(priority),
                arrival=now,
                deadline_at=now + self.config.deadline_budget,
            )
            self._next_id += 1
            return self._offer(request, now)

    def submit_retrieval(
        self,
        entity_id: int,
        relation: int,
        k: int = 10,
        priority: int = 0,
        budget: Optional[float] = None,
    ) -> Optional[GatewayResponse]:
        """Offer one nearest-tails query at the current virtual time.

        Identical admission, deadline, and drain treatment as
        :meth:`submit` — a shed or expired retrieval is answered with a
        degraded :class:`RetrievalPayload` (``(inf, -1)`` neighbors),
        never an exception.  Retrieval calls are not hedged: replicas
        lazily build their own tail index, so duplicating a cold query
        would double the most expensive call in the system.

        ``budget`` overrides the configured deadline budget for this
        request (a caller propagating an upstream deadline).  A budget
        that is already spent (``<= 0``) is rejected *here*, before
        admission and before any replica is touched — the degraded
        ``"deadline"`` answer is returned immediately and counted under
        ``deadline_rejected``.
        """
        with self._lock:
            now = self.clock.now()
            self._advance(now)
            self.stats.arrived += 1
            self.stats.retrievals += 1
            effective = (
                self.config.deadline_budget if budget is None else float(budget)
            )
            request = GatewayRequest(
                request_id=self._next_id,
                entity_id=int(entity_id),
                priority=int(priority),
                arrival=now,
                deadline_at=now + effective,
                kind="retrieve",
                relation=int(relation),
                k=int(k),
            )
            self._next_id += 1
            if effective <= 0:
                self.stats.deadline_rejected += 1
                return self._degraded_response(
                    request, "deadline", now, hedged=False, hedge_won=False
                )
            return self._offer(request, now)

    def submit_explanation(
        self,
        entity_id: int,
        relation: int,
        priority: int = 0,
        budget: Optional[float] = None,
    ) -> Optional[GatewayResponse]:
        """Offer one explanation query at the current virtual time.

        Same admission, deadline, and degraded-path treatment as
        :meth:`submit_retrieval`: shed or expired requests are answered
        with a degraded :class:`~repro.scenarios.ExplanationPayload`
        (empty predictions, ``degraded=True``), never an exception, and
        — the PR 3 invariant — degraded payloads are never cached by
        the scenario backend.  Requires a scenario backend; explanation
        calls are unhedged (the backend is one logical service).
        """
        with self._lock:
            self._require_scenarios()
            now = self.clock.now()
            self._advance(now)
            self.stats.arrived += 1
            self.stats.explanations += 1
            effective = (
                self.config.deadline_budget if budget is None else float(budget)
            )
            request = GatewayRequest(
                request_id=self._next_id,
                entity_id=int(entity_id),
                priority=int(priority),
                arrival=now,
                deadline_at=now + effective,
                kind="explain",
                relation=int(relation),
            )
            self._next_id += 1
            if effective <= 0:
                self.stats.deadline_rejected += 1
                return self._degraded_response(
                    request, "deadline", now, hedged=False, hedge_won=False
                )
            return self._offer(request, now)

    def submit_recommendation(
        self,
        entity_id: int,
        k: int = 10,
        priority: int = 0,
        budget: Optional[float] = None,
    ) -> Optional[GatewayResponse]:
        """Offer one zero-shot recommendation query.

        The scenario backend ranks items by condensed service-vector
        distance, so a cold-start item is as answerable as a warm one.
        Degraded answers carry the ``(inf, -1)`` padded
        :class:`~repro.scenarios.RecommendationPayload` and are never
        cached.  Requires a scenario backend; unhedged.
        """
        with self._lock:
            self._require_scenarios()
            now = self.clock.now()
            self._advance(now)
            self.stats.arrived += 1
            self.stats.recommendations += 1
            effective = (
                self.config.deadline_budget if budget is None else float(budget)
            )
            request = GatewayRequest(
                request_id=self._next_id,
                entity_id=int(entity_id),
                priority=int(priority),
                arrival=now,
                deadline_at=now + effective,
                kind="recommend",
                k=int(k),
            )
            self._next_id += 1
            if effective <= 0:
                self.stats.deadline_rejected += 1
                return self._degraded_response(
                    request, "deadline", now, hedged=False, hedge_won=False
                )
            return self._offer(request, now)

    def _require_scenarios(self) -> None:
        if self.scenarios is None:
            raise ValueError(
                "this gateway has no scenario backend; construct it with "
                "scenarios=ScenarioService(...)"
            )

    def _offer(
        self, request: GatewayRequest, now: float
    ) -> Optional[GatewayResponse]:
        """Shared admission flow for both request kinds."""
        if self.state != SERVING:
            self.stats.shed_draining += 1
            return self._shed_response(request, "draining", now)
        decision = self.admission.offer(request, priority=request.priority)
        if decision.action is AdmissionAction.SHED_RATE:
            self.stats.shed_rate_limited += 1
            return self._shed_response(request, "rate-limited", now)
        if decision.action is AdmissionAction.SHED_QUEUE_FULL:
            self.stats.shed_queue_full += 1
            return self._shed_response(request, "queue-full", now)
        if decision.evicted is not None:
            self.stats.shed_evicted += 1
            self._done.append(
                self._shed_response(decision.evicted, "evicted", now)
            )
        if decision.action is AdmissionAction.START:
            self._start(request, now)
        return None

    def step(self) -> List[GatewayResponse]:
        """Emit every response completed up to the current virtual time."""
        with self._lock:
            self._advance(self.clock.now())
            done, self._done = self._done, []
            return done

    # ------------------------------------------------------------------
    # Drain / swap lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> List[GatewayResponse]:
        """``serving → draining → quiesced``: answer all in-flight work.

        New submissions are shed (flagged ``"draining"``) while every
        started or queued request runs to completion; the clock is
        advanced to each scheduled completion, so nothing is dropped.
        Returns the responses emitted during the drain.
        """
        with self._lock:
            self.state = DRAINING
            self.stats.drains += 1
            while self._inflight or len(self.admission.queue):
                if not self._inflight:
                    self._fill_slots(self.clock.now())
                    continue
                next_at = self._inflight[0].at
                if next_at > self.clock.now():
                    self.clock.advance(next_at - self.clock.now())
                self._advance(self.clock.now())
            self.state = QUIESCED
            done, self._done = self._done, []
            return done

    def swap(self, server) -> None:
        """``quiesced → serving``: install a refreshed snapshot.

        Requires a completed :meth:`drain` first — swapping under live
        traffic would hand in-flight requests a changing model.
        """
        with self._lock:
            if self.state != QUIESCED:
                raise RuntimeError(
                    f"swap requires the quiesced state (currently {self.state!r}); "
                    "call drain() first"
                )
            for replica in self.replicas:
                replica.swap(server)
            self.stats.swaps += 1
            self.state = SERVING

    # ------------------------------------------------------------------
    # Internals: the discrete-event engine
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Retire completions up to ``now``; start queued work as slots free."""
        while self._inflight and self._inflight[0].at <= now:
            completion = heapq.heappop(self._inflight)
            self._done.append(completion.response)
            self._latency_h.observe(completion.response.latency)
            if completion.response.ok:
                self.stats.completed_ok += 1
            else:
                self.stats.completed_degraded += 1
            self.admission.release(overloaded=completion.overloaded)
            # The slot freed at completion.at: queued work starts then,
            # not at `now` — keeping the timeline causally consistent.
            self._fill_slots(completion.at)
        self._fill_slots(now)

    def _fill_slots(self, at: float) -> None:
        while True:
            request = self.admission.next_ready()
            if request is None:
                return
            self._start(request, at)

    def _start(self, request: GatewayRequest, at: float) -> None:
        """Run one admitted request's backend call, scheduling its
        completion on the virtual timeline."""
        if at >= request.deadline_at:
            # Expired while waiting in the queue: answer immediately
            # with the flagged fallback; the wasted wait is an overload
            # signal for the AIMD limiter.
            self.stats.deadline_queue_misses += 1
            response = self._degraded_response(
                request, "deadline", at, hedged=False, hedge_won=False
            )
            self._schedule(at, response, overloaded=True)
            return
        if request.kind == "retrieve":
            outcome = self._call_retrieval(
                request, budget=request.deadline_at - at
            )
        elif request.kind in ("explain", "recommend"):
            outcome = self._call_scenario(
                request, budget=request.deadline_at - at
            )
        else:
            outcome = self._call_backend(
                request, budget=request.deadline_at - at
            )
        completed_at = at + outcome.latency
        if outcome.reason == "deadline":
            self.stats.deadline_backend_misses += 1
            response = self._degraded_response(
                request,
                "deadline",
                request.deadline_at,
                hedged=outcome.hedged,
                hedge_won=outcome.hedge_won,
            )
            self._schedule(request.deadline_at, response, overloaded=True)
            return
        if outcome.reason is not None:
            self.stats.backend_errors += 1
            response = self._degraded_response(
                request,
                outcome.reason,
                completed_at,
                hedged=outcome.hedged,
                hedge_won=outcome.hedge_won,
            )
            self._schedule(completed_at, response, overloaded=False)
            return
        response = GatewayResponse(
            request_id=request.request_id,
            entity_id=request.entity_id,
            vectors=outcome.vectors,
            reason=None,
            latency=completed_at - request.arrival,
            completed_at=completed_at,
            hedged=outcome.hedged,
            hedge_won=outcome.hedge_won,
        )
        overloaded = outcome.latency > self.config.latency_target
        self._schedule(completed_at, response, overloaded=overloaded)

    def _schedule(
        self, at: float, response: GatewayResponse, overloaded: bool
    ) -> None:
        heapq.heappush(
            self._inflight,
            _Completion(at=at, seq=self._seq, response=response, overloaded=overloaded),
        )
        self._seq += 1

    def _call_retrieval(
        self, request: GatewayRequest, budget: float
    ) -> BackendOutcome:
        """One unhedged nearest-tails call on the round-robin primary."""
        if budget <= 0:
            # Defense in depth: submit_retrieval rejects spent budgets
            # before admission, so a non-positive budget here means a
            # scheduling bug — still never dispatch it.
            return BackendOutcome(None, 0.0, "deadline")
        primary = self.replicas[self._rr % len(self.replicas)]
        self._rr += 1
        payload, latency, reason = primary.retrieve_timed(
            request.entity_id, request.relation, request.k, budget=budget
        )
        return BackendOutcome(payload, latency, reason)

    def _call_scenario(
        self, request: GatewayRequest, budget: float
    ) -> BackendOutcome:
        """One unhedged scenario call through the shared backend.

        Timing comes from the round-robin replica's latency model (the
        scenario engines run beside the replicas and see the same
        tail); failures use the serve path's vocabulary — breaker-open
        surfaces as :class:`RPCError` → ``"rpc-error"``, unknown ids as
        ``"unknown-id"`` — so every degraded-path invariant downstream
        applies unchanged.
        """
        if budget <= 0:
            return BackendOutcome(None, 0.0, "deadline")
        primary = self.replicas[self._rr % len(self.replicas)]
        self._rr += 1
        primary.calls += 1
        latency = primary.latency.sample()
        if latency >= budget:
            primary.cancelled += 1
            return BackendOutcome(None, budget, "deadline")
        try:
            if request.kind == "explain":
                payload = self.scenarios.explain(
                    request.entity_id, request.relation
                )
            else:
                payload = self.scenarios.recommend(request.entity_id, k=request.k)
        except RPCError:
            return BackendOutcome(None, latency, "rpc-error")
        except (KeyError, IndexError):
            return BackendOutcome(None, latency, "unknown-id")
        return BackendOutcome(payload, latency, None)

    def _call_backend(self, request: GatewayRequest, budget: float) -> BackendOutcome:
        """One possibly-hedged call: first answer wins, loser is cancelled."""
        primary = self.replicas[self._rr % len(self.replicas)]
        self._rr += 1
        vectors, latency, reason = primary.serve_timed(
            request.entity_id, budget=budget
        )
        hedge_after = self.config.hedge_after
        if (
            hedge_after is None
            or len(self.replicas) < 2
            or reason == "unknown-id"  # a domain error: hedging cannot help
            or (reason is None and latency <= hedge_after)
        ):
            return BackendOutcome(vectors, latency, reason)
        # The primary is slow (or failed): fire the hedge at the moment
        # we would have noticed — hedge_after, or the failure time if
        # the error surfaced sooner.
        fire_at = min(hedge_after, latency)
        hedge_budget = budget - fire_at
        if hedge_budget <= 0:
            return BackendOutcome(vectors, latency, reason)
        secondary = self.replicas[self._rr % len(self.replicas)]
        self.stats.hedges_sent += 1
        h_vectors, h_latency, h_reason = secondary.serve_timed(
            request.entity_id, budget=hedge_budget
        )
        hedge_total = fire_at + h_latency
        primary_usable = reason is None
        hedge_usable = h_reason is None
        hedge_wins = (hedge_usable and not primary_usable) or (
            hedge_usable and primary_usable and hedge_total < latency
        )
        self.stats.hedge_cancelled += 1  # exactly one loser per hedge pair
        if hedge_wins:
            self.stats.hedge_wins += 1
            return BackendOutcome(
                h_vectors, hedge_total, None, hedged=True, hedge_won=True
            )
        if primary_usable:
            return BackendOutcome(vectors, latency, None, hedged=True)
        # Both failed: report whichever concluded first, preferring a
        # definitive backend error over a deadline cancellation.
        if reason == "deadline" and h_reason == "deadline":
            return BackendOutcome(None, budget, "deadline", hedged=True)
        first_reason = reason if reason != "deadline" else h_reason
        return BackendOutcome(
            None, min(latency, hedge_total), first_reason, hedged=True
        )

    # ------------------------------------------------------------------
    # Degraded answers
    # ------------------------------------------------------------------
    def _fallback(self, request: GatewayRequest):
        if request.kind == "retrieve":
            return RetrievalPayload(
                entity_id=request.entity_id,
                relation=request.relation,
                k=request.k,
                distances=np.full(request.k, np.inf),
                neighbor_ids=np.full(request.k, -1, dtype=np.int64),
                degraded=True,
            )
        if request.kind in ("explain", "recommend"):
            # Imported lazily: repro.scenarios imports this package at
            # module level, so the reverse edge must stay call-time.
            from ..scenarios.service import (
                degraded_explanation,
                degraded_recommendation,
            )

            if request.kind == "explain":
                return degraded_explanation(request.entity_id, request.relation)
            return degraded_recommendation(request.entity_id, request.k)
        return fallback_payload(request.entity_id, self.k, self.dim)

    def _shed_response(
        self, request: GatewayRequest, reason: str, now: float
    ) -> GatewayResponse:
        return GatewayResponse(
            request_id=request.request_id,
            entity_id=request.entity_id,
            vectors=self._fallback(request),
            reason=reason,
            latency=max(0.0, now - request.arrival),
            completed_at=now,
        )

    def _degraded_response(
        self,
        request: GatewayRequest,
        reason: str,
        completed_at: float,
        hedged: bool,
        hedge_won: bool,
    ) -> GatewayResponse:
        return GatewayResponse(
            request_id=request.request_id,
            entity_id=request.entity_id,
            vectors=self._fallback(request),
            reason=reason,
            latency=completed_at - request.arrival,
            completed_at=completed_at,
            hedged=hedged,
            hedge_won=hedge_won,
        )


def build_replicas(
    server,
    count: int,
    cache_capacity: int = 512,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> List[TimedBackend]:
    """``count`` timed replicas over one snapshot, each with its own LRU.

    Every replica gets an independent :class:`CachedPKGMServer` (so a
    swap refreshes per-replica caches) and an independently seeded
    latency model — replicas straggle at different times, which is what
    makes hedging win.  With a shared ``registry``, each replica's
    cache counters land under a ``replica_<i>.cache.*`` prefix so one
    snapshot shows per-replica hit rates.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        TimedBackend(
            CachedPKGMServer(
                server,
                capacity=cache_capacity,
                registry=(
                    registry.child(f"replica_{index}")
                    if registry is not None
                    else None
                ),
            ),
            latency=LatencyModel(seed=seed + index),
            name=f"replica-{index}",
        )
        for index in range(count)
    ]
