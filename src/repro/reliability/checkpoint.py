"""Crash-consistent checkpointing.

The paper's pre-training run holds 88 GB of parameters for 15 hours —
any real deployment checkpoints it.  This module provides the three
layers a crash-safe checkpoint needs:

* **atomic writes** — payloads land via tmp-file → flush → fsync →
  ``os.replace``; a crash mid-write leaves the previous file intact,
  never a torn one;
* **checksummed manifests** — every payload gets a sibling JSON
  manifest carrying its SHA-256 and array schema, written *after* the
  payload.  A checkpoint without a matching manifest (crash between
  the two writes) or with a checksum mismatch (disk corruption) is
  invisible to :meth:`CheckpointManager.latest`;
* **retention** — old snapshots are pruned, newest ``keep`` survive.

Metadata (epoch counters, RNG bit-generator state, loss history) rides
in the manifest so trainers can resume *bit-exactly*.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or fails its checksum."""


# ----------------------------------------------------------------------
# Atomic write primitives
# ----------------------------------------------------------------------
#: Process-wide monotonic sequence for temp-file names.  ``count()`` is
#: atomic under the GIL (a single ``__next__``), so two threads writing
#: the same destination get distinct temp files without locks — and
#: without RNG, which determinism rules reserve for seeded streams.
_TMP_SEQUENCE = itertools.count()


def atomic_tmp_path(path: Union[str, Path]) -> Path:
    """A unique same-directory temp name for an atomic write to ``path``.

    Carries the pid *and* the process-wide sequence number so
    concurrent writers (threads or a streaming builder holding many
    open shards) never collide; callers must finish with
    ``os.replace(tmp, path)`` after flushing and fsyncing.
    """
    path = Path(path)
    return path.with_name(
        f".{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQUENCE)}"
    )


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory entry so a completed rename survives power loss."""
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> str:
    """Write ``payload`` to ``path`` atomically; returns its SHA-256.

    The bytes go to a same-directory temp file which is flushed, fsynced
    and then renamed over the destination (``os.replace`` is atomic on
    POSIX and Windows).  The directory entry is fsynced too, so the
    rename itself survives power loss.

    The temp name carries the pid *and* a process-wide sequence number:
    pid alone collides when two threads checkpoint the same destination
    concurrently (one thread's rename can then promote the other's
    half-written bytes).
    """
    path = Path(path)
    tmp = path.with_name(
        f".{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQUENCE)}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        dir_fd = -1
    if dir_fd >= 0:
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return hashlib.sha256(payload).hexdigest()


def atomic_save_npz(path: Union[str, Path], arrays: Mapping[str, np.ndarray]) -> str:
    """Atomically write a compressed npz; returns the payload SHA-256."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **dict(arrays))
    return atomic_write_bytes(path, buffer.getvalue())


def atomic_write_json(path: Union[str, Path], document: Mapping) -> str:
    """Atomically write a JSON document; returns the payload SHA-256."""
    payload = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    return atomic_write_bytes(path, payload)


def sha256_of_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of a file on disk."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# RNG state (de)hydration for bit-exact resume
# ----------------------------------------------------------------------
def rng_state(rng: np.random.Generator) -> Dict:
    """JSON-safe snapshot of a Generator's bit-generator state."""
    return json.loads(json.dumps(rng.bit_generator.state))


def restore_rng(rng: np.random.Generator, state: Mapping) -> None:
    """Restore a Generator to a state captured by :func:`rng_state`."""
    rng.bit_generator.state = dict(state)


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """Numbered, checksummed, pruned snapshots in one directory.

    Layout per step ``s``::

        <dir>/<prefix>-<s:08d>.npz    payload (atomic)
        <dir>/<prefix>-<s:08d>.json   manifest: sha256 + schema + metadata

    The manifest is written strictly after the payload; a crash between
    the two leaves an orphan payload that :meth:`steps` ignores, which
    is what makes save itself crash-consistent.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        prefix: str = "ckpt",
        keep: int = 3,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if not re.fullmatch(r"[A-Za-z0-9_-]+", prefix):
            raise ValueError("prefix must be alphanumeric/dash/underscore")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.keep = keep

    # -- paths ----------------------------------------------------------
    def payload_path(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def manifest_path(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}.json"

    # -- write ----------------------------------------------------------
    def save(
        self,
        step: int,
        arrays: Mapping[str, np.ndarray],
        metadata: Optional[Mapping] = None,
    ) -> Path:
        """Persist one snapshot; returns the payload path."""
        if step < 0:
            raise ValueError("step must be >= 0")
        payload = self.payload_path(step)
        checksum = atomic_save_npz(payload, arrays)
        manifest = {
            "step": step,
            "sha256": checksum,
            "arrays": {
                name: {"shape": list(np.shape(a)), "dtype": str(np.asarray(a).dtype)}
                for name, a in arrays.items()
            },
            "metadata": dict(metadata) if metadata is not None else {},
        }
        atomic_write_json(self.manifest_path(step), manifest)
        self._prune()
        return payload

    def clear(self) -> None:
        """Delete every checkpoint (payloads, manifests, stray temps)."""
        for path in self.directory.glob(f"{self.prefix}-*"):
            path.unlink()
        for path in self.directory.glob(f".{self.prefix}-*.tmp.*"):
            path.unlink()

    def _prune(self) -> None:
        steps = self.steps()
        for stale in steps[: -self.keep]:
            for path in (self.payload_path(stale), self.manifest_path(stale)):
                if path.exists():
                    path.unlink()

    # -- read -----------------------------------------------------------
    def steps(self) -> List[int]:
        """Steps that have both payload and manifest, ascending."""
        pattern = re.compile(rf"{re.escape(self.prefix)}-(\d{{8}})\.json$")
        found = []
        for manifest in self.directory.glob(f"{self.prefix}-*.json"):
            match = pattern.fullmatch(manifest.name)
            if match is None:
                continue
            step = int(match.group(1))
            if self.payload_path(step).exists():
                found.append(step)
        return sorted(found)

    def latest(self) -> Optional[int]:
        steps = self.steps()
        return steps[-1] if steps else None

    def load(self, step: Optional[int] = None) -> Tuple[Dict[str, np.ndarray], Dict]:
        """Load (arrays, metadata) for ``step`` (default: latest).

        Verifies the payload checksum against the manifest; raises
        :class:`CheckpointError` on any mismatch or absence.
        """
        if step is None:
            step = self.latest()
            if step is None:
                raise CheckpointError(
                    f"no complete checkpoint under {self.directory}"
                )
        manifest_path = self.manifest_path(step)
        payload_path = self.payload_path(step)
        if not manifest_path.exists() or not payload_path.exists():
            raise CheckpointError(f"checkpoint step {step} is incomplete")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        actual = sha256_of_file(payload_path)
        if actual != manifest.get("sha256"):
            raise CheckpointError(
                f"checksum mismatch for {payload_path.name}: "
                f"manifest {manifest.get('sha256')!r} != payload {actual!r}"
            )
        with np.load(payload_path) as data:
            arrays = {name: data[name].copy() for name in data.files}
        return arrays, manifest.get("metadata", {})
