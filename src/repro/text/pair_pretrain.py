"""Self-supervised title-pair pre-training (the NSP substitute).

BERT's usefulness on sentence-pair tasks comes not only from masked LM
but from pair-level pre-training (NSP) at massive scale.  Our
from-scratch mini encoder has no such prior, and learning cross-segment
lexical matching from a few hundred labelled alignment pairs alone does
not generalize.

This module adds the missing prior with a *pretext* task that needs no
human labels: sample an item, generate two independent seller titles
for it (the title generator is stochastic) — that pair is a positive;
titles of two different items form a negative.  The encoder learns
"these two keyword bags describe the same thing", exactly the
capability product alignment fine-tuning then specializes from
same-item to same-product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam
from ..nn import functional as F
from .bert import MiniBert
from .heads import PairClassifier
from .tokenizer import WordTokenizer


@dataclass(frozen=True)
class PairPretrainConfig:
    """Pretext-task knobs."""

    num_pairs: int = 2000
    epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 2e-3
    max_length: int = 32
    same_category_negatives: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_pairs < 2:
            raise ValueError("num_pairs must be >= 2")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class PairPretrainer:
    """Pre-trains a :class:`MiniBert` on the same-item title pretext task.

    ``title_fn(item_index) -> List[str]`` must return a *fresh* stochastic
    title each call; ``categories[item_index]`` supplies category ids for
    hard (same-category) negatives.
    """

    def __init__(
        self,
        model: MiniBert,
        tokenizer: WordTokenizer,
        config: Optional[PairPretrainConfig] = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config if config is not None else PairPretrainConfig()
        self.head = PairClassifier(
            model, rng=np.random.default_rng(self.config.seed)
        )
        self.optimizer = Adam(self.head.parameters(), lr=self.config.learning_rate)

    def build_pairs(
        self,
        title_fn,
        num_items: int,
        categories: Optional[Sequence[int]] = None,
    ) -> Tuple[List[Tuple[List[str], List[str]]], np.ndarray]:
        """Sample ``num_pairs`` pretext pairs (balanced labels)."""
        if num_items < 2:
            raise ValueError("need at least two items")
        rng = np.random.default_rng(self.config.seed + 1)
        by_category = None
        if categories is not None and self.config.same_category_negatives:
            by_category = {}
            for index, category in enumerate(categories):
                by_category.setdefault(category, []).append(index)

        pairs: List[Tuple[List[str], List[str]]] = []
        labels = np.zeros(self.config.num_pairs)
        for i in range(self.config.num_pairs):
            anchor = int(rng.integers(num_items))
            if i % 2 == 0:
                partner = anchor
                labels[i] = 1.0
            else:
                partner = self._negative_partner(anchor, num_items, by_category, categories, rng)
            pairs.append((title_fn(anchor), title_fn(partner)))
        return pairs, labels

    @staticmethod
    def _negative_partner(anchor, num_items, by_category, categories, rng) -> int:
        if by_category is not None:
            pool = by_category.get(categories[anchor], [])
            candidates = [i for i in pool if i != anchor]
            if candidates:
                return candidates[int(rng.integers(len(candidates)))]
        partner = int(rng.integers(num_items - 1))
        return partner + (partner >= anchor)

    def train(
        self,
        title_fn,
        num_items: int,
        categories: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """Run the pretext training; returns per-epoch mean losses."""
        pairs, labels = self.build_pairs(title_fn, num_items, categories)
        ids, mask, seg = self.tokenizer.encode_pair_batch(
            pairs, self.config.max_length
        )
        rng = np.random.default_rng(self.config.seed + 2)
        losses: List[float] = []
        n = len(labels)
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            total, count = 0.0, 0
            for start in range(0, n, self.config.batch_size):
                index = order[start : start + self.config.batch_size]
                self.optimizer.zero_grad()
                logits = self.head(
                    ids[index], attention_mask=mask[index], segment_ids=seg[index]
                )
                loss = F.binary_cross_entropy_with_logits(logits, labels[index])
                loss.backward()
                self.optimizer.step()
                total += loss.item()
                count += 1
            losses.append(total / max(count, 1))
        return losses

    def pretext_accuracy(
        self,
        title_fn,
        num_items: int,
        categories: Optional[Sequence[int]] = None,
        num_pairs: int = 300,
    ) -> float:
        """Held-out accuracy on freshly sampled pretext pairs."""
        probe = PairPretrainConfig(
            num_pairs=num_pairs,
            epochs=1,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            max_length=self.config.max_length,
            same_category_negatives=self.config.same_category_negatives,
            seed=self.config.seed + 99,
        )
        prober = PairPretrainer.__new__(PairPretrainer)
        prober.config = probe
        pairs, labels = PairPretrainer.build_pairs(
            prober, title_fn, num_items, categories
        )
        ids, mask, seg = self.tokenizer.encode_pair_batch(pairs, probe.max_length)
        probabilities = self.head.predict_proba(
            ids, attention_mask=mask, segment_ids=seg
        )
        return float(((probabilities >= 0.5) == labels).mean())
