"""PKGM ↔ text-model integration variants (paper §III-B2 / §III-C2).

The paper evaluates four model variants on each text task:

* ``base``      — plain BERT, no knowledge;
* ``pkgm-t``    — + k triple-query service vectors per item;
* ``pkgm-r``    — + k relation-query service vectors per item;
* ``pkgm-all``  — + all 2k service vectors per item.

For the alignment task each *pair* contributes service vectors for both
items (4k total under ``pkgm-all``).  These helpers build the payload
arrays the :class:`repro.text.bert.MiniBert` injection path consumes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core import PKGMServer

VARIANTS = ("base", "pkgm-t", "pkgm-r", "pkgm-all")


def validate_variant(variant: str) -> str:
    """Normalize a variant name; raise ValueError if unknown."""
    key = variant.lower()
    if key not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
    return key


def vectors_per_item(variant: str, k: int) -> int:
    """How many service vectors one item contributes under ``variant``."""
    variant = validate_variant(variant)
    if variant == "base":
        return 0
    if variant == "pkgm-all":
        return 2 * k
    return k


def service_payload(
    server: PKGMServer,
    entity_ids: Sequence[int],
    variant: str,
) -> Optional[np.ndarray]:
    """Single-item payload: (batch, m, dim) or None for ``base``.

    Ordering follows the paper: triple-query vectors first, then
    relation-query vectors.
    """
    variant = validate_variant(variant)
    if variant == "base":
        return None
    batches = server.serve_batch(entity_ids)
    if variant == "pkgm-t":
        return np.stack([b.triple_vectors for b in batches])
    if variant == "pkgm-r":
        return np.stack([b.relation_vectors for b in batches])
    return np.stack([b.sequence() for b in batches])


def pair_service_payload(
    server: PKGMServer,
    entities_a: Sequence[int],
    entities_b: Sequence[int],
    variant: str,
) -> Optional[np.ndarray]:
    """Pair payload: item A's vectors then item B's (Fig. 5 ordering)."""
    variant = validate_variant(variant)
    if variant == "base":
        return None
    if len(entities_a) != len(entities_b):
        raise ValueError("pair payload requires equal-length entity lists")
    payload_a = service_payload(server, entities_a, variant)
    payload_b = service_payload(server, entities_b, variant)
    return np.concatenate([payload_a, payload_b], axis=1)


def pair_service_segment_ids(
    num_pairs: int, variant: str, k: int
) -> Optional[np.ndarray]:
    """Segment ids for a pair payload: item A's block 0, item B's block 1.

    Matches :func:`pair_service_payload` ordering, letting the encoder
    attribute each service block to its sentence (Fig. 5's per-sentence
    placement, realized through segment embeddings).
    """
    per_item = vectors_per_item(variant, k)
    if per_item == 0:
        return None
    row = np.concatenate(
        [np.zeros(per_item, dtype=np.int64), np.ones(per_item, dtype=np.int64)]
    )
    return np.tile(row, (num_pairs, 1))
