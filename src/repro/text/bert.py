"""Mini-BERT encoder: the pre-trained language model substitute.

The paper fine-tunes Google's Chinese BERT-base; no checkpoint can be
downloaded here, so we build the same architecture (token + position +
segment embeddings, transformer encoder, [CLS] pooling) at laptop
scale, pre-train it with masked LM (:mod:`repro.text.mlm`), then
fine-tune per task.

PKGM integration follows §II-E / Fig. 2 exactly: the ``2k`` service
vectors are placed *after* the token embeddings as extra sequence
positions (the paper appends them after a [SEP]); a trainable linear
projection adapts the service dimension to the model width while the
service vectors themselves stay fixed during fine-tuning, as in the
paper ("all parameters in BERT are unfix and representations from PKGM
fixed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerConfig,
    TransformerEncoder,
    concat,
)
from ..nn import init


@dataclass(frozen=True)
class MiniBertConfig:
    """Mini-BERT hyperparameters.

    BERT-base corresponds to ``dim=768, num_layers=12, num_heads=12,
    ffn_dim=3072, max_length=512``; defaults are scaled for synthetic
    data.
    """

    vocab_size: int = 1000
    max_length: int = 48
    dim: int = 48
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 96
    dropout: float = 0.1
    num_segments: int = 2
    service_dim: Optional[int] = None
    max_service_vectors: int = 40
    tie_qk_init: bool = False

    def __post_init__(self) -> None:
        if self.vocab_size < 6:
            raise ValueError("vocab_size must cover the special tokens")
        if self.max_length < 3:
            raise ValueError("max_length must be >= 3")
        if self.num_segments < 1:
            raise ValueError("num_segments must be >= 1")

    def transformer(self) -> TransformerConfig:
        return TransformerConfig(
            dim=self.dim,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            ffn_dim=self.ffn_dim,
            dropout=self.dropout,
            tie_qk_init=self.tie_qk_init,
        )


class MiniBert(Module):
    """BERT-style bidirectional encoder with optional PKGM injection."""

    def __init__(
        self,
        config: MiniBertConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config
        self.token_embeddings = Embedding(
            config.vocab_size, config.dim, rng=rng, init_fn=init.normal
        )
        total_positions = config.max_length + config.max_service_vectors
        self.position_embeddings = Embedding(
            total_positions, config.dim, rng=rng, init_fn=init.normal
        )
        self.segment_embeddings = Embedding(
            config.num_segments, config.dim, rng=rng, init_fn=init.normal
        )
        self.embedding_norm = LayerNorm(config.dim)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)
        self.encoder = TransformerEncoder(config.transformer(), rng=rng)
        if config.service_dim is not None:
            self.service_projection = Linear(config.service_dim, config.dim, rng=rng)
        else:
            self.service_projection = None

    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        segment_ids: Optional[np.ndarray] = None,
        service_vectors: Optional[np.ndarray] = None,
        service_segment_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Encode a batch.

        Parameters
        ----------
        token_ids:
            (batch, seq) int ids.
        attention_mask:
            (batch, seq), 1 = real token.  Defaults to all-ones.
        segment_ids:
            (batch, seq) segment ids for sentence pairs.
        service_vectors:
            Optional (batch, m, service_dim) PKGM payload appended after
            the tokens (requires ``config.service_dim``).  Appended
            positions always attend/are attended (mask 1).
        service_segment_ids:
            Optional (batch, m) segment ids for the appended service
            vectors.  For pair tasks this tags each item's service block
            with its sentence's segment, so the model can attribute the
            vectors (defaults to segment 0).

        Returns
        -------
        Tensor of shape (batch, seq [+ m], dim) — final hidden states.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) token ids, got {token_ids.shape}")
        batch, seq = token_ids.shape
        if seq > self.config.max_length:
            raise ValueError(
                f"sequence length {seq} exceeds max_length {self.config.max_length}"
            )
        if attention_mask is None:
            attention_mask = np.ones((batch, seq), dtype=np.int64)
        if segment_ids is None:
            segment_ids = np.zeros((batch, seq), dtype=np.int64)

        embeddings = self.token_embeddings(token_ids)
        embeddings = embeddings + self.segment_embeddings(segment_ids)

        if service_vectors is not None:
            if self.service_projection is None:
                raise ValueError(
                    "model built without service_dim cannot take service_vectors"
                )
            service_vectors = np.asarray(service_vectors, dtype=np.float64)
            if service_vectors.ndim != 3 or service_vectors.shape[0] != batch:
                raise ValueError(
                    f"expected (batch, m, service_dim) service vectors, "
                    f"got {service_vectors.shape}"
                )
            m = service_vectors.shape[1]
            if m > self.config.max_service_vectors:
                raise ValueError(
                    f"{m} service vectors exceed max_service_vectors "
                    f"{self.config.max_service_vectors}"
                )
            projected = self.service_projection(Tensor(service_vectors))
            if service_segment_ids is not None:
                service_segment_ids = np.asarray(service_segment_ids, dtype=np.int64)
                if service_segment_ids.shape != (batch, m):
                    raise ValueError(
                        f"service_segment_ids shape {service_segment_ids.shape} "
                        f"!= ({batch}, {m})"
                    )
                projected = projected + self.segment_embeddings(service_segment_ids)
            embeddings = concat([embeddings, projected], axis=1)
            attention_mask = np.concatenate(
                [attention_mask, np.ones((batch, m), dtype=np.int64)], axis=1
            )
            seq = seq + m

        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        embeddings = embeddings + self.position_embeddings(positions)
        embeddings = self.embedding_dropout(self.embedding_norm(embeddings))
        return self.encoder(embeddings, attention_mask=attention_mask)

    def pooled(self, hidden: Tensor) -> Tensor:
        """The [CLS] representation (first position), shape (batch, dim)."""
        return hidden[:, 0, :]
