"""Task heads over the mini-BERT encoder.

* :class:`TextClassifier` — Eq. 10: ``p = σ(W C + b)`` over the [CLS]
  representation, used for item classification (Fig. 4).
* :class:`PairClassifier` — the same head with a single logit over a
  sentence-pair encoding, used for product alignment (Fig. 5).

Both accept optional PKGM service vectors, which flow through
:class:`repro.text.bert.MiniBert`'s injection path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, Module, Tensor
from .bert import MiniBert


class TextClassifier(Module):
    """[CLS] -> fully connected layer -> class logits (Eq. 10)."""

    def __init__(
        self,
        encoder: MiniBert,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.encoder = encoder
        self.num_classes = num_classes
        self.classifier = Linear(encoder.config.dim, num_classes, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        segment_ids: Optional[np.ndarray] = None,
        service_vectors: Optional[np.ndarray] = None,
        service_segment_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        hidden = self.encoder(
            token_ids,
            attention_mask=attention_mask,
            segment_ids=segment_ids,
            service_vectors=service_vectors,
            service_segment_ids=service_segment_ids,
        )
        return self.classifier(self.encoder.pooled(hidden))

    def predict(self, *args, **kwargs) -> np.ndarray:
        """Argmax class per example (eval mode)."""
        self.eval()
        logits = self.forward(*args, **kwargs)
        self.train()
        return logits.data.argmax(axis=-1)


class PairClassifier(Module):
    """[CLS] of a sentence pair -> single logit (paraphrase style)."""

    def __init__(
        self,
        encoder: MiniBert,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.encoder = encoder
        self.classifier = Linear(encoder.config.dim, 1, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        segment_ids: Optional[np.ndarray] = None,
        service_vectors: Optional[np.ndarray] = None,
        service_segment_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        hidden = self.encoder(
            token_ids,
            attention_mask=attention_mask,
            segment_ids=segment_ids,
            service_vectors=service_vectors,
            service_segment_ids=service_segment_ids,
        )
        return self.classifier(self.encoder.pooled(hidden)).reshape(
            token_ids.shape[0]
        )

    def predict_proba(self, *args, **kwargs) -> np.ndarray:
        """Alignment probability per pair (eval mode)."""
        return 1.0 / (1.0 + np.exp(-np.clip(self.predict_logits(*args, **kwargs), -60, 60)))

    def predict_logits(self, *args, **kwargs) -> np.ndarray:
        """Raw pair logits (eval mode).

        Ranking should use logits rather than probabilities: the sigmoid
        saturates to exactly 1.0 in float arithmetic, which manufactures
        ties among confident candidates and corrupts Hit@k.
        """
        self.eval()
        logits = self.forward(*args, **kwargs)
        self.train()
        return logits.data
