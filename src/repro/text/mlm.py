"""Masked-language-model pre-training for the mini-BERT.

Reproduces the "pre-trained language model" half of the paper's setup:
BERT's 80/10/10 masking recipe over the synthetic title corpus, a tied
output head, and a small Adam loop.  Downstream task models start from
these weights, exactly as the paper fine-tunes Google's checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam, Linear, Module, Parameter, Tensor
from ..nn import functional as F
from ..nn import init
from .bert import MiniBert
from .tokenizer import WordTokenizer


@dataclass(frozen=True)
class MLMConfig:
    """Masking and optimization knobs."""

    mask_probability: float = 0.15
    replace_with_mask: float = 0.8
    replace_with_random: float = 0.1
    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.mask_probability < 1.0:
            raise ValueError("mask_probability must be in (0, 1)")
        if self.replace_with_mask + self.replace_with_random > 1.0:
            raise ValueError("replace probabilities exceed 1")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")


class MLMHead(Module):
    """Vocabulary prediction head over hidden states."""

    def __init__(self, dim: int, vocab_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.transform = Linear(dim, dim, rng=rng)
        self.decoder = Linear(dim, vocab_size, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        return self.decoder(self.transform(hidden).gelu())


def mask_tokens(
    token_ids: np.ndarray,
    attention_mask: np.ndarray,
    tokenizer: WordTokenizer,
    config: MLMConfig,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """BERT's 80/10/10 masking.

    Returns (corrupted_ids, labels) where ``labels`` is -1 at positions
    not selected for prediction.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64)
    corrupted = token_ids.copy()
    labels = np.full_like(token_ids, -1)

    eligible = (attention_mask == 1) & ~np.isin(
        token_ids, [tokenizer.pad_id, tokenizer.cls_id, tokenizer.sep_id]
    )
    selected = eligible & (rng.random(token_ids.shape) < config.mask_probability)
    labels[selected] = token_ids[selected]

    action = rng.random(token_ids.shape)
    to_mask = selected & (action < config.replace_with_mask)
    to_random = selected & (
        (action >= config.replace_with_mask)
        & (action < config.replace_with_mask + config.replace_with_random)
    )
    corrupted[to_mask] = tokenizer.mask_id
    n_random = int(to_random.sum())
    if n_random:
        # Sample real words only: ids 0-4 are the special tokens.
        corrupted[to_random] = rng.integers(5, tokenizer.vocab_size, size=n_random)
    return corrupted, labels


class MLMTrainer:
    """Pre-trains a :class:`MiniBert` with masked LM on a title corpus."""

    def __init__(
        self,
        model: MiniBert,
        tokenizer: WordTokenizer,
        config: Optional[MLMConfig] = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config if config is not None else MLMConfig()
        self.head = MLMHead(
            model.config.dim,
            model.config.vocab_size,
            rng=np.random.default_rng(self.config.seed),
        )
        params = list(model.parameters()) + list(self.head.parameters())
        self.optimizer = Adam(params, lr=self.config.learning_rate)

    def train(
        self,
        titles: Sequence[Sequence[str]],
        max_length: Optional[int] = None,
    ) -> List[float]:
        """Run MLM pre-training; returns per-epoch mean losses."""
        if not titles:
            raise ValueError("empty corpus")
        max_length = max_length or self.model.config.max_length
        rng = np.random.default_rng(self.config.seed)
        ids, mask, _ = self.tokenizer.encode_batch(titles, max_length)

        losses: List[float] = []
        n = len(ids)
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, self.config.batch_size):
                index = order[start : start + self.config.batch_size]
                batch_ids, batch_mask = ids[index], mask[index]
                corrupted, labels = mask_tokens(
                    batch_ids, batch_mask, self.tokenizer, self.config, rng
                )
                flat_labels = labels.reshape(-1)
                predict_at = np.where(flat_labels >= 0)[0]
                if len(predict_at) == 0:
                    continue
                self.optimizer.zero_grad()
                hidden = self.model(corrupted, attention_mask=batch_mask)
                logits = self.head(hidden)
                flat = logits.reshape(-1, self.model.config.vocab_size)
                loss = F.cross_entropy(
                    flat[predict_at], flat_labels[predict_at]
                )
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    def predict_masked(
        self, words: Sequence[str], masked_position: int, max_length: Optional[int] = None
    ) -> np.ndarray:
        """Vocabulary logits for one masked position (diagnostics)."""
        max_length = max_length or self.model.config.max_length
        ids, mask, _ = self.tokenizer.encode(words, max_length)
        ids = ids.copy()
        ids[masked_position] = self.tokenizer.mask_id
        self.model.eval()
        hidden = self.model(ids[None, :], attention_mask=mask[None, :])
        logits = self.head(hidden)
        self.model.train()
        return logits.data[0, masked_position]
