"""Word-level tokenizer with BERT-style special tokens.

The paper tokenizes Chinese titles with BERT's WordPiece; our synthetic
titles are already word sequences, so a closed word vocabulary with the
standard ``[PAD]/[UNK]/[CLS]/[SEP]/[MASK]`` specials reproduces the
input pipeline (including the pair encoding used for alignment).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

PAD, UNK, CLS, SEP, MASK = "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK)


class WordTokenizer:
    """Maps word sequences to fixed-length id arrays.

    Parameters
    ----------
    vocabulary:
        The closed set of real words (specials are added automatically,
        occupying ids 0..4).
    """

    def __init__(self, vocabulary: Iterable[str]) -> None:
        words = sorted(set(vocabulary) - set(SPECIAL_TOKENS))
        self._id_of: Dict[str, int] = {
            token: i for i, token in enumerate(SPECIAL_TOKENS)
        }
        for word in words:
            self._id_of[word] = len(self._id_of)
        self._token_of = {i: t for t, i in self._id_of.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._id_of)

    @property
    def pad_id(self) -> int:
        return self._id_of[PAD]

    @property
    def unk_id(self) -> int:
        return self._id_of[UNK]

    @property
    def cls_id(self) -> int:
        return self._id_of[CLS]

    @property
    def sep_id(self) -> int:
        return self._id_of[SEP]

    @property
    def mask_id(self) -> int:
        return self._id_of[MASK]

    def id_of(self, token: str) -> int:
        """Id of ``token`` (UNK id if unknown)."""
        return self._id_of.get(token, self.unk_id)

    def token_of(self, index: int) -> str:
        if index not in self._token_of:
            raise IndexError(f"id {index} not in vocabulary")
        return self._token_of[index]

    def is_special(self, index: int) -> bool:
        return index < len(SPECIAL_TOKENS)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self, words: Sequence[str], max_length: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode one title: ``[CLS] words... [SEP]`` padded to ``max_length``.

        Follows the paper's truncation rule: overly long inputs keep the
        *first* words ("we reserve the first 127 words").

        Returns (token_ids, attention_mask, segment_ids), each of shape
        (max_length,).
        """
        if max_length < 3:
            raise ValueError("max_length must be >= 3 ([CLS] word [SEP])")
        body = [self.id_of(w) for w in words][: max_length - 2]
        ids = [self.cls_id] + body + [self.sep_id]
        mask = [1] * len(ids)
        pad = max_length - len(ids)
        ids.extend([self.pad_id] * pad)
        mask.extend([0] * pad)
        return (
            np.asarray(ids, dtype=np.int64),
            np.asarray(mask, dtype=np.int64),
            np.zeros(max_length, dtype=np.int64),
        )

    def encode_pair(
        self,
        words_a: Sequence[str],
        words_b: Sequence[str],
        max_length: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode a sentence pair: ``[CLS] a... [SEP] b... [SEP]``.

        Each side is truncated to an equal share of the budget, like the
        paper restricting each title to 63 tokens inside a length-128
        pair.  Segment ids are 0 for the first sentence (incl. [CLS] and
        its [SEP]) and 1 for the second.
        """
        if max_length < 5:
            raise ValueError("max_length must be >= 5 for a pair")
        budget = max_length - 3  # [CLS] + 2x[SEP]
        per_side = budget // 2
        a = [self.id_of(w) for w in words_a][:per_side]
        b = [self.id_of(w) for w in words_b][: budget - len(a)]
        ids = [self.cls_id] + a + [self.sep_id] + b + [self.sep_id]
        segments = [0] * (len(a) + 2) + [1] * (len(b) + 1)
        mask = [1] * len(ids)
        pad = max_length - len(ids)
        ids.extend([self.pad_id] * pad)
        mask.extend([0] * pad)
        segments.extend([0] * pad)
        return (
            np.asarray(ids, dtype=np.int64),
            np.asarray(mask, dtype=np.int64),
            np.asarray(segments, dtype=np.int64),
        )

    def encode_batch(
        self, titles: Sequence[Sequence[str]], max_length: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`encode` over a batch of titles."""
        encoded = [self.encode(t, max_length) for t in titles]
        ids = np.stack([e[0] for e in encoded])
        mask = np.stack([e[1] for e in encoded])
        segments = np.stack([e[2] for e in encoded])
        return ids, mask, segments

    def encode_pair_batch(
        self,
        pairs: Sequence[Tuple[Sequence[str], Sequence[str]]],
        max_length: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`encode_pair`."""
        encoded = [self.encode_pair(a, b, max_length) for a, b in pairs]
        ids = np.stack([e[0] for e in encoded])
        mask = np.stack([e[1] for e in encoded])
        segments = np.stack([e[2] for e in encoded])
        return ids, mask, segments

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> List[str]:
        """Ids back to tokens, optionally dropping specials."""
        tokens = []
        for index in ids:
            index = int(index)
            if skip_special and self.is_special(index):
                continue
            tokens.append(self.token_of(index))
        return tokens
