"""Text substrate: tokenizer, mini-BERT, MLM pre-training, task heads.

Substitutes the pre-trained Chinese BERT-base of the paper with a
from-scratch transformer encoder pre-trained via masked LM on the
synthetic title corpus, plus the PKGM service-vector injection path of
§II-E (sequence-input integration).
"""

from .bert import MiniBert, MiniBertConfig
from .heads import PairClassifier, TextClassifier
from .integration import (
    VARIANTS,
    pair_service_payload,
    pair_service_segment_ids,
    service_payload,
    validate_variant,
    vectors_per_item,
)
from .mlm import MLMConfig, MLMHead, MLMTrainer, mask_tokens
from .pair_pretrain import PairPretrainConfig, PairPretrainer
from .tokenizer import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, WordTokenizer

__all__ = [
    "CLS",
    "MASK",
    "MLMConfig",
    "MLMHead",
    "MLMTrainer",
    "MiniBert",
    "MiniBertConfig",
    "PAD",
    "PairClassifier",
    "PairPretrainConfig",
    "PairPretrainer",
    "SEP",
    "SPECIAL_TOKENS",
    "TextClassifier",
    "UNK",
    "VARIANTS",
    "WordTokenizer",
    "mask_tokens",
    "pair_service_payload",
    "pair_service_segment_ids",
    "service_payload",
    "validate_variant",
    "vectors_per_item",
]
