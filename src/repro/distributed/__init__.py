"""Parameter-server training simulation (the paper's 50-PS/200-worker setup).

Row-sharded parameter storage with pull/push semantics, closed-form
worker gradients (verified against the autograd engine), and a
bounded-staleness asynchronous training loop that exports back into a
standard :class:`repro.core.PKGM`.
"""

from .parameter_server import (
    DistributedConfig,
    DistributedPKGMTrainer,
    GradientPacket,
    ParameterServer,
    PKGMWorker,
)

__all__ = [
    "DistributedConfig",
    "DistributedPKGMTrainer",
    "GradientPacket",
    "PKGMWorker",
    "ParameterServer",
]
