"""Parameter-server training simulation.

The paper pre-trains PKGM on 50 parameter servers and 200 workers for
two epochs (88 GB of parameters).  This module reproduces that system
architecture single-process, faithfully enough to study its behaviour:

* :class:`ParameterServer` — row-sharded parameter storage with
  pull/push RPC semantics and server-side Adam state (the standard PS
  design: optimizers live with the shards);
* :class:`PKGMWorker` — computes *closed-form* sub-gradients of PKGM's
  margin loss on pulled rows (production PS pipelines hand-code
  gradients exactly like this; tests verify them against the autograd
  engine);
* :class:`DistributedPKGMTrainer` — round-robin scheduling of logical
  workers over edge-sampler batches with configurable gradient
  staleness, mirroring asynchronous PS training.

The simulation answers the reproduction-relevant question: does the
asynchronous sharded pipeline optimize the same objective to the same
quality as the reference single-process trainer?  (Bench:
``bench_ablation_distributed.py``.)
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core import PKGM
from ..nn import no_grad
from ..kg import EdgeSampler, TripleStore
from ..obs.metrics import MetricsRegistry, counter_view


class ParameterServer:
    """Row-sharded parameter storage with server-side Adam.

    Parameters are registered as named 2-D (or 3-D for transfer
    matrices) arrays; rows are assigned to shards by ``row % num_shards``.
    ``pull`` returns copies (network semantics); ``push`` applies Adam
    updates to the touched rows only, like sparse updates in TF's PS.
    """

    #: Legacy counter attributes, now views over the metrics registry.
    #: Reads and writes (tests zero them with ``server.pull_count = 0``)
    #: hit the same ``ps.pulls`` / ``ps.pushes`` instruments snapshots see.
    pull_count = counter_view("ps.pulls", help="Pull RPCs (one per shard touched)")
    push_count = counter_view("ps.pushes", help="Push RPCs (one per shard touched)")

    def __init__(
        self,
        num_shards: int,
        learning_rate: float = 1e-2,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        registry=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if registry is None:
            registry = MetricsRegistry()
        self.metrics = registry
        self.num_shards = num_shards
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._tables: Dict[str, np.ndarray] = {}
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._step: Dict[str, np.ndarray] = {}
        self.pull_count = 0
        self.push_count = 0
        self._pull_rows_c = registry.counter(
            "ps.pull.rows", help="Parameter rows pulled"
        )
        self._push_rows_c = registry.counter(
            "ps.push.rows", help="Parameter rows pushed"
        )
        self._shard_pulls = [
            registry.counter(
                "ps.pull.shard_rpcs",
                help="Pull RPCs answered by a shard",
                labels={"shard": shard},
            )
            for shard in range(num_shards)
        ]
        self._shard_pushes = [
            registry.counter(
                "ps.push.shard_rpcs",
                help="Push RPCs applied by a shard",
                labels={"shard": shard},
            )
            for shard in range(num_shards)
        ]
        self._shard_rows = [
            registry.gauge(
                "ps.shard.rows",
                help="Parameter rows resident on a shard",
                labels={"shard": shard},
            )
            for shard in range(num_shards)
        ]

    def register(self, name: str, table: np.ndarray) -> None:
        """Install a parameter table (copied — the server owns it)."""
        if name in self._tables:
            raise KeyError(f"parameter {name!r} already registered")
        self._tables[name] = np.array(table, dtype=np.float64)
        self._m[name] = np.zeros_like(self._tables[name])
        self._v[name] = np.zeros_like(self._tables[name])
        self._step[name] = np.zeros(len(table), dtype=np.int64)
        for shard, rows in enumerate(self.shard_sizes(name)):
            self._shard_rows[shard].add(rows)

    def shard_of(self, row: int) -> int:
        """The shard a row lives on (round-robin by id)."""
        return row % self.num_shards

    def shard_sizes(self, name: str) -> List[int]:
        """Rows per shard for a table — the load-balance audit."""
        rows = len(self._tables[name])
        return [len(range(s, rows, self.num_shards)) for s in range(self.num_shards)]

    def pull(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Fetch rows (copy) — one logical RPC per distinct shard."""
        rows = np.asarray(rows, dtype=np.int64)
        shards = sorted(set(self.shard_of(int(r)) for r in np.unique(rows)))
        self.pull_count += len(shards)
        for shard in shards:
            self._shard_pulls[shard].inc()
        self._pull_rows_c.inc(len(rows))
        return self._tables[name][rows].copy()

    def push(self, name: str, rows: np.ndarray, gradients: np.ndarray) -> None:
        """Apply sparse Adam updates to the touched rows.

        Duplicate rows in one push are accumulated first, matching
        dense-gradient semantics.
        """
        rows = np.asarray(rows, dtype=np.int64)
        gradients = np.asarray(gradients, dtype=np.float64)
        if len(rows) != len(gradients):
            raise ValueError("rows and gradients must align")
        unique, inverse = np.unique(rows, return_inverse=True)
        accumulated = np.zeros((len(unique), *gradients.shape[1:]))
        np.add.at(accumulated, inverse, gradients)

        shards = sorted(set(self.shard_of(int(r)) for r in unique))
        self.push_count += len(shards)
        for shard in shards:
            self._shard_pushes[shard].inc()
        self._push_rows_c.inc(len(unique))
        table = self._tables[name]
        m, v, step = self._m[name], self._v[name], self._step[name]
        step[unique] += 1
        t = step[unique].reshape(-1, *([1] * (gradients.ndim - 1)))
        m[unique] = self.beta1 * m[unique] + (1 - self.beta1) * accumulated
        v[unique] = self.beta2 * v[unique] + (1 - self.beta2) * accumulated**2
        m_hat = m[unique] / (1 - self.beta1**t)
        v_hat = v[unique] / (1 - self.beta2**t)
        table[unique] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def snapshot(self, name: str) -> np.ndarray:
        """Full copy of a table (checkpointing)."""
        return self._tables[name].copy()

    def table_names(self) -> List[str]:
        """Registered parameter tables, in registration order."""
        return list(self._tables)

    def state(self, name: str) -> Dict[str, np.ndarray]:
        """Full recoverable state of one table: values + Adam moments.

        Returns copies — the checkpoint layer owns them.
        """
        return {
            "table": self._tables[name].copy(),
            "m": self._m[name].copy(),
            "v": self._v[name].copy(),
            "step": self._step[name].copy(),
        }

    def load_state(self, name: str, state: Dict[str, np.ndarray]) -> None:
        """Restore a table's values and Adam moments (shape-checked)."""
        if name not in self._tables:
            raise KeyError(f"parameter {name!r} is not registered")
        for key in ("table", "m", "v", "step"):
            if key not in state:
                raise KeyError(f"state for {name!r} is missing {key!r}")
            expected = (
                self._step[name].shape if key == "step" else self._tables[name].shape
            )
            if state[key].shape != expected:
                raise ValueError(
                    f"state[{key!r}] shape {state[key].shape} != {expected}"
                )
        self._tables[name][:] = state["table"]
        self._m[name][:] = state["m"]
        self._v[name][:] = state["v"]
        self._step[name][:] = state["step"]

    # ------------------------------------------------------------------
    # Out-of-core persistence: shard state as an embedding store
    # ------------------------------------------------------------------
    def save_to_store(self, directory, *, page_bytes: Optional[int] = None,
                      registry=None):
        """Persist every table (values + Adam moments) as a
        :class:`repro.store.EmbeddingStore`.

        Uses the ``strided`` layout with this server's shard count, so
        store shard ``s`` holds exactly the rows ``shard_of`` assigns to
        PS shard ``s`` — each shard file is one PS shard's state, and a
        damaged shard quarantines only that shard's rows.  Returns the
        built (open) store.
        """
        # Imported lazily: repro.store pulls in repro.reliability, which
        # this training-side module otherwise never needs.
        from ..store import DEFAULT_PAGE_BYTES, EmbeddingStore

        arrays: Dict[str, np.ndarray] = {}
        for name in sorted(self._tables):
            arrays[f"{name}.table"] = self._tables[name]
            arrays[f"{name}.m"] = self._m[name]
            arrays[f"{name}.v"] = self._v[name]
            arrays[f"{name}.step"] = self._step[name]
        return EmbeddingStore.build(
            directory,
            arrays,
            num_shards=self.num_shards,
            layout="strided",
            page_bytes=DEFAULT_PAGE_BYTES if page_bytes is None else page_bytes,
            metadata={
                "kind": "parameter-server",
                "num_shards": self.num_shards,
                "tables": sorted(self._tables),
            },
            registry=registry,
        )

    def restore_from_store(self, directory, *, cache_pages: int = 64,
                           registry=None) -> None:
        """Restore every registered table from :meth:`save_to_store`.

        Tables must already be registered (shapes come from
        registration, values from the store); missing store tables raise
        ``KeyError``, geometry mismatches ``ValueError`` — the
        :meth:`load_state` contract.  Reads stream through the store's
        page cache, so restoring stays within the cache budget.
        """
        from ..store import EmbeddingStore, StoreSchemaError

        store = EmbeddingStore.open(
            directory, cache_pages=cache_pages, registry=registry
        )
        try:
            if store.metadata.get("kind") != "parameter-server":
                raise KeyError(
                    f"store metadata kind {store.metadata.get('kind')!r} "
                    f"is not 'parameter-server'"
                )
            for name in sorted(self._tables):
                state = {}
                for part in ("table", "m", "v", "step"):
                    try:
                        state[part] = store.read_table(f"{name}.{part}")
                    except StoreSchemaError as error:
                        raise KeyError(
                            f"store has no state for parameter {name!r} "
                            f"({error})"
                        ) from error
                self.load_state(name, state)
        finally:
            store.close()

    def renormalize_rows(self, name: str, max_norm: float = 1.0) -> None:
        """Project rows onto the L2 ball (TransE's entity constraint)."""
        table = self._tables[name]
        norms = np.linalg.norm(table.reshape(len(table), -1), axis=1)
        scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
        table *= scale.reshape(-1, *([1] * (table.ndim - 1)))


@dataclass
class GradientPacket:
    """One worker's computed gradients, keyed by table name."""

    rows: Dict[str, np.ndarray]
    gradients: Dict[str, np.ndarray]
    loss: float


class PKGMWorker:
    """Computes closed-form PKGM margin-loss gradients on pulled rows.

    The score is ``f(h,r,t) = ||h + r - t||_1 + ||M_r h - r||_1`` and the
    loss per pair is ``[f(pos) + margin - f(neg)]_+``; sub-gradients use
    ``sign`` for the L1 terms.  Verified against the autograd engine in
    the test suite.
    """

    ENTITY, RELATION, MATRIX = "entities", "relations", "matrices"

    def __init__(
        self,
        server: ParameterServer,
        margin: float,
        retrier=None,
        pull_budget: Optional[float] = None,
    ) -> None:
        if margin <= 0:
            raise ValueError("margin must be positive")
        if pull_budget is not None and pull_budget <= 0:
            raise ValueError("pull_budget must be positive when set")
        self.server = server
        self.margin = margin
        # Optional repro.reliability.retry.Retrier wrapping the pull RPCs
        # (transient RPCErrors from an injected fault plan get retried).
        self.retrier = retrier
        # Optional per-pull deadline budget (virtual seconds on the
        # retrier's clock): a pull whose retries cannot fit the budget
        # raises DeadlineExceededError instead of backing off past it.
        self.pull_budget = pull_budget

    def _pull(self, name: str, rows: np.ndarray) -> np.ndarray:
        if self.retrier is None:
            return self.server.pull(name, rows)
        if self.pull_budget is None:
            return self.retrier.call(self.server.pull, name, rows)
        from ..reliability.admission import Deadline

        deadline = Deadline(self.retrier.clock, self.pull_budget)
        return self.retrier.call_with_deadline(
            deadline, self.server.pull, name, rows
        )

    def compute(self, positives: np.ndarray, negatives: np.ndarray) -> GradientPacket:
        """Gradient packet for one (positives, negatives) batch pair."""
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        if positives.shape != negatives.shape:
            raise ValueError("positives and negatives must align")

        entity_rows = np.concatenate(
            [positives[:, 0], positives[:, 2], negatives[:, 0], negatives[:, 2]]
        )
        relation_rows = np.concatenate([positives[:, 1], negatives[:, 1]])
        e_unique = np.unique(entity_rows)
        r_unique = np.unique(relation_rows)
        e_index = {int(row): i for i, row in enumerate(e_unique)}
        r_index = {int(row): i for i, row in enumerate(r_unique)}

        entities = self._pull(self.ENTITY, e_unique)
        relations = self._pull(self.RELATION, r_unique)
        matrices = self._pull(self.MATRIX, r_unique)

        def score_parts(triples):
            h = entities[[e_index[int(x)] for x in triples[:, 0]]]
            r = relations[[r_index[int(x)] for x in triples[:, 1]]]
            t = entities[[e_index[int(x)] for x in triples[:, 2]]]
            m = matrices[[r_index[int(x)] for x in triples[:, 1]]]
            diff_t = h + r - t
            diff_r = np.einsum("bij,bj->bi", m, h) - r
            score = np.abs(diff_t).sum(axis=1) + np.abs(diff_r).sum(axis=1)
            return h, r, t, m, diff_t, diff_r, score

        hp, rp, tp, mp, dtp, drp, pos_score = score_parts(positives)
        hn, rn, tn, mn, dtn, drn, neg_score = score_parts(negatives)
        active = (pos_score + self.margin - neg_score) > 0
        loss = float(np.sum((pos_score + self.margin - neg_score)[active]))

        grad_e = np.zeros_like(entities)
        grad_r = np.zeros_like(relations)
        grad_m = np.zeros_like(matrices)

        def accumulate(triples, m, dt, dr, sign):
            mask = active
            st = np.sign(dt) * sign
            sr = np.sign(dr) * sign
            st[~mask] = 0.0
            sr[~mask] = 0.0
            h_rows = [e_index[int(x)] for x in triples[:, 0]]
            r_rows = [r_index[int(x)] for x in triples[:, 1]]
            t_rows = [e_index[int(x)] for x in triples[:, 2]]
            h_vals = entities[h_rows]
            # f_T gradients.
            np.add.at(grad_e, h_rows, st)
            np.add.at(grad_r, r_rows, st)
            np.add.at(grad_e, t_rows, -st)
            # f_R gradients: d||Mh - r|| -> dM = s h^T, dh = M^T s, dr = -s.
            np.add.at(grad_m, r_rows, np.einsum("bi,bj->bij", sr, h_vals))
            np.add.at(grad_e, h_rows, np.einsum("bij,bi->bj", m, sr))
            np.add.at(grad_r, r_rows, -sr)

        accumulate(positives, mp, dtp, drp, +1.0)
        accumulate(negatives, mn, dtn, drn, -1.0)

        return GradientPacket(
            rows={
                self.ENTITY: e_unique,
                self.RELATION: r_unique,
                self.MATRIX: r_unique,
            },
            gradients={
                self.ENTITY: grad_e,
                self.RELATION: grad_r,
                self.MATRIX: grad_m,
            },
            loss=loss,
        )


@dataclass(frozen=True)
class DistributedConfig:
    """PS-simulation knobs (paper: 50 servers, 200 workers, 2 epochs)."""

    num_shards: int = 4
    num_workers: int = 8
    staleness: int = 0
    epochs: int = 10
    batch_size: int = 256
    learning_rate: float = 1e-2
    margin: float = 2.0
    entity_max_norm: Optional[float] = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.num_workers < 1:
            raise ValueError("num_shards and num_workers must be >= 1")
        if self.staleness < 0:
            raise ValueError("staleness must be >= 0")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")


class DistributedPKGMTrainer:
    """Runs PKGM pre-training through the parameter-server simulation.

    Workers take batches round-robin.  With ``staleness = s``, a
    worker's gradient packet is applied ``s`` batches after it was
    computed — the bounded-staleness model of asynchronous PS training.
    The trained tables can be exported back into a :class:`PKGM` model
    so all downstream service code works unchanged.

    Reliability wiring (all optional, :mod:`repro.reliability`):

    * ``faults`` — a ``FaultPlan``; the server is wrapped in a
      ``FaultyParameterServer`` injecting seeded drops / duplicates /
      staleness spikes / transient RPC errors / shard crashes;
    * ``retry`` — a ``RetryPolicy``; workers retry faulted pulls and
      the trainer retries faulted pushes (a push that exhausts its
      retries is abandoned and counted, like a worker timing out);
    * ``checkpoint_dir`` — crash-consistent epoch-boundary snapshots of
      every table plus its server-side Adam state and the sampler RNG
      state.  A scheduled shard crash restores the latest checkpoint
      and replays from that epoch; a new trainer pointed at the same
      directory resumes a killed run bit-exactly.
    """

    #: Reliability accounting, registry-backed with the legacy attribute
    #: names preserved as read/write views.
    abandoned_batches = counter_view(
        "dist.abandoned_batches", help="Batches lost to exhausted pulls"
    )
    abandoned_pushes = counter_view(
        "dist.abandoned_pushes", help="Pushes lost to exhausted retries"
    )
    recoveries = counter_view(
        "dist.recoveries", help="Checkpoint restores after shard crashes"
    )

    def __init__(
        self,
        model: PKGM,
        config: Optional[DistributedConfig] = None,
        faults=None,
        retry=None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        resume: bool = True,
        pull_budget: Optional[float] = None,
        registry=None,
        tracer=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.model = model
        self.config = config if config is not None else DistributedConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._epoch_loss_g = self.metrics.gauge(
            "dist.epoch_loss", help="Mean margin loss of the last epoch"
        )
        self._epochs_c = self.metrics.counter(
            "dist.epochs", help="Epochs completed (including replays)"
        )
        self.server = ParameterServer(
            num_shards=self.config.num_shards,
            learning_rate=self.config.learning_rate,
            registry=self.metrics,
        )
        self.fault_plan = faults
        if faults is not None:
            from ..reliability.faults import FaultyParameterServer

            self.server = FaultyParameterServer(self.server, faults)
        self._retrier = None
        if retry is not None:
            from ..reliability.retry import Retrier

            self._retrier = Retrier(retry)
        self._manager = None
        if checkpoint_dir is not None:
            from ..reliability.checkpoint import CheckpointManager

            self._manager = CheckpointManager(checkpoint_dir)
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.abandoned_batches = 0
        self.abandoned_pushes = 0
        self.recoveries = 0
        self.server.register(
            PKGMWorker.ENTITY, model.triple_module.entity_embeddings.weight.data
        )
        self.server.register(
            PKGMWorker.RELATION, model.triple_module.relation_embeddings.weight.data
        )
        self.server.register(
            PKGMWorker.MATRIX, model.relation_module.transfer_matrices.data
        )
        self.workers = [
            PKGMWorker(
                self.server,
                margin=self.config.margin,
                retrier=self._retrier,
                pull_budget=pull_budget,
            )
            for _ in range(self.config.num_workers)
        ]

    @property
    def fault_stats(self):
        """Injected-fault accounting, or ``None`` without a plan."""
        return self.server.stats if self.fault_plan is not None else None

    @property
    def retry_stats(self):
        """Retry accounting, or ``None`` without a policy."""
        return self._retrier.stats if self._retrier is not None else None

    def train(self, store: TripleStore) -> List[float]:
        """Run the asynchronous loop; returns per-epoch mean losses."""
        from ..reliability.retry import DeadlineExceededError, RetryExhaustedError

        rng = np.random.default_rng(self.config.seed)
        sampler = EdgeSampler.with_uniform(
            store,
            batch_size=self.config.batch_size,
            num_entities=self.model.num_entities,
            num_relations=self.model.num_relations,
            rng=rng,
        )
        losses: List[float] = []
        epoch = 0
        if self._manager is not None:
            if self.resume and self._manager.latest() is not None:
                epoch, losses = self._restore(rng)
            else:
                # Fresh run: stale checkpoints from an earlier run must
                # not leak into crash recovery; then write the epoch-0
                # baseline so a first-epoch crash can recover.
                self._manager.clear()
                self._save_checkpoint(0, rng, losses)
        pending: Deque[GradientPacket] = deque()
        crashes = list(self.fault_plan.crashes) if self.fault_plan is not None else []
        while epoch < self.config.epochs:
            epoch_loss, count = 0.0, 0
            recovered_mid_epoch = False
            span_cm = (
                self.tracer.span("dist.epoch", epoch=epoch)
                if self.tracer is not None
                else nullcontext()
            )
            with span_cm:
                for batch_index, batch in enumerate(sampler.epoch()):
                    if self.tracer is not None:
                        self.tracer.clock.advance(1.0)
                    event = self._pop_crash(crashes, epoch, batch_index)
                    if event is not None:
                        self.server.crash_shard(event.shard)
                        pending.clear()  # in-flight packets died with the shard
                        if self.tracer is not None:
                            self.tracer.event(f"crash shard={event.shard}")
                        if (
                            self._manager is not None
                            and self._manager.latest() is not None
                        ):
                            epoch, losses = self._restore(rng)
                            self.recoveries += 1
                            recovered_mid_epoch = True
                            if self.tracer is not None:
                                self.tracer.event(f"restored epoch={epoch}")
                            break
                        # No checkpoint: keep training on the damaged state.
                    worker = self.workers[batch_index % len(self.workers)]
                    try:
                        packet = worker.compute(batch.positives, batch.negatives[0])
                    except (RetryExhaustedError, DeadlineExceededError):
                        # Exhausted retries or a blown pull deadline: the
                        # batch is abandoned either way (a worker timeout).
                        self.abandoned_batches += 1
                        continue
                    pending.append(packet)
                    epoch_loss += packet.loss
                    count += len(batch)
                    if len(pending) > self.config.staleness:
                        self._apply(pending.popleft())
            if recovered_mid_epoch:
                continue
            while pending:
                self._apply(pending.popleft())
            losses.append(epoch_loss / max(count, 1))
            self._epoch_loss_g.set(losses[-1])
            self._epochs_c.inc()
            epoch += 1
            if self._manager is not None and (
                epoch % self.checkpoint_every == 0 or epoch == self.config.epochs
            ):
                self._save_checkpoint(epoch, rng, losses)
        self.export_to_model()
        return losses

    @staticmethod
    def _pop_crash(crashes, epoch: int, batch_index: int):
        for event in crashes:
            if event.epoch == epoch and event.batch == batch_index:
                crashes.remove(event)
                return event
        return None

    def _apply(self, packet: GradientPacket) -> None:
        from ..reliability.retry import RetryExhaustedError

        for name in packet.rows:
            if self._retrier is None:
                self.server.push(name, packet.rows[name], packet.gradients[name])
            else:
                try:
                    self._retrier.call(
                        self.server.push,
                        name,
                        packet.rows[name],
                        packet.gradients[name],
                    )
                except RetryExhaustedError:
                    self.abandoned_pushes += 1
        if self.config.entity_max_norm is not None:
            self.server.renormalize_rows(
                PKGMWorker.ENTITY, self.config.entity_max_norm
            )

    # ------------------------------------------------------------------
    # Crash-consistent checkpointing
    # ------------------------------------------------------------------
    def _save_checkpoint(self, epoch: int, rng, losses: List[float]) -> None:
        from ..reliability.checkpoint import rng_state

        arrays = {}
        for name in self.server.table_names():
            state = self.server.state(name)
            for key, value in state.items():
                arrays[f"{name}.{key}"] = value
        self._manager.save(
            epoch,
            arrays,
            metadata={
                "epoch": epoch,
                "rng": rng_state(rng),
                "losses": list(losses),
            },
        )

    def _restore(self, rng):
        from ..reliability.checkpoint import restore_rng

        arrays, metadata = self._manager.load()
        for name in self.server.table_names():
            self.server.load_state(
                name, {key: arrays[f"{name}.{key}"] for key in ("table", "m", "v", "step")}
            )
        restore_rng(rng, metadata["rng"])
        return int(metadata["epoch"]), [float(x) for x in metadata["losses"]]

    def export_to_model(self) -> PKGM:
        """Copy the trained tables back into the wrapped PKGM."""
        with no_grad():
            self.model.triple_module.entity_embeddings.weight.data = (
                self.server.snapshot(PKGMWorker.ENTITY)
            )
            self.model.triple_module.relation_embeddings.weight.data = (
                self.server.snapshot(PKGMWorker.RELATION)
            )
            self.model.relation_module.transfer_matrices.data = self.server.snapshot(
                PKGMWorker.MATRIX
            )
        return self.model
