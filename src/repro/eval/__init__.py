"""Metrics and ranking protocols shared by the three downstream tasks."""

from .metrics import (
    accuracy,
    hit_ratio_at_k,
    hits_at_k,
    label_ranks,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
    ranking_metrics,
)

__all__ = [
    "accuracy",
    "hit_ratio_at_k",
    "hits_at_k",
    "label_ranks",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "rank_of_positive",
    "ranking_metrics",
]
