"""Evaluation metrics used across the paper's three tasks.

* item classification (Table IV): accuracy + Hit@k over the rank of the
  correct label among all category logits;
* product alignment (Tables VI–VII): accuracy + Hit@k over 100-candidate
  ranking;
* recommendation (Table VIII): HR@k and NDCG@k over 101-candidate
  leave-one-out ranking.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("empty prediction array")
    return float((predictions == labels).mean())


def label_ranks(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """1-based rank of the correct label within each row of logits.

    This is the paper's classification Hit@k protocol: "we calculate
    Hit@k by getting the rank of the correct label as its predicting
    category rank".  Ties are counted optimistically-averaged
    (1 + #strictly-better + #ties/2).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    if len(labels) != len(logits):
        raise ValueError("labels length mismatch")
    true_scores = logits[np.arange(len(logits)), labels]
    better = (logits > true_scores[:, None]).sum(axis=1)
    ties = (logits == true_scores[:, None]).sum(axis=1) - 1
    return 1 + better + ties // 2


def hits_at_k(ranks: Sequence[int], k: int) -> float:
    """Fraction of ranks <= k."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("empty ranks")
    if k < 1:
        raise ValueError("k must be >= 1")
    return float((ranks <= k).mean())


def hit_ratio_at_k(ranks: Sequence[int], k: int) -> float:
    """HR@k — identical formula to Hits@k, named per the NCF paper."""
    return hits_at_k(ranks, k)


def ndcg_at_k(ranks: Sequence[int], k: int) -> float:
    """NDCG@k with a single relevant item per query.

    With one positive, DCG = 1/log2(rank+1) when rank <= k else 0, and
    the ideal DCG is 1 — the standard NCF evaluation formula.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("empty ranks")
    if k < 1:
        raise ValueError("k must be >= 1")
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """MRR of 1-based ranks."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("empty ranks")
    return float((1.0 / ranks).mean())


def ranking_metrics(
    ranks: Sequence[int], ks: Iterable[int] = (1, 3, 5, 10, 30)
) -> Dict[str, float]:
    """HR@k and NDCG@k for every cutoff, as one flat dict."""
    out: Dict[str, float] = {}
    for k in ks:
        out[f"HR@{k}"] = hit_ratio_at_k(ranks, k)
        out[f"NDCG@{k}"] = ndcg_at_k(ranks, k)
    return out


def rank_of_positive(scores: np.ndarray, positive_index: int = 0) -> int:
    """1-based rank of one candidate among scores (higher = better).

    Used for alignment and recommendation ranking: the positive's score
    is compared against all candidates'; ties are averaged.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    if not 0 <= positive_index < len(scores):
        raise IndexError("positive_index out of range")
    target = scores[positive_index]
    better = int((scores > target).sum())
    ties = int((scores == target).sum()) - 1
    return 1 + better + ties // 2
