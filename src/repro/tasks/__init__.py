"""The paper's three downstream tasks, each with Base and PKGM variants.

* :mod:`repro.tasks.classification` — item classification (Table IV);
* :mod:`repro.tasks.alignment` — product alignment (Tables VI–VII);
* :mod:`repro.tasks.recommendation` — NCF recommendation (Table VIII).
"""

from .alignment import AlignmentResult, ProductAlignmentTask
from .attribute_prediction import AttributePredictionResult, AttributePredictionTask
from .classification import ClassificationResult, ItemClassificationTask
from .common import FineTuneConfig, minibatches
from .recommendation import (
    NCF,
    NCFConfig,
    RecommendationResult,
    RecommendationTask,
)

__all__ = [
    "AlignmentResult",
    "AttributePredictionResult",
    "AttributePredictionTask",
    "ClassificationResult",
    "FineTuneConfig",
    "ItemClassificationTask",
    "NCF",
    "NCFConfig",
    "ProductAlignmentTask",
    "RecommendationResult",
    "RecommendationTask",
    "minibatches",
]
