"""Item recommendation task (paper §III-D, Table VIII).

Implements NCF (He et al. 2017) exactly as the paper uses it — a GMF
pathway (Eq. 13) fused with an MLP pathway (Eq. 14–17) through a
prediction layer (Eq. 18), trained with BCE over sampled negatives
(Eq. 19) — plus ``NCF_PKGM``: the condensed PKGM service vector is
concatenated into the MLP input ``z_1`` (Eq. 20–21).  Evaluation is
leave-one-out with 100 sampled negatives, reporting HR@k and NDCG@k for
k ∈ {1, 3, 5, 10, 30}.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import PKGMServer
from ..data import InteractionDataset
from ..eval import rank_of_positive, ranking_metrics
from ..nn import Adam, Embedding, Linear, MLP, Module, Tensor, concat
from ..nn import functional as F
from ..nn import init
from ..text import validate_variant


@dataclass(frozen=True)
class NCFConfig:
    """NCF hyperparameters (paper §III-D4 defaults, scaled)."""

    gmf_dim: int = 8
    mlp_dim: int = 32
    mlp_layers: Tuple[int, ...] = (32, 16, 8)
    service_dim: int = 0
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    batch_size: int = 256
    epochs: int = 20
    negative_ratio: int = 4
    eval_negatives: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gmf_dim < 1 or self.mlp_dim < 1:
            raise ValueError("embedding dims must be >= 1")
        if not self.mlp_layers:
            raise ValueError("mlp_layers must be non-empty")
        if self.negative_ratio < 1:
            raise ValueError("negative_ratio must be >= 1")
        if self.eval_negatives < 1:
            raise ValueError("eval_negatives must be >= 1")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.service_dim < 0:
            raise ValueError("service_dim must be >= 0")


class NCF(Module):
    """Neural Collaborative Filtering with optional PKGM feature input.

    The GMF and MLP pathways own separate user/item embedding tables,
    as in the original paper; the optional ``service`` input joins the
    MLP concatenation (Eq. 21) and never touches the GMF path.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        config: Optional[NCFConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else NCFConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        if num_users < 1 or num_items < 1:
            raise ValueError("need at least one user and one item")
        self.num_users = num_users
        self.num_items = num_items
        c = self.config
        self.gmf_user = Embedding(num_users, c.gmf_dim, rng=rng, init_fn=init.normal)
        self.gmf_item = Embedding(num_items, c.gmf_dim, rng=rng, init_fn=init.normal)
        self.mlp_user = Embedding(num_users, c.mlp_dim, rng=rng, init_fn=init.normal)
        self.mlp_item = Embedding(num_items, c.mlp_dim, rng=rng, init_fn=init.normal)
        mlp_input = 2 * c.mlp_dim + c.service_dim
        self.mlp = MLP([mlp_input, *c.mlp_layers], activation="relu", rng=rng)
        # Eq. 18: h^T [phi_GMF ; phi_MLP] -> logit.
        self.prediction = Linear(c.gmf_dim + c.mlp_layers[-1], 1, bias=False, rng=rng)

    def forward(
        self,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        service: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Interaction logits for aligned (user, item) arrays."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape:
            raise ValueError("user_ids and item_ids must align")
        gmf = self.gmf_user(user_ids) * self.gmf_item(item_ids)  # Eq. 13
        parts = [self.mlp_user(user_ids), self.mlp_item(item_ids)]
        if self.config.service_dim:
            if service is None:
                raise ValueError("model configured with service_dim needs service input")
            service = np.asarray(service, dtype=np.float64)
            if service.shape != (*user_ids.shape, self.config.service_dim):
                raise ValueError(
                    f"service shape {service.shape} != "
                    f"{(*user_ids.shape, self.config.service_dim)}"
                )
            parts.append(Tensor(service))
        elif service is not None:
            raise ValueError("model without service_dim got a service input")
        z1 = concat(parts, axis=-1)  # Eq. 14 / Eq. 21
        phi_mlp = self.mlp(z1)  # Eq. 15-17
        fused = concat([gmf, phi_mlp], axis=-1)
        return self.prediction(fused).reshape(user_ids.shape)  # Eq. 18 logit

    def predict(self, user_ids, item_ids, service=None) -> np.ndarray:
        """Interaction probabilities (eval mode, numpy out)."""
        self.eval()
        logits = self.forward(user_ids, item_ids, service)
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))

    def predict_unseen(
        self,
        user_ids: np.ndarray,
        service: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Scores for items with *no trained embedding* (cold start).

        Every unseen item is represented by the mean of the trained
        item-embedding tables — the standard fold-in for an id the
        model never saw.  Without a ``service`` input the item side is
        therefore identical across candidates and the model cannot
        rank them (the collaborative cold-start failure); with PKGM
        service features in the MLP path (Eq. 21) the candidates
        separate again.  This is the warm-only baseline of the
        zero-shot scenario in :mod:`repro.scenarios.coldstart`.
        """
        self.eval()
        user_ids = np.asarray(user_ids, dtype=np.int64)
        shape = (*user_ids.shape, 1)
        gmf_mean = self.gmf_item.weight.data.mean(axis=0)
        mlp_mean = self.mlp_item.weight.data.mean(axis=0)
        gmf = self.gmf_user(user_ids) * Tensor(
            np.tile(gmf_mean, shape)
        )
        parts = [self.mlp_user(user_ids), Tensor(np.tile(mlp_mean, shape))]
        if self.config.service_dim:
            if service is None:
                raise ValueError("model configured with service_dim needs service input")
            service = np.asarray(service, dtype=np.float64)
            if service.shape != (*user_ids.shape, self.config.service_dim):
                raise ValueError(
                    f"service shape {service.shape} != "
                    f"{(*user_ids.shape, self.config.service_dim)}"
                )
            parts.append(Tensor(service))
        elif service is not None:
            raise ValueError("model without service_dim got a service input")
        z1 = concat(parts, axis=-1)
        fused = concat([gmf, self.mlp(z1)], axis=-1)
        logits = self.prediction(fused).reshape(user_ids.shape)
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))


@dataclass(frozen=True)
class RecommendationResult:
    """One row of Table VIII."""

    variant: str
    metrics: Dict[str, float]

    def as_table_row(self, ks: Sequence[int] = (1, 3, 5, 10, 30)) -> str:
        hr = " | ".join(f"{100 * self.metrics[f'HR@{k}']:.2f}" for k in ks)
        ndcg = " | ".join(f"{self.metrics[f'NDCG@{k}']:.4f}" for k in ks)
        return f"{self.variant} | {hr} | {ndcg}"


class RecommendationTask:
    """Trains NCF variants and evaluates them leave-one-out.

    ``item_entity_ids`` maps the dataset's dense item ids to KG entity
    ids so the PKGM server can be queried; the per-item condensed
    service features are precomputed once (they are fixed during
    training, as in the paper).
    """

    def __init__(
        self,
        interactions: InteractionDataset,
        item_entity_ids: Sequence[int],
        server: Optional[PKGMServer] = None,
        config: Optional[NCFConfig] = None,
    ) -> None:
        if len(item_entity_ids) != interactions.num_items:
            raise ValueError("item_entity_ids must cover every item")
        self.interactions = interactions
        self.item_entity_ids = list(item_entity_ids)
        self.server = server
        self.base_config = config if config is not None else NCFConfig()
        self.train_pairs, self.heldout = interactions.leave_one_out()
        self._observed: Dict[int, Set[int]] = defaultdict(set)
        for interaction in interactions.interactions:
            self._observed[interaction.user_id].add(interaction.item_id)

    # ------------------------------------------------------------------
    def item_features(self, variant: str) -> Optional[np.ndarray]:
        """Per-item condensed PKGM features (num_items, f) or None.

        ``pkgm-all`` uses Eq. 20 (paired concat, width 2d); ``pkgm-t`` /
        ``pkgm-r`` average only their module's vectors (width d).
        """
        variant = validate_variant(variant)
        if variant == "base":
            return None
        if self.server is None:
            raise ValueError(f"variant {variant!r} requires a PKGM server")
        batches = self.server.serve_batch(self.item_entity_ids)
        if variant == "pkgm-t":
            return np.stack([b.triple_vectors.mean(axis=0) for b in batches])
        if variant == "pkgm-r":
            return np.stack([b.relation_vectors.mean(axis=0) for b in batches])
        return np.stack([b.condensed() for b in batches])

    def train_model(self, variant: str) -> Tuple[NCF, Optional[np.ndarray]]:
        """Train one NCF variant; returns ``(model, item features)``.

        Split out of :meth:`run` so the zero-shot scenario
        (:mod:`repro.scenarios.coldstart`) can reuse the trained model
        for cold-item scoring via :meth:`NCF.predict_unseen`.
        """
        variant = validate_variant(variant)
        features = self.item_features(variant)
        service_dim = 0 if features is None else features.shape[1]
        config = dataclasses.replace(self.base_config, service_dim=service_dim)
        rng = np.random.default_rng(config.seed)
        model = NCF(
            self.interactions.num_users,
            self.interactions.num_items,
            config,
            rng=rng,
        )
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )

        users = np.asarray([i.user_id for i in self.train_pairs], dtype=np.int64)
        items = np.asarray([i.item_id for i in self.train_pairs], dtype=np.int64)
        for _ in range(config.epochs):
            batch_users, batch_items, batch_labels = self._with_negatives(
                users, items, config.negative_ratio, rng
            )
            order = rng.permutation(len(batch_users))
            for start in range(0, len(order), config.batch_size):
                index = order[start : start + config.batch_size]
                optimizer.zero_grad()
                service = None if features is None else features[batch_items[index]]
                logits = model(batch_users[index], batch_items[index], service)
                loss = F.binary_cross_entropy_with_logits(
                    logits, batch_labels[index]
                )
                loss.backward()
                optimizer.step()

        return model, features

    def run(self, variant: str) -> RecommendationResult:
        """Train one NCF variant and evaluate Table VIII metrics."""
        model, features = self.train_model(variant)
        return self.evaluate(model, variant, features)

    def evaluate(
        self,
        model: NCF,
        variant: str,
        features: Optional[np.ndarray] = None,
        num_negatives: Optional[int] = None,
        ks: Sequence[int] = (1, 3, 5, 10, 30),
    ) -> RecommendationResult:
        """Leave-one-out ranking against ``num_negatives`` unobserved items."""
        if num_negatives is None:
            num_negatives = self.base_config.eval_negatives
        if features is None and validate_variant(variant) != "base":
            features = self.item_features(variant)
        rng = np.random.default_rng(self.base_config.seed + 1)
        ranks = []
        for user_id, holdout in self.heldout.items():
            negatives = self._sample_unobserved(user_id, num_negatives, rng)
            candidates = np.concatenate([[holdout.item_id], negatives])
            users = np.full(len(candidates), user_id, dtype=np.int64)
            service = None if features is None else features[candidates]
            scores = model.predict(users, candidates, service)
            ranks.append(rank_of_positive(scores, positive_index=0))
        return RecommendationResult(
            variant=variant, metrics=ranking_metrics(ranks, ks)
        )

    def run_all_variants(
        self, variants: Sequence[str] = ("base", "pkgm-t", "pkgm-r", "pkgm-all")
    ) -> List[RecommendationResult]:
        """Reproduce the full Table VIII."""
        return [self.run(v) for v in variants]

    # ------------------------------------------------------------------
    def _with_negatives(
        self,
        users: np.ndarray,
        items: np.ndarray,
        ratio: int,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Positives + ``ratio`` sampled unobserved negatives per positive."""
        neg_users = np.repeat(users, ratio)
        neg_items = np.empty(len(neg_users), dtype=np.int64)
        cursor = 0
        for user in users:
            observed = self._observed[int(user)]
            for _ in range(ratio):
                while True:
                    candidate = int(rng.integers(self.interactions.num_items))
                    if candidate not in observed:
                        neg_items[cursor] = candidate
                        cursor += 1
                        break
        all_users = np.concatenate([users, neg_users])
        all_items = np.concatenate([items, neg_items])
        labels = np.concatenate(
            [np.ones(len(users)), np.zeros(len(neg_users))]
        )
        return all_users, all_items, labels

    def _sample_unobserved(
        self, user_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        observed = self._observed[user_id]
        available = self.interactions.num_items - len(observed)
        if available < count:
            raise ValueError(
                f"user {user_id} has too few unobserved items "
                f"({available}) to sample {count} negatives"
            )
        negatives: Set[int] = set()
        while len(negatives) < count:
            candidate = int(rng.integers(self.interactions.num_items))
            if candidate not in observed:
                negatives.add(candidate)
        return np.asarray(sorted(negatives), dtype=np.int64)
