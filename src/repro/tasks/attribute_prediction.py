"""Item attribute prediction — the paper's fourth named application.

The introduction lists "item attributes prediction" among the
knowledge-enhanced tasks the product KG serves, and the conclusion
leaves "apply PKGM to more downstream tasks" as future work.  This
module implements it as an extension experiment:

* hold out every ``(item, relation, value)`` triple of one target
  relation for a test set of items;
* predict the missing value, either with the **majority** baseline
  (the most common value of that relation in the item's category) or
  with **PKGM**: decode ``S_T(item, relation)`` to the nearest value
  entity.

PKGM needs no task-specific training — the pre-trained service answers
directly, which is exactly the "uniform knowledge service" pitch.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PKGM
from ..data import Catalog
from ..kg import TripleStore, holdout_incompleteness


@dataclass(frozen=True)
class AttributePredictionResult:
    """Accuracy of one predictor on held-out attribute values."""

    method: str
    relation: str
    hit1: float
    hit3: float
    num_cases: int

    def as_row(self) -> str:
        return (
            f"{self.method} | {self.relation} | {100 * self.hit1:.2f} | "
            f"{100 * self.hit3:.2f} | n={self.num_cases}"
        )


class AttributePredictionTask:
    """Predict held-out attribute values for items.

    Parameters
    ----------
    catalog:
        The full catalog (ground truth source).
    relation_label:
        The attribute to predict (e.g. ``"colorIs"``).
    holdout_fraction:
        Share of that relation's triples moved to the test set.
    seed:
        Hold-out sampling seed.
    """

    def __init__(
        self,
        catalog: Catalog,
        relation_label: str,
        holdout_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        if relation_label not in catalog.relations:
            raise KeyError(f"unknown relation {relation_label!r}")
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        self.catalog = catalog
        self.relation_label = relation_label
        self.relation_id = catalog.relations.id_of(relation_label)
        rng = np.random.default_rng(seed)

        target = [
            triple
            for triple in catalog.store
            if triple.relation == self.relation_id
        ]
        if len(target) < 4:
            raise ValueError(
                f"relation {relation_label!r} has too few triples to hold out"
            )
        order = rng.permutation(len(target))
        n_test = max(1, int(round(len(target) * holdout_fraction)))
        test_triples = [target[i] for i in order[:n_test]]
        test_set = set(test_triples)

        self.observed = TripleStore(
            (t.head, t.relation, t.tail)
            for t in catalog.store
            if t not in test_set
        )
        self.test_cases: List[Tuple[int, int]] = [
            (t.head, t.tail) for t in test_triples
        ]
        # Candidate answers: every value entity the relation ever takes.
        self.candidate_values = np.asarray(
            sorted({t.tail for t in target}), dtype=np.int64
        )

    # ------------------------------------------------------------------
    def majority_baseline(self) -> AttributePredictionResult:
        """Predict each category's most frequent observed value."""
        per_category: Dict[int, Counter] = defaultdict(Counter)
        for triple in self.observed.triples_with_relation(self.relation_id):
            category = self.catalog.category_of_entity(triple.head)
            per_category[category][triple.tail] += 1
        global_counts = Counter()
        for counts in per_category.values():
            global_counts.update(counts)
        global_ranked = [v for v, _ in global_counts.most_common()]

        hits1 = hits3 = 0
        for head, true_value in self.test_cases:
            category = self.catalog.category_of_entity(head)
            ranked = [v for v, _ in per_category[category].most_common()]
            ranked = ranked + [v for v in global_ranked if v not in ranked]
            if ranked and ranked[0] == true_value:
                hits1 += 1
            if true_value in ranked[:3]:
                hits3 += 1
        n = len(self.test_cases)
        return AttributePredictionResult(
            method="majority",
            relation=self.relation_label,
            hit1=hits1 / n,
            hit3=hits3 / n,
            num_cases=n,
        )

    def pkgm_prediction(self, model: PKGM) -> AttributePredictionResult:
        """Decode ``S_T(item, relation)`` to the nearest candidate value."""
        heads = np.asarray([h for h, _ in self.test_cases], dtype=np.int64)
        relations = np.full(len(heads), self.relation_id, dtype=np.int64)
        service = model.service_triple(heads, relations)
        top = model.nearest_entities(
            service, k=3, candidate_ids=self.candidate_values
        )
        hits1 = hits3 = 0
        for i, (_, true_value) in enumerate(self.test_cases):
            if top[i][0] == true_value:
                hits1 += 1
            if true_value in top[i]:
                hits3 += 1
        n = len(self.test_cases)
        return AttributePredictionResult(
            method="pkgm",
            relation=self.relation_label,
            hit1=hits1 / n,
            hit3=hits3 / n,
            num_cases=n,
        )
