"""Product alignment task (paper §III-C, Tables VI–VII).

Fine-tunes the mini-BERT pair classifier on labelled title pairs per
category, in the same four variants.  Two evaluations:

* accuracy on the classification split (Table VII);
* Hit@{1,3,10} on the ranking split (Table VI): each aligned pair is
  scored against its 99 corrupted candidates and the true pair's rank
  among the 100 is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PKGMServer
from ..data import AlignmentDataset, AlignmentPair, RankingCase
from ..eval import accuracy, hits_at_k, rank_of_positive
from ..nn import Adam
from ..nn import functional as F
from ..text import (
    MiniBert,
    MiniBertConfig,
    PairClassifier,
    WordTokenizer,
    pair_service_payload,
    pair_service_segment_ids,
    validate_variant,
)
from .common import FineTuneConfig, minibatches


@dataclass(frozen=True)
class AlignmentResult:
    """One (method, dataset) block of Tables VI and VII."""

    variant: str
    category_name: str
    accuracy: float
    hits: Dict[int, float]

    def as_hit_row(self) -> str:
        hit_cols = " | ".join(f"{100 * self.hits[k]:.2f}" for k in sorted(self.hits))
        return f"{self.variant} | {self.category_name} | {hit_cols}"

    def as_accuracy_cell(self) -> str:
        return f"{100 * self.accuracy:.2f}"


class ProductAlignmentTask:
    """Runs alignment fine-tuning and both evaluations for one category."""

    def __init__(
        self,
        dataset: AlignmentDataset,
        tokenizer: WordTokenizer,
        encoder_config: MiniBertConfig,
        server: Optional[PKGMServer] = None,
        pretrained_state: Optional[dict] = None,
        config: Optional[FineTuneConfig] = None,
    ) -> None:
        self.dataset = dataset
        self.tokenizer = tokenizer
        self.encoder_config = encoder_config
        self.server = server
        self.pretrained_state = pretrained_state
        self.config = config if config is not None else FineTuneConfig()

    # ------------------------------------------------------------------
    def run(self, variant: str, eval_split: str = "test") -> AlignmentResult:
        """Fine-tune one variant; evaluate accuracy and ranking Hit@k."""
        variant = validate_variant(variant)
        if variant != "base" and self.server is None:
            raise ValueError(f"variant {variant!r} requires a PKGM server")
        rng = np.random.default_rng(self.config.seed)

        encoder = MiniBert(self.encoder_config, rng=rng)
        if self.pretrained_state is not None:
            encoder.load_state_dict(self.pretrained_state)
        model = PairClassifier(encoder, rng=rng)

        ids, mask, seg, labels, service, service_seg = self._encode_pairs(
            self.dataset.train, variant
        )
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        n = len(labels)
        for _ in range(self.config.epochs):
            for index in minibatches(n, self.config.batch_size, rng):
                optimizer.zero_grad()
                logits = model(
                    ids[index],
                    attention_mask=mask[index],
                    segment_ids=seg[index],
                    service_vectors=None if service is None else service[index],
                    service_segment_ids=None if service_seg is None else service_seg[index],
                )
                loss = F.binary_cross_entropy_with_logits(logits, labels[index])
                loss.backward()
                optimizer.step()

        return self.evaluate(model, variant, eval_split)

    def evaluate(
        self, model: PairClassifier, variant: str, eval_split: str = "test"
    ) -> AlignmentResult:
        """Accuracy on the -C split and Hit@k on the -R split."""
        pairs, cases = self._splits(eval_split)
        acc = self._classification_accuracy(model, pairs, variant)
        ranks = [self._rank_case(model, case, variant) for case in cases]
        return AlignmentResult(
            variant=variant,
            category_name=self.dataset.category_name,
            accuracy=acc,
            hits={k: hits_at_k(ranks, k) for k in (1, 3, 10)},
        )

    def run_all_variants(
        self, variants: Sequence[str] = ("base", "pkgm-t", "pkgm-r", "pkgm-all")
    ) -> List[AlignmentResult]:
        """One category's block of Tables VI-VII."""
        return [self.run(v) for v in variants]

    # ------------------------------------------------------------------
    def _classification_accuracy(
        self, model: PairClassifier, pairs: Sequence[AlignmentPair], variant: str
    ) -> float:
        ids, mask, seg, labels, service, service_seg = self._encode_pairs(pairs, variant)
        probs = []
        for start in range(0, len(labels), self.config.batch_size):
            chunk = slice(start, start + self.config.batch_size)
            probs.append(
                model.predict_proba(
                    ids[chunk],
                    attention_mask=mask[chunk],
                    segment_ids=seg[chunk],
                    service_vectors=None if service is None else service[chunk],
                    service_segment_ids=None if service_seg is None else service_seg[chunk],
                )
            )
        predictions = (np.concatenate(probs) >= 0.5).astype(np.int64)
        return accuracy(predictions, labels.astype(np.int64))

    def _rank_case(self, model: PairClassifier, case: RankingCase, variant: str) -> int:
        candidates = [case.positive] + list(case.candidates)
        ids, mask, seg, _, service, service_seg = self._encode_pairs(candidates, variant)
        scores = []
        for start in range(0, len(candidates), self.config.batch_size):
            chunk = slice(start, start + self.config.batch_size)
            scores.append(
                model.predict_logits(
                    ids[chunk],
                    attention_mask=mask[chunk],
                    segment_ids=seg[chunk],
                    service_vectors=None if service is None else service[chunk],
                    service_segment_ids=None if service_seg is None else service_seg[chunk],
                )
            )
        return rank_of_positive(np.concatenate(scores), positive_index=0)

    def _splits(self, name: str) -> Tuple[List[AlignmentPair], List[RankingCase]]:
        if name == "test":
            return self.dataset.test_c, self.dataset.test_r
        if name == "dev":
            return self.dataset.dev_c, self.dataset.dev_r
        if name == "all":
            # Combined held-out evaluation: at synthetic scale the per-split
            # case counts are small, so benches pool test + dev to cut
            # variance (both are untouched by training).
            return (
                self.dataset.test_c + self.dataset.dev_c,
                self.dataset.test_r + self.dataset.dev_r,
            )
        raise ValueError(f"unknown split {name!r}")

    def _encode_pairs(
        self, pairs: Sequence[AlignmentPair], variant: str
    ) -> Tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        encoded = self.tokenizer.encode_pair_batch(
            [(p.title_a, p.title_b) for p in pairs], self.config.max_length
        )
        ids, mask, seg = encoded
        labels = np.asarray([p.label for p in pairs], dtype=np.float64)
        if validate_variant(variant) == "base":
            return ids, mask, seg, labels, None, None
        service = pair_service_payload(
            self.server,
            [p.entity_a for p in pairs],
            [p.entity_b for p in pairs],
            variant,
        )
        service_seg = pair_service_segment_ids(len(pairs), variant, self.server.k)
        return ids, mask, seg, labels, service, service_seg
