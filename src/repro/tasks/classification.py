"""Item classification task (paper §III-B, Table IV).

Fine-tunes the mini-BERT classifier on item titles with category
labels, in four variants: ``base``, ``pkgm-t``, ``pkgm-r``,
``pkgm-all``.  Reports accuracy (AC) and Hit@{1,3,10} computed from the
rank of the correct label — exactly Table IV's columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PKGMServer
from ..data import ClassificationDataset, ClassificationExample
from ..eval import accuracy, hits_at_k, label_ranks
from ..nn import Adam
from ..nn import functional as F
from ..text import (
    MiniBert,
    MiniBertConfig,
    TextClassifier,
    WordTokenizer,
    service_payload,
    validate_variant,
)
from .common import FineTuneConfig, minibatches


@dataclass(frozen=True)
class ClassificationResult:
    """One row of Table IV."""

    variant: str
    accuracy: float
    hits: Dict[int, float]

    def as_table_row(self) -> str:
        hit_cols = " | ".join(
            f"{100 * self.hits[k]:.2f}" for k in sorted(self.hits)
        )
        return f"{self.variant} | {hit_cols} | {100 * self.accuracy:.2f}"


class ItemClassificationTask:
    """Runs one classification fine-tune + evaluation per variant.

    Parameters
    ----------
    dataset:
        Titles + labels (from :func:`repro.data.build_classification_dataset`).
    tokenizer:
        Closed-vocabulary tokenizer over the title corpus.
    encoder_config:
        Mini-BERT config; ``service_dim`` must equal the PKGM dimension
        when any PKGM variant will run.
    server:
        Trained :class:`repro.core.PKGMServer` (None restricts to base).
    pretrained_state:
        Optional MLM-pre-trained encoder weights (the "pre-trained
        language model" half of the paper's recipe).
    config:
        Fine-tuning hyperparameters.
    """

    def __init__(
        self,
        dataset: ClassificationDataset,
        tokenizer: WordTokenizer,
        encoder_config: MiniBertConfig,
        server: Optional[PKGMServer] = None,
        pretrained_state: Optional[dict] = None,
        config: Optional[FineTuneConfig] = None,
    ) -> None:
        self.dataset = dataset
        self.tokenizer = tokenizer
        self.encoder_config = encoder_config
        self.server = server
        self.pretrained_state = pretrained_state
        self.config = config if config is not None else FineTuneConfig()

    # ------------------------------------------------------------------
    def run(self, variant: str, eval_split: str = "dev") -> ClassificationResult:
        """Fine-tune one variant and evaluate it."""
        variant = validate_variant(variant)
        if variant != "base" and self.server is None:
            raise ValueError(f"variant {variant!r} requires a PKGM server")
        rng = np.random.default_rng(self.config.seed)

        encoder = MiniBert(self.encoder_config, rng=rng)
        if self.pretrained_state is not None:
            encoder.load_state_dict(self.pretrained_state)
        model = TextClassifier(encoder, self.dataset.num_categories, rng=rng)

        ids, mask, seg, labels, service = self._encode(self.dataset.train, variant)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        n = len(labels)
        for _ in range(self.config.epochs):
            for index in minibatches(n, self.config.batch_size, rng):
                optimizer.zero_grad()
                logits = model(
                    ids[index],
                    attention_mask=mask[index],
                    segment_ids=seg[index],
                    service_vectors=None if service is None else service[index],
                )
                loss = F.cross_entropy(logits, labels[index])
                loss.backward()
                optimizer.step()

        return self.evaluate(model, variant, eval_split)

    def evaluate(
        self, model: TextClassifier, variant: str, eval_split: str = "dev"
    ) -> ClassificationResult:
        """Accuracy + Hit@{1,3,10} on the requested split."""
        examples = self._split(eval_split)
        ids, mask, seg, labels, service = self._encode(examples, variant)
        model.eval()
        all_logits = []
        for start in range(0, len(labels), self.config.batch_size):
            chunk = slice(start, start + self.config.batch_size)
            logits = model(
                ids[chunk],
                attention_mask=mask[chunk],
                segment_ids=seg[chunk],
                service_vectors=None if service is None else service[chunk],
            )
            all_logits.append(logits.data)
        model.train()
        logits = np.concatenate(all_logits, axis=0)
        ranks = label_ranks(logits, labels)
        return ClassificationResult(
            variant=variant,
            accuracy=accuracy(logits.argmax(axis=1), labels),
            hits={k: hits_at_k(ranks, k) for k in (1, 3, 10)},
        )

    def run_all_variants(
        self, variants: Sequence[str] = ("base", "pkgm-t", "pkgm-r", "pkgm-all")
    ) -> List[ClassificationResult]:
        """Reproduce the full Table IV."""
        return [self.run(v) for v in variants]

    # ------------------------------------------------------------------
    def _split(self, name: str) -> List[ClassificationExample]:
        splits = {
            "train": self.dataset.train,
            "test": self.dataset.test,
            "dev": self.dataset.dev,
        }
        if name not in splits:
            raise ValueError(f"unknown split {name!r}")
        return splits[name]

    def _encode(
        self, examples: Sequence[ClassificationExample], variant: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        titles = [e.title for e in examples]
        ids, mask, seg = self.tokenizer.encode_batch(titles, self.config.max_length)
        labels = np.asarray([e.label for e in examples], dtype=np.int64)
        if validate_variant(variant) == "base":
            return ids, mask, seg, labels, None
        entities = [e.entity_id for e in examples]
        service = service_payload(self.server, entities, variant)
        return ids, mask, seg, labels, service
