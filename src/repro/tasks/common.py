"""Shared fine-tuning machinery for the downstream tasks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FineTuneConfig:
    """Fine-tuning knobs common to the text tasks.

    Paper values: 3 epochs, batch 32, lr 2e-5 on BERT-base.  The mini
    encoder is far smaller, so defaults use a proportionally larger lr
    and more epochs.
    """

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    max_length: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.max_length < 3:
            raise ValueError("max_length must be >= 3")


def minibatches(
    n: int, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield shuffled index minibatches covering range(n) once."""
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]
