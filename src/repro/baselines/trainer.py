"""Shared margin-loss trainer for the KGE baselines.

All scorers obey the energy convention, so one trainer fits every model
with the same loop used for PKGM (edge sampling, uniform negatives,
Adam, per-batch constraint hook).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..kg import EdgeSampler, TripleStore
from ..nn import Adam, sanitizer
from ..nn import functional as F
from .scorers import KGEModel


@dataclass(frozen=True)
class KGETrainerConfig:
    """Optimization knobs shared by every baseline."""

    epochs: int = 40
    batch_size: int = 256
    learning_rate: float = 1e-2
    margin: float = 2.0
    negatives_per_edge: int = 1
    corrupt_relation_prob: float = 0.0
    numeric_guard: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0 or self.margin <= 0:
            raise ValueError("learning_rate and margin must be positive")


class KGETrainer:
    """Fits any :class:`KGEModel` with margin ranking loss."""

    def __init__(self, model: KGEModel, config: Optional[KGETrainerConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else KGETrainerConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

    def train(self, store: TripleStore) -> List[float]:
        """Train on ``store``; returns per-epoch mean losses.

        Arms the NaN/Inf sanitizer for the run when
        ``config.numeric_guard`` or ``REPRO_NUMERIC_GUARD`` is set.
        """
        with sanitizer.guard(self.config.numeric_guard or sanitizer.env_enabled()):
            return self._train(store)

    def _train(self, store: TripleStore) -> List[float]:
        rng = np.random.default_rng(self.config.seed)
        sampler = EdgeSampler.with_uniform(
            store,
            batch_size=self.config.batch_size,
            num_entities=self.model.num_entities,
            num_relations=self.model.num_relations,
            rng=rng,
            negatives_per_edge=self.config.negatives_per_edge,
            corrupt_relation_prob=self.config.corrupt_relation_prob,
        )
        losses: List[float] = []
        for _ in range(self.config.epochs):
            epoch_loss, count = 0.0, 0
            for batch in sampler.epoch():
                self.optimizer.zero_grad()
                pos = self._score(batch.positives)
                total = None
                for k in range(batch.negatives.shape[0]):
                    neg = self._score(batch.negatives[k])
                    term = F.margin_ranking_loss(
                        pos, neg, margin=self.config.margin, reduction="sum"
                    )
                    total = term if total is None else total + term
                total.backward()
                self.optimizer.step()
                self.model.post_batch()
                epoch_loss += total.item()
                count += len(batch)
            losses.append(epoch_loss / max(count, 1))
        return losses

    def _score(self, triples: np.ndarray):
        return self.model.score(triples[:, 0], triples[:, 1], triples[:, 2])
