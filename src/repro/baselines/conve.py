"""ConvE (Dettmers et al. 2018) — the cited convolutional KGE baseline.

ConvE reshapes the head and relation embeddings into a 2-D "image",
stacks them, applies 3x3 convolutions, and projects back to embedding
space; the score is the dot product with the tail embedding.  The
convolution is built from existing autograd ops (pad via concat, one
slice + matmul per kernel offset), so gradients come for free and are
covered by the shared gradcheck tests.

Energy convention as everywhere in :mod:`repro.baselines`: lower is
more plausible, so the dot-product similarity is negated.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Embedding, Linear, Module, Parameter, Tensor, concat
from ..nn import init
from .scorers import KGEModel


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two axes of a (B, C, H, W) tensor."""
    if padding < 0:
        raise ValueError("padding must be >= 0")
    if padding == 0:
        return x
    b, c, h, w = x.shape
    zeros_h = Tensor(np.zeros((b, c, padding, w)))
    x = concat([zeros_h, x, zeros_h], axis=2)
    zeros_w = Tensor(np.zeros((b, c, h + 2 * padding, padding)))
    return concat([zeros_w, x, zeros_w], axis=3)


def conv2d_3x3(x: Tensor, weight: Tensor, padding: int = 1) -> Tensor:
    """3x3 convolution as nine shifted matmuls.

    ``x`` is (B, C, H, W); ``weight`` is (F, C, 3, 3).  Output is
    (B, F, H_out, W_out) with ``H_out = H + 2*padding - 2``.
    """
    b = x.shape[0]
    f, c = weight.shape[0], weight.shape[1]
    x = pad2d(x, padding)
    _, _, hp, wp = x.shape
    h_out, w_out = hp - 2, wp - 2
    if h_out < 1 or w_out < 1:
        raise ValueError("input too small for a 3x3 kernel")

    out = None
    for di in range(3):
        for dj in range(3):
            patch = x[:, :, di : di + h_out, dj : dj + w_out]
            # (B, C, H_out*W_out) -> (B, H_out*W_out, C)
            flat = patch.reshape(b, c, h_out * w_out).swapaxes(1, 2)
            w_offset = weight[:, :, di, dj]  # (F, C)
            term = flat @ w_offset.swapaxes(0, 1)  # (B, HW, F)
            out = term if out is None else out + term
    return out.swapaxes(1, 2).reshape(b, f, h_out, w_out)


class ConvE(KGEModel):
    """Convolutional 2-D knowledge graph embeddings.

    Parameters
    ----------
    dim:
        Entity embedding size; must factor as ``image_shape[0] *
        image_shape[1]``.
    num_filters:
        Convolution output channels.
    image_shape:
        2-D reshape of an embedding (defaults to the most square
        factorization of ``dim``).
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        num_filters: int = 8,
        image_shape: Optional[Tuple[int, int]] = None,
    ) -> None:
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        if image_shape is None:
            image_shape = _square_factorization(dim)
        if image_shape[0] * image_shape[1] != dim:
            raise ValueError(
                f"image_shape {image_shape} does not factor dim {dim}"
            )
        if num_filters < 1:
            raise ValueError("num_filters must be >= 1")
        self.image_shape = image_shape
        self.num_filters = num_filters
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)
        self.filters = Parameter(init.xavier_uniform(rng, (num_filters, 1, 3, 3)))
        conv_h = 2 * image_shape[0]  # stacked head over relation
        conv_w = image_shape[1]
        self.projection = Linear(num_filters * conv_h * conv_w, dim, rng=rng)
        self.bias = Parameter(init.zeros((num_entities,)))

    def _hidden(self, heads: np.ndarray, relations: np.ndarray) -> Tensor:
        """The convolved, projected (batch, dim) query representation."""
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        batch = heads.shape[0]
        h_img = self.entities(heads).reshape(batch, 1, *self.image_shape)
        r_img = self.relations(relations).reshape(batch, 1, *self.image_shape)
        stacked = concat([h_img, r_img], axis=2)  # (B, 1, 2H, W)
        conv = conv2d_3x3(stacked, self.filters, padding=1).relu()
        flat = conv.reshape(batch, -1)
        return self.projection(flat).relu()

    def score(self, heads, relations, tails):
        hidden = self._hidden(heads, relations)
        t = self.entities(np.asarray(tails))
        similarity = (hidden * t).sum(axis=-1) + self.bias[np.asarray(tails)]
        return -similarity

    def score_all_tails(self, head, relation):
        hidden = self._hidden(np.asarray([head]), np.asarray([relation])).data[0]
        return -(self.entities.weight.data @ hidden + self.bias.data)

    def score_all_heads(self, relation, tail):
        # ConvE is asymmetric; scoring all heads requires one query per
        # candidate head.  Chunked for memory.
        energies = np.empty(self.num_entities)
        tails = np.full(256, tail)
        for start in range(0, self.num_entities, 256):
            stop = min(start + 256, self.num_entities)
            heads = np.arange(start, stop)
            relations = np.full(len(heads), relation)
            energies[start:stop] = self.score(heads, relations, tails[: len(heads)]).data
        return energies


def _square_factorization(dim: int) -> Tuple[int, int]:
    """Most square (h, w) with h * w == dim."""
    best = (1, dim)
    for h in range(1, int(np.sqrt(dim)) + 1):
        if dim % h == 0:
            best = (h, dim // h)
    return best
