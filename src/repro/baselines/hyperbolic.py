"""Hyperbolic KG embeddings — MuRP (Balazevic et al. 2019).

The paper's related work cites MuRP/ATTH as the hyperbolic branch of
the translational family.  MuRP embeds entities in the Poincaré ball,
applies a diagonal relation matrix in tangent space, a Möbius
translation, and scores by squared hyperbolic distance plus entity
biases:

    h' = exp_0(R_r ∘ log_0(h)),   t' = t ⊕ r
    s(h, r, t) = -d_B(h', t')² + b_h + b_t

All operations are composed from existing autograd ops (tanh, log,
norms); artanh is built from log.  Entities are re-projected into the
ball after every optimizer step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, Module, Parameter, Tensor, no_grad
from ..nn import functional as F
from ..nn import init
from .scorers import KGEModel

_BALL_EPS = 1e-5
_NORM_EPS = 1e-12


def artanh(x: Tensor) -> Tensor:
    """Inverse hyperbolic tangent via ``0.5 log((1+x)/(1-x))``.

    Inputs are clipped into (-1+eps, 1-eps) for numeric safety.
    """
    x = x.clip(-1.0 + _BALL_EPS, 1.0 - _BALL_EPS)
    return ((1.0 + x) / (1.0 - x)).log() * 0.5


def mobius_add(x: Tensor, y: Tensor) -> Tensor:
    """Möbius addition on the unit Poincaré ball (curvature c = 1)."""
    xy = (x * y).sum(axis=-1, keepdims=True)
    xx = (x * x).sum(axis=-1, keepdims=True)
    yy = (y * y).sum(axis=-1, keepdims=True)
    numerator = x * (1.0 + 2.0 * xy + yy) + y * (1.0 - xx)
    denominator = 1.0 + 2.0 * xy + xx * yy
    return numerator / (denominator + _NORM_EPS)


def expmap0(v: Tensor) -> Tensor:
    """Exponential map at the origin: tangent space -> ball."""
    norm = F.l2_norm(v, axis=-1, eps=_NORM_EPS).reshape(*v.shape[:-1], 1)
    return v * (norm.tanh() / (norm + _NORM_EPS))


def logmap0(y: Tensor) -> Tensor:
    """Logarithmic map at the origin: ball -> tangent space."""
    norm = F.l2_norm(y, axis=-1, eps=_NORM_EPS).reshape(*y.shape[:-1], 1)
    return y * (artanh(norm) / (norm + _NORM_EPS))


def poincare_distance(x: Tensor, y: Tensor) -> Tensor:
    """Hyperbolic distance ``2 artanh(||(-x) ⊕ y||)``."""
    diff = mobius_add(-x, y)
    return artanh(F.l2_norm(diff, axis=-1, eps=_NORM_EPS)) * 2.0


def project_to_ball(array: np.ndarray, max_norm: float = 1.0 - _BALL_EPS) -> np.ndarray:
    """Scale rows with norm >= 1 back inside the ball (in place safe)."""
    norms = np.linalg.norm(array, axis=-1, keepdims=True)
    scale = np.minimum(1.0, max_norm / np.maximum(norms, _NORM_EPS))
    return array * scale


class MuRP(KGEModel):
    """Multi-relational Poincaré embeddings.

    Follows the energy convention of :mod:`repro.baselines`: the MuRP
    similarity (−d² + b_h + b_t) is negated so lower = more plausible.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        init_scale: float = 1e-3,
    ) -> None:
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        # Small init keeps points near the origin where the ball is flat.
        self.entities = Embedding(
            num_entities,
            dim,
            rng=rng,
            init_fn=lambda r, s: init.normal(r, s, std=init_scale),
        )
        self.relation_translations = Embedding(
            num_relations,
            dim,
            rng=rng,
            init_fn=lambda r, s: init.normal(r, s, std=init_scale),
        )
        self.relation_scales = Embedding(
            num_relations, dim, rng=rng, init_fn=lambda r, s: init.ones(s)
        )
        self.entity_bias = Parameter(init.zeros((num_entities,)))

    def _transform(self, heads: np.ndarray, relations: np.ndarray) -> Tensor:
        """``h' = exp_0(R_r ∘ log_0(h))``."""
        h = self.entities(heads)
        scales = self.relation_scales(relations)
        return expmap0(logmap0(h) * scales)

    def score(self, heads, relations, tails):
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        tails = np.asarray(tails)
        h_prime = self._transform(heads, relations)
        t = self.entities(tails)
        r = self.relation_translations(relations)
        t_prime = mobius_add(t, r)
        distance = poincare_distance(h_prime, t_prime)
        similarity = (
            -(distance**2) + self.entity_bias[heads] + self.entity_bias[tails]
        )
        return -similarity

    def score_all_tails(self, head, relation):
        heads = np.full(self.num_entities, head)
        relations = np.full(self.num_entities, relation)
        tails = np.arange(self.num_entities)
        return self.score(heads, relations, tails).data

    def score_all_heads(self, relation, tail):
        heads = np.arange(self.num_entities)
        relations = np.full(self.num_entities, relation)
        tails = np.full(self.num_entities, tail)
        return self.score(heads, relations, tails).data

    def post_batch(self):
        with no_grad():
            self.entities.weight.data = project_to_ball(self.entities.weight.data)
            self.relation_translations.weight.data = project_to_ball(
                self.relation_translations.weight.data
            )
