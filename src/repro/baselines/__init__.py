"""KGE baselines and link-prediction evaluation.

Implements the translational (TransE/TransH/TransR) and semantic
matching (DistMult/ComplEx/RESCAL) families cited in the paper's
related work, with a shared trainer and the standard filtered ranking
protocol — used to validate the KGE substrate and to ablate PKGM's
triple-scorer choice.
"""

from .conve import ConvE, conv2d_3x3, pad2d
from .hyperbolic import MuRP, artanh, expmap0, logmap0, mobius_add, poincare_distance, project_to_ball
from .link_prediction import (
    ANNLinkPredictionResult,
    LinkPredictionResult,
    evaluate_link_prediction,
    evaluate_link_prediction_ann,
)
from .scorers import (
    SCORERS,
    ComplEx,
    DistMult,
    KGEModel,
    RESCAL,
    TranSparse,
    TransD,
    TransE,
    TransH,
    TransR,
    make_scorer,
)
from .trainer import KGETrainer, KGETrainerConfig

# ConvE lives in its own module (it needs the conv machinery); register
# it in the factory alongside the classic scorers.
SCORERS["conve"] = ConvE
SCORERS["murp"] = MuRP

__all__ = [
    "ANNLinkPredictionResult",
    "ComplEx",
    "ConvE",
    "DistMult",
    "KGEModel",
    "KGETrainer",
    "KGETrainerConfig",
    "LinkPredictionResult",
    "MuRP",
    "RESCAL",
    "SCORERS",
    "TransD",
    "TransE",
    "TranSparse",
    "TransH",
    "TransR",
    "evaluate_link_prediction",
    "evaluate_link_prediction_ann",
    "conv2d_3x3",
    "make_scorer",
    "pad2d",
    "artanh",
    "expmap0",
    "logmap0",
    "mobius_add",
    "poincare_distance",
    "project_to_ball",
]
