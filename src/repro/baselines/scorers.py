"""Classic knowledge graph embedding scorers.

The paper picks TransE for PKGM's triple query module "for its
simplicity and effectiveness" and cites the translational family
(TransH/TransR/...) and the semantic-matching family
(RESCAL/DistMult/ComplEx) as alternatives.  We implement all of them on
the shared autograd engine so the ablation bench can swap the triple
scorer and validate the choice.

Convention: :meth:`KGEModel.score` returns an **energy** — lower is more
plausible — so every model trains with the same margin ranking loss and
evaluates with the same ranking code.  Semantic matching models negate
their similarity to fit the convention.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, Module, Parameter, Tensor, no_grad
from ..nn import functional as F
from ..nn import init


class KGEModel(Module):
    """Base class: autograd scoring + fast numpy full-ranking paths."""

    def __init__(self, num_entities: int, num_relations: int, dim: int) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if num_entities < 1 or num_relations < 1:
            raise ValueError("need at least one entity and one relation")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim

    def score(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        """Batched energy with autograd (training path)."""
        raise NotImplementedError

    def forward(self, heads, relations, tails):
        return self.score(heads, relations, tails)

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        """Energies of ``(head, relation, e)`` for every entity e (numpy)."""
        raise NotImplementedError

    def score_all_heads(self, relation: int, tail: int) -> np.ndarray:
        """Energies of ``(e, relation, tail)`` for every entity e (numpy)."""
        raise NotImplementedError

    def post_batch(self) -> None:
        """Constraint hook invoked after each optimizer step."""


class TransE(KGEModel):
    """Bordes et al. 2013: ``||h + r - t||_1`` (Eq. 1 of the paper)."""

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.transe_embedding)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.transe_embedding)

    def score(self, heads, relations, tails):
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return F.l1_norm(h + r - t, axis=-1)

    def score_all_tails(self, head, relation):
        query = self.entities.weight.data[head] + self.relations.weight.data[relation]
        return np.abs(query - self.entities.weight.data).sum(axis=1)

    def score_all_heads(self, relation, tail):
        query = self.entities.weight.data[tail] - self.relations.weight.data[relation]
        return np.abs(self.entities.weight.data - query).sum(axis=1)

    def post_batch(self):
        self.entities.renormalize(1.0)


class TransH(KGEModel):
    """Wang et al. 2014: translate on relation-specific hyperplanes."""

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.transe_embedding)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.transe_embedding)
        self.normals = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)

    def _project(self, e: Tensor, w: Tensor) -> Tensor:
        # e - (w . e) w with w unit-normalized.
        w = F.normalize(w, axis=-1)
        dot = (e * w).sum(axis=-1, keepdims=True)
        return e - dot * w

    def score(self, heads, relations, tails):
        h = self.entities(heads)
        t = self.entities(tails)
        r = self.relations(relations)
        w = self.normals(relations)
        return F.l1_norm(self._project(h, w) + r - self._project(t, w), axis=-1)

    def _project_np(self, e: np.ndarray, w: np.ndarray) -> np.ndarray:
        w = w / max(np.linalg.norm(w), 1e-12)
        return e - np.outer(e @ w, w) if e.ndim == 2 else e - (e @ w) * w

    def score_all_tails(self, head, relation):
        w = self.normals.weight.data[relation]
        h_proj = self._project_np(self.entities.weight.data[head], w)
        t_proj = self._project_np(self.entities.weight.data, w)
        query = h_proj + self.relations.weight.data[relation]
        return np.abs(query - t_proj).sum(axis=1)

    def score_all_heads(self, relation, tail):
        w = self.normals.weight.data[relation]
        t_proj = self._project_np(self.entities.weight.data[tail], w)
        h_proj = self._project_np(self.entities.weight.data, w)
        query = t_proj - self.relations.weight.data[relation]
        return np.abs(h_proj - query).sum(axis=1)

    def post_batch(self):
        self.entities.renormalize(1.0)


class TransR(KGEModel):
    """Lin et al. 2015: project entities into a relation space via M_r."""

    def __init__(self, num_entities, num_relations, dim, relation_dim=None, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.relation_dim = relation_dim if relation_dim is not None else dim
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.transe_embedding)
        self.relations = Embedding(
            num_relations, self.relation_dim, rng=rng, init_fn=init.transe_embedding
        )
        if self.relation_dim == dim:
            matrices = init.identity_stack(num_relations, dim, noise_std=0.01, rng=rng)
        else:
            matrices = init.xavier_uniform(
                rng, (num_relations, self.relation_dim, dim)
            )
        self.matrices = Parameter(matrices)

    def score(self, heads, relations, tails):
        heads, relations, tails = map(np.asarray, (heads, relations, tails))
        h = self.entities(heads)
        t = self.entities(tails)
        r = self.relations(relations)
        m = self.matrices.take_rows(relations)  # (B, dr, d)
        h_r = (m @ h.reshape(*heads.shape, self.dim, 1)).reshape(
            *heads.shape, self.relation_dim
        )
        t_r = (m @ t.reshape(*tails.shape, self.dim, 1)).reshape(
            *tails.shape, self.relation_dim
        )
        return F.l1_norm(h_r + r - t_r, axis=-1)

    def score_all_tails(self, head, relation):
        m = self.matrices.data[relation]
        h_r = m @ self.entities.weight.data[head]
        t_r = self.entities.weight.data @ m.T
        query = h_r + self.relations.weight.data[relation]
        return np.abs(query - t_r).sum(axis=1)

    def score_all_heads(self, relation, tail):
        m = self.matrices.data[relation]
        t_r = m @ self.entities.weight.data[tail]
        h_r = self.entities.weight.data @ m.T
        query = t_r - self.relations.weight.data[relation]
        return np.abs(h_r - query).sum(axis=1)

    def post_batch(self):
        self.entities.renormalize(1.0)


class DistMult(KGEModel):
    """Yang et al. 2015: energy ``-(h ∘ r) · t`` (diagonal bilinear)."""

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)

    def score(self, heads, relations, tails):
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return -(h * r * t).sum(axis=-1)

    def score_all_tails(self, head, relation):
        query = (
            self.entities.weight.data[head] * self.relations.weight.data[relation]
        )
        return -(self.entities.weight.data @ query)

    def score_all_heads(self, relation, tail):
        query = (
            self.entities.weight.data[tail] * self.relations.weight.data[relation]
        )
        return -(self.entities.weight.data @ query)


class ComplEx(KGEModel):
    """Trouillon et al. 2016: complex-valued bilinear scoring.

    Energy ``-Re(<h, r, conj(t)>)``; embeddings stored as (real, imag)
    pairs of width ``dim`` each.
    """

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities_re = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.entities_im = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.relations_re = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)
        self.relations_im = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)

    def score(self, heads, relations, tails):
        h_re, h_im = self.entities_re(heads), self.entities_im(heads)
        r_re, r_im = self.relations_re(relations), self.relations_im(relations)
        t_re, t_im = self.entities_re(tails), self.entities_im(tails)
        real = (
            (h_re * r_re * t_re).sum(axis=-1)
            + (h_im * r_re * t_im).sum(axis=-1)
            + (h_re * r_im * t_im).sum(axis=-1)
            - (h_im * r_im * t_re).sum(axis=-1)
        )
        return -real

    def _tables(self):
        return (
            self.entities_re.weight.data,
            self.entities_im.weight.data,
            self.relations_re.weight.data,
            self.relations_im.weight.data,
        )

    def score_all_tails(self, head, relation):
        e_re, e_im, r_re_t, r_im_t = self._tables()
        h_re, h_im = e_re[head], e_im[head]
        r_re, r_im = r_re_t[relation], r_im_t[relation]
        real = e_re @ (h_re * r_re - h_im * r_im) + e_im @ (h_im * r_re + h_re * r_im)
        return -real

    def score_all_heads(self, relation, tail):
        e_re, e_im, r_re_t, r_im_t = self._tables()
        t_re, t_im = e_re[tail], e_im[tail]
        r_re, r_im = r_re_t[relation], r_im_t[relation]
        real = e_re @ (r_re * t_re + r_im * t_im) + e_im @ (r_re * t_im - r_im * t_re)
        return -real


class RESCAL(KGEModel):
    """Nickel et al. 2011: full bilinear form ``-(h^T W_r t)``."""

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.matrices = Parameter(
            init.identity_stack(num_relations, dim, noise_std=0.05, rng=rng)
        )

    def score(self, heads, relations, tails):
        heads, relations, tails = map(np.asarray, (heads, relations, tails))
        h = self.entities(heads)
        t = self.entities(tails)
        w = self.matrices.take_rows(relations)  # (B, d, d)
        wt = (w @ t.reshape(*tails.shape, self.dim, 1)).reshape(
            *tails.shape, self.dim
        )
        return -(h * wt).sum(axis=-1)

    def score_all_tails(self, head, relation):
        query = self.entities.weight.data[head] @ self.matrices.data[relation]
        return -(self.entities.weight.data @ query)

    def score_all_heads(self, relation, tail):
        query = self.matrices.data[relation] @ self.entities.weight.data[tail]
        return -(self.entities.weight.data @ query)


class TransD(KGEModel):
    """Ji et al. 2015: dynamic mapping via projection vectors.

    Each entity and relation carries a projection vector; the effective
    per-pair mapping is ``M = r_p e_p^T + I``, giving
    ``e_perp = e + (e_p . e) r_p`` without materializing matrices.
    """

    def __init__(self, num_entities, num_relations, dim, rng=None):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.transe_embedding)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.transe_embedding)
        self.entity_proj = Embedding(num_entities, dim, rng=rng, init_fn=init.xavier_uniform)
        self.relation_proj = Embedding(num_relations, dim, rng=rng, init_fn=init.xavier_uniform)

    def _project(self, e: Tensor, e_p: Tensor, r_p: Tensor) -> Tensor:
        dot = (e_p * e).sum(axis=-1, keepdims=True)
        return e + dot * r_p

    def score(self, heads, relations, tails):
        h = self.entities(heads)
        t = self.entities(tails)
        r = self.relations(relations)
        h_p = self.entity_proj(heads)
        t_p = self.entity_proj(tails)
        r_p = self.relation_proj(relations)
        return F.l1_norm(
            self._project(h, h_p, r_p) + r - self._project(t, t_p, r_p), axis=-1
        )

    def _project_np(self, e, e_p, r_p):
        dot = (e_p * e).sum(axis=-1, keepdims=True) if e.ndim == 2 else e_p @ e
        return e + dot * r_p

    def score_all_tails(self, head, relation):
        r_p = self.relation_proj.weight.data[relation]
        h = self.entities.weight.data[head]
        h_proj = h + (self.entity_proj.weight.data[head] @ h) * r_p
        all_e = self.entities.weight.data
        all_proj = all_e + (
            (self.entity_proj.weight.data * all_e).sum(axis=1, keepdims=True) * r_p
        )
        query = h_proj + self.relations.weight.data[relation]
        return np.abs(query - all_proj).sum(axis=1)

    def score_all_heads(self, relation, tail):
        r_p = self.relation_proj.weight.data[relation]
        t = self.entities.weight.data[tail]
        t_proj = t + (self.entity_proj.weight.data[tail] @ t) * r_p
        all_e = self.entities.weight.data
        all_proj = all_e + (
            (self.entity_proj.weight.data * all_e).sum(axis=1, keepdims=True) * r_p
        )
        query = t_proj - self.relations.weight.data[relation]
        return np.abs(all_proj - query).sum(axis=1)

    def post_batch(self):
        self.entities.renormalize(1.0)


class TranSparse(KGEModel):
    """Ji et al. 2016: TransR with sparsity-masked projection matrices.

    Relations with fewer triples get sparser matrices.  The caller
    supplies per-relation densities via :meth:`set_densities` (the
    trainer derives them from relation frequencies); untouched entries
    are frozen at zero by masking.
    """

    def __init__(self, num_entities, num_relations, dim, rng=None, min_density=0.3):
        super().__init__(num_entities, num_relations, dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        if not 0.0 < min_density <= 1.0:
            raise ValueError("min_density must be in (0, 1]")
        self.min_density = min_density
        self.entities = Embedding(num_entities, dim, rng=rng, init_fn=init.transe_embedding)
        self.relations = Embedding(num_relations, dim, rng=rng, init_fn=init.transe_embedding)
        self.matrices = Parameter(
            init.identity_stack(num_relations, dim, noise_std=0.01, rng=rng)
        )
        # Default: fully dense masks (equivalent to TransR) until
        # set_densities installs sparsity.
        self._masks = np.ones((num_relations, dim, dim))
        self._mask_rng = rng

    def set_densities(self, relation_counts: dict) -> None:
        """Install sparsity masks: density proportional to triple count."""
        if not relation_counts:
            return
        max_count = max(relation_counts.values())
        for relation in range(self.num_relations):
            count = relation_counts.get(relation, 0)
            density = self.min_density + (1 - self.min_density) * (
                count / max_count
            )
            keep = self._mask_rng.random((self.dim, self.dim)) < density
            np.fill_diagonal(keep, True)  # keep the identity backbone
            self._masks[relation] = keep.astype(np.float64)
        with no_grad():
            self.matrices.data = self.matrices.data * self._masks

    def _masked_matrices(self, relations: np.ndarray) -> Tensor:
        gathered = self.matrices.take_rows(relations)
        return gathered * Tensor(self._masks[relations])

    def score(self, heads, relations, tails):
        heads, relations, tails = map(np.asarray, (heads, relations, tails))
        h = self.entities(heads)
        t = self.entities(tails)
        r = self.relations(relations)
        m = self._masked_matrices(relations)
        h_r = (m @ h.reshape(*heads.shape, self.dim, 1)).reshape(*heads.shape, self.dim)
        t_r = (m @ t.reshape(*tails.shape, self.dim, 1)).reshape(*tails.shape, self.dim)
        return F.l1_norm(h_r + r - t_r, axis=-1)

    def score_all_tails(self, head, relation):
        m = self.matrices.data[relation] * self._masks[relation]
        h_r = m @ self.entities.weight.data[head]
        t_r = self.entities.weight.data @ m.T
        query = h_r + self.relations.weight.data[relation]
        return np.abs(query - t_r).sum(axis=1)

    def score_all_heads(self, relation, tail):
        m = self.matrices.data[relation] * self._masks[relation]
        t_r = m @ self.entities.weight.data[tail]
        h_r = self.entities.weight.data @ m.T
        query = t_r - self.relations.weight.data[relation]
        return np.abs(h_r - query).sum(axis=1)

    def post_batch(self):
        self.entities.renormalize(1.0)
        # Re-apply masks: gradients may have filled zeroed entries.
        with no_grad():
            self.matrices.data = self.matrices.data * self._masks


SCORERS = {
    "transe": TransE,
    "transh": TransH,
    "transr": TransR,
    "transd": TransD,
    "transparse": TranSparse,
    "distmult": DistMult,
    "complex": ComplEx,
    "rescal": RESCAL,
}


def make_scorer(
    name: str,
    num_entities: int,
    num_relations: int,
    dim: int,
    rng: Optional[np.random.Generator] = None,
) -> KGEModel:
    """Factory over :data:`SCORERS`; raises ``KeyError`` on unknown names."""
    key = name.lower()
    if key not in SCORERS:
        raise KeyError(f"unknown scorer {name!r}; choose from {sorted(SCORERS)}")
    return SCORERS[key](num_entities, num_relations, dim, rng=rng)
