"""Filtered link-prediction evaluation (MRR / Hits@k / mean rank).

The standard KGE protocol: for every test triple, rank the true tail
against all entities (and the true head likewise), filtering out
candidates that form *other* known positives so the model is not
penalized for ranking a different true answer first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..kg import TripleStore
from .scorers import KGEModel


@dataclass(frozen=True)
class LinkPredictionResult:
    """Aggregate ranking metrics over a test set."""

    mrr: float
    mean_rank: float
    hits: Dict[int, float]
    num_queries: int

    def as_row(self, name: str) -> str:
        hits = " ".join(f"H@{k}={v:.3f}" for k, v in sorted(self.hits.items()))
        return f"{name}: MRR={self.mrr:.3f} MR={self.mean_rank:.1f} {hits}"


def evaluate_link_prediction(
    model: KGEModel,
    test: TripleStore,
    filter_stores: Sequence[TripleStore],
    ks: Iterable[int] = (1, 3, 10),
    both_sides: bool = True,
    max_queries: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> LinkPredictionResult:
    """Filtered ranking of test triples.

    Parameters
    ----------
    model:
        A trained scorer (energy convention: lower = better).
    test:
        Triples to rank.
    filter_stores:
        Stores whose triples are excluded from the candidate set
        (typically train + valid + test).
    ks:
        Hits@k cutoffs.
    both_sides:
        Rank both tail replacement and head replacement (the standard
        protocol); if False, tails only.
    max_queries:
        Optional subsample of the test triples (for quick benches).
    """
    triples = test.to_array()
    if len(triples) == 0:
        raise ValueError("empty test set")
    if max_queries is not None and max_queries < len(triples):
        rng = rng if rng is not None else np.random.default_rng(0)
        index = rng.choice(len(triples), size=max_queries, replace=False)
        triples = triples[index]

    ks = sorted(set(int(k) for k in ks))
    ranks = []
    for h, r, t in triples:
        ranks.append(_rank(model, int(h), int(r), int(t), filter_stores, side="tail"))
        if both_sides:
            ranks.append(
                _rank(model, int(h), int(r), int(t), filter_stores, side="head")
            )
    ranks = np.asarray(ranks, dtype=np.float64)
    return LinkPredictionResult(
        mrr=float((1.0 / ranks).mean()),
        mean_rank=float(ranks.mean()),
        hits={k: float((ranks <= k).mean()) for k in ks},
        num_queries=len(ranks),
    )


def _rank(
    model: KGEModel,
    head: int,
    relation: int,
    tail: int,
    filter_stores: Sequence[TripleStore],
    side: str,
) -> int:
    """Filtered rank of the true entity (1-based, optimistic-tie-free).

    Uses the "average" tie policy: rank = 1 + (# strictly better) +
    (# ties) / 2, which is robust to degenerate scorers.
    """
    if side == "tail":
        energies = model.score_all_tails(head, relation)
        true_id = tail
        known = _known_tails(filter_stores, head, relation)
    elif side == "head":
        energies = model.score_all_heads(relation, tail)
        true_id = head
        known = _known_heads(filter_stores, relation, tail)
    else:
        raise ValueError(f"side must be 'head' or 'tail', got {side!r}")

    true_energy = energies[true_id]
    mask = np.zeros(len(energies), dtype=bool)
    known.discard(true_id)
    if known:
        mask[list(known)] = True
    candidates = np.where(~mask)[0]
    cand_energies = energies[candidates]
    better = int((cand_energies < true_energy).sum())
    ties = int((cand_energies == true_energy).sum()) - 1  # exclude self
    return 1 + better + ties // 2


def _known_tails(stores: Sequence[TripleStore], head: int, relation: int) -> set:
    known: set = set()
    for store in stores:
        known.update(store.tails(head, relation))
    return known


def _known_heads(stores: Sequence[TripleStore], relation: int, tail: int) -> set:
    known: set = set()
    for store in stores:
        for triple in store.triples_with_tail(tail):
            if triple.relation == relation:
                known.add(triple.head)
    return known
