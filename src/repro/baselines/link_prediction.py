"""Filtered link-prediction evaluation (MRR / Hits@k / mean rank).

The standard KGE protocol: for every test triple, rank the true tail
against all entities (and the true head likewise), filtering out
candidates that form *other* known positives so the model is not
penalized for ranking a different true answer first.

:func:`evaluate_link_prediction_ann` is the retrieval-layer variant:
tail candidates come from a ``repro.index`` ANN search over the entity
table instead of a full scan, and the result reports recall@k against
the exact top-k plus the distance-computation counts both sides paid —
the at-scale trade the paper's 142.6M-item table forces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..index import INDEX_KINDS
from ..kg import TripleStore
from .scorers import KGEModel, TransE


@dataclass(frozen=True)
class LinkPredictionResult:
    """Aggregate ranking metrics over a test set."""

    mrr: float
    mean_rank: float
    hits: Dict[int, float]
    num_queries: int

    def as_row(self, name: str) -> str:
        hits = " ".join(f"H@{k}={v:.3f}" for k, v in sorted(self.hits.items()))
        return f"{name}: MRR={self.mrr:.3f} MR={self.mean_rank:.1f} {hits}"


def evaluate_link_prediction(
    model: KGEModel,
    test: TripleStore,
    filter_stores: Sequence[TripleStore],
    ks: Iterable[int] = (1, 3, 10),
    both_sides: bool = True,
    max_queries: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> LinkPredictionResult:
    """Filtered ranking of test triples.

    Parameters
    ----------
    model:
        A trained scorer (energy convention: lower = better).
    test:
        Triples to rank.
    filter_stores:
        Stores whose triples are excluded from the candidate set
        (typically train + valid + test).
    ks:
        Hits@k cutoffs.
    both_sides:
        Rank both tail replacement and head replacement (the standard
        protocol); if False, tails only.
    max_queries:
        Optional subsample of the test triples (for quick benches).
    """
    triples = test.to_array()
    if len(triples) == 0:
        raise ValueError("empty test set")
    if max_queries is not None and max_queries < len(triples):
        rng = rng if rng is not None else np.random.default_rng(0)
        index = rng.choice(len(triples), size=max_queries, replace=False)
        triples = triples[index]

    ks = sorted(set(int(k) for k in ks))
    ranks = []
    for h, r, t in triples:
        ranks.append(_rank(model, int(h), int(r), int(t), filter_stores, side="tail"))
        if both_sides:
            ranks.append(
                _rank(model, int(h), int(r), int(t), filter_stores, side="head")
            )
    ranks = np.asarray(ranks, dtype=np.float64)
    return LinkPredictionResult(
        mrr=float((1.0 / ranks).mean()),
        mean_rank=float(ranks.mean()),
        hits={k: float((ranks <= k).mean()) for k in ks},
        num_queries=len(ranks),
    )


@dataclass(frozen=True)
class ANNLinkPredictionResult:
    """ANN-vs-exact retrieval quality and cost for tail queries.

    ``recall_at_k`` is the mean fraction of the exact top-k tail
    candidates the ANN search recovered; the two distance-computation
    totals quantify what the approximation saved.
    """

    recall_at_k: float
    k: int
    num_queries: int
    exact_distance_computations: int
    ann_distance_computations: int

    @property
    def saving(self) -> float:
        """Exact-to-ANN distance-computation ratio (higher = cheaper)."""
        if self.ann_distance_computations == 0:
            return float("inf")
        return self.exact_distance_computations / self.ann_distance_computations

    def as_row(self, name: str) -> str:
        return (
            f"{name}: recall@{self.k}={self.recall_at_k:.3f} "
            f"exact_dc={self.exact_distance_computations} "
            f"ann_dc={self.ann_distance_computations} "
            f"saving={self.saving:.1f}x"
        )


def evaluate_link_prediction_ann(
    model: KGEModel,
    test: TripleStore,
    k: int = 10,
    index=None,
    index_kind: str = "ivf",
    index_params: Optional[Dict] = None,
    max_queries: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> ANNLinkPredictionResult:
    """ANN-accelerated tail retrieval, scored against the exact top-k.

    Only translational scorers qualify: TransE's tail energy
    ``||h + r - t||_1`` *is* an L1 distance from the query ``h + r``,
    so an L1 index over the entity table answers tail queries directly.
    For each test triple the exact top-k (full ``score_all_tails``
    scan, ``(energy, id)`` order) is compared with the index's top-k;
    recall@k is their mean overlap.

    ``index`` may be a pre-built L1 index over the entity table (ids =
    entity ids); otherwise one of ``index_kind`` is built here with
    ``index_params`` passed through to its constructor.
    """
    if not isinstance(model, TransE):
        raise TypeError(
            "ANN evaluation requires a TransE-family scorer whose tail "
            f"energy is an L1 distance; got {type(model).__name__}"
        )
    triples = test.to_array()
    if len(triples) == 0:
        raise ValueError("empty test set")
    if max_queries is not None and max_queries < len(triples):
        rng = rng if rng is not None else np.random.default_rng(0)
        index_sample = rng.choice(len(triples), size=max_queries, replace=False)
        triples = triples[index_sample]
    if k < 1:
        raise ValueError("k must be >= 1")

    entities = model.entities.weight.data
    relations = model.relations.weight.data
    if index is None:
        if index_kind not in INDEX_KINDS:
            raise ValueError(
                f"index_kind must be one of {sorted(INDEX_KINDS)}, "
                f"got {index_kind!r}"
            )
        index = INDEX_KINDS[index_kind](
            dim=model.dim, metric="l1", **(index_params or {})
        )
        if hasattr(index, "build"):
            index.build(entities)
        else:
            index.add(entities)

    queries = entities[triples[:, 0]] + relations[triples[:, 1]]
    entity_ids = np.arange(model.num_entities)
    exact_ids = np.empty((len(triples), k), dtype=np.int64)
    for row, (h, r, _) in enumerate(triples):
        energies = model.score_all_tails(int(h), int(r))
        exact_ids[row] = np.lexsort((entity_ids, energies))[:k]
    counter = index.metrics.counter("index.search.distance_computations")
    before = counter.value
    _, ann_ids = index.search(queries, k)
    ann_dc = counter.value - before
    overlap = [
        len(set(exact_ids[row]) & set(ann_ids[row])) / k
        for row in range(len(triples))
    ]
    return ANNLinkPredictionResult(
        recall_at_k=float(np.mean(overlap)),
        k=k,
        num_queries=len(triples),
        exact_distance_computations=len(triples) * model.num_entities,
        ann_distance_computations=int(ann_dc),
    )


def _rank(
    model: KGEModel,
    head: int,
    relation: int,
    tail: int,
    filter_stores: Sequence[TripleStore],
    side: str,
) -> int:
    """Filtered rank of the true entity (1-based, optimistic-tie-free).

    Uses the "average" tie policy: rank = 1 + (# strictly better) +
    (# ties) / 2, which is robust to degenerate scorers.
    """
    if side == "tail":
        energies = model.score_all_tails(head, relation)
        true_id = tail
        known = _known_tails(filter_stores, head, relation)
    elif side == "head":
        energies = model.score_all_heads(relation, tail)
        true_id = head
        known = _known_heads(filter_stores, relation, tail)
    else:
        raise ValueError(f"side must be 'head' or 'tail', got {side!r}")

    true_energy = energies[true_id]
    mask = np.zeros(len(energies), dtype=bool)
    known.discard(true_id)
    if known:
        mask[list(known)] = True
    candidates = np.where(~mask)[0]
    cand_energies = energies[candidates]
    better = int((cand_energies < true_energy).sum())
    ties = int((cand_energies == true_energy).sum()) - 1  # exclude self
    return 1 + better + ties // 2


def _known_tails(stores: Sequence[TripleStore], head: int, relation: int) -> set:
    known: set = set()
    for store in stores:
        known.update(store.tails(head, relation))
    return known


def _known_heads(stores: Sequence[TripleStore], relation: int, tail: int) -> set:
    known: set = set()
    for store in stores:
        for triple in store.triples_with_tail(tail):
            if triple.relation == relation:
                known.add(triple.head)
    return known
