"""Command-line interface for the reproduction.

Run the substrate pipeline and any of the paper's experiments without
writing Python:

.. code-block:: console

    python -m repro.cli stats                      # Table II/III/V/IX shapes
    python -m repro.cli pretrain --save server.npz # pre-train + export server
    python -m repro.cli classify                   # Table IV
    python -m repro.cli align                      # Tables VI-VII
    python -m repro.cli recommend                  # Table VIII
    python -m repro.cli complete                   # §II-D completion demo
    python -m repro.cli lint src tests             # static-analysis gate

Experiment commands accept ``--preset {smoke,default,bench}`` and
``--seed``; ``lint`` takes the :mod:`repro.lint` options.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, Optional

import numpy as np

from .config import ExperimentConfig, bench_config, default_config, smoke_config
from .core import pretrain_pkgm
from .data import (
    build_alignment_dataset,
    build_classification_dataset,
    generate_interactions,
)
from .kg import holdout_incompleteness, kg_statistics
from .lint import cli as lint_cli
from .pipeline import build_workbench
from .tasks import (
    ItemClassificationTask,
    ProductAlignmentTask,
    RecommendationTask,
)

PRESETS: Dict[str, Callable[[], ExperimentConfig]] = {
    "smoke": smoke_config,
    "default": default_config,
    "bench": bench_config,
}

VARIANTS = ("base", "pkgm-t", "pkgm-r", "pkgm-all")


def _load_config(args: argparse.Namespace) -> ExperimentConfig:
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config = dataclasses.replace(
            config,
            seed=args.seed,
            catalog=dataclasses.replace(config.catalog, seed=args.seed),
        )
    return config


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the dataset-statistics tables (II, III, V, IX shapes)."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    stats = kg_statistics(
        workbench.catalog.store, workbench.catalog.entities, workbench.catalog.relations
    )
    print("Table II  :", stats.as_table_row())
    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    print("Table III :", dataset.as_table_row("classification"))
    for index, category in enumerate((0, 1, 2)):
        alignment = build_alignment_dataset(
            workbench.catalog,
            workbench.titles,
            category_id=category,
            ranking_candidates=99,
            seed=11 + category,
        )
        print(f"Table V   : {alignment.as_table_row(f'category-{index + 1}')}")
    interactions = generate_interactions(workbench.catalog, config.interactions)
    print("Table IX  :", interactions.as_table_row())
    return 0


def cmd_pretrain(args: argparse.Namespace) -> int:
    """Pre-train PKGM and optionally export the deployable server."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=True)
    print(
        f"PKGM pre-trained: margin loss "
        f"{workbench.pkgm_history.epoch_losses[0]:.3f} -> "
        f"{workbench.pkgm_history.final_loss:.3f}"
    )
    if args.save:
        workbench.server.save(args.save)
        print(f"server snapshot written to {args.save}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Run the Table IV experiment."""
    config = _load_config(args)
    workbench = build_workbench(config, verbose=args.verbose)
    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    task = ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )
    print("Table IV: variant | Hit@1 | Hit@3 | Hit@10 | AC")
    for variant in VARIANTS:
        print(task.run(variant).as_table_row())
    return 0


def cmd_align(args: argparse.Namespace) -> int:
    """Run the Tables VI-VII experiment on one category."""
    config = _load_config(args)
    workbench = build_workbench(config, verbose=args.verbose)
    dataset = build_alignment_dataset(
        workbench.catalog,
        workbench.titles,
        category_id=args.category,
        ranking_candidates=99,
        train_samples_per_pair=4,
        seed=11 + args.category,
    )
    task = ProductAlignmentTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune_pair,
    )
    print("variant | category | Hit@1 | Hit@3 | Hit@10   /   accuracy")
    for variant in VARIANTS:
        result = task.run(variant)
        print(f"{result.as_hit_row()}   /   {result.as_accuracy_cell()}")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    """Run the Table VIII experiment."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    interactions = generate_interactions(workbench.catalog, config.interactions)
    entity_ids = [item.entity_id for item in workbench.catalog.items]
    task = RecommendationTask(
        interactions, entity_ids, server=workbench.server, config=config.ncf
    )
    print("Table VIII: variant | HR@1/3/5/10/30 | NDCG@1/3/5/10/30")
    for variant in VARIANTS:
        print(task.run(variant).as_table_row())
    return 0


def cmd_complete(args: argparse.Namespace) -> int:
    """Demonstrate completion-during-service on held-out facts."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    observed, missing = holdout_incompleteness(
        workbench.catalog.store, args.fraction, np.random.default_rng(7)
    )
    model = pretrain_pkgm(
        observed,
        len(workbench.catalog.entities),
        len(workbench.catalog.relations),
        model_config=config.pkgm,
        trainer_config=config.pkgm_trainer,
        seed=config.seed,
    )
    held = missing.to_array()
    service = model.service_triple(held[:, 0], held[:, 1])
    top = model.nearest_entities(service, k=10)
    hit1 = float(np.mean([held[i, 2] == top[i][0] for i in range(len(held))]))
    hit10 = float(np.mean([held[i, 2] in top[i] for i in range(len(held))]))
    print(
        f"completion on {len(held)} held-out facts ({args.fraction:.0%} of KG): "
        f"Hit@1={hit1:.3f} Hit@10={hit10:.3f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PKGM reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--verbose", action="store_true")

    common(sub.add_parser("stats", help="dataset statistics tables"))
    pre = sub.add_parser("pretrain", help="pre-train PKGM, optionally save server")
    common(pre)
    pre.add_argument("--save", type=str, default=None, help="server npz path")
    common(sub.add_parser("classify", help="Table IV experiment"))
    align = sub.add_parser("align", help="Tables VI-VII experiment")
    common(align)
    align.add_argument("--category", type=int, default=0)
    common(sub.add_parser("recommend", help="Table VIII experiment"))
    comp = sub.add_parser("complete", help="completion-during-service demo")
    common(comp)
    comp.add_argument("--fraction", type=float, default=0.15)
    lint = sub.add_parser(
        "lint",
        parents=[lint_cli.build_parser()],
        add_help=False,
        help="AST-based correctness linter (see repro.lint)",
    )
    lint.set_defaults(command="lint")
    return parser


COMMANDS = {
    "stats": cmd_stats,
    "pretrain": cmd_pretrain,
    "classify": cmd_classify,
    "align": cmd_align,
    "recommend": cmd_recommend,
    "complete": cmd_complete,
    "lint": lint_cli.run_lint,
}


def main(argv: Optional[list] = None) -> int:
    """Entry point: dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
