"""Command-line interface for the reproduction.

Run the substrate pipeline and any of the paper's experiments without
writing Python:

.. code-block:: console

    python -m repro.cli stats                      # Table II/III/V/IX shapes
    python -m repro.cli pretrain --save server.npz # pre-train + export server
    python -m repro.cli classify                   # Table IV
    python -m repro.cli align                      # Tables VI-VII
    python -m repro.cli recommend                  # Table VIII
    python -m repro.cli complete                   # §II-D completion demo
    python -m repro.cli chaos --crash-epoch 4      # fault-injected training
    python -m repro.cli loadtest --profile spike   # overload-serving drill
    python -m repro.cli index build --out idx      # ANN snapshot (byte-stable)
    python -m repro.cli index search --snapshot idx # nearest-tail queries
    python -m repro.cli index eval                 # recall/cost vs exact Flat
    python -m repro.cli store build --out st       # out-of-core shard store
    python -m repro.cli store verify --dir st      # CRC-check every page
    python -m repro.cli store scrub --dir st       # CRC-check + quarantine
    python -m repro.cli store chaos --dir work     # corruption-recovery drill
    python -m repro.cli serve chaos --dir work     # SIGKILL exactly-once drill
    python -m repro.cli stream run --dir work      # catalog-delta ingest
    python -m repro.cli stream chaos --dir work    # crash-mid-ingest replay drill
    python -m repro.cli scenarios workload         # gateway+pool scenario gate
    python -m repro.cli scenarios coldstart        # zero-shot recommendation
    python -m repro.cli scenarios explain          # citation-backed reasoning
    python -m repro.cli scenarios transfer         # cross-category rule transfer
    python -m repro.cli metrics --format prom      # telemetry snapshot export
    python -m repro.cli trace --format chrome      # span/profile trace export
    python -m repro.cli lint src tests             # static-analysis gate

Experiment commands accept ``--preset {smoke,default,bench}`` and
``--seed``; ``lint`` takes the :mod:`repro.lint` options.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional

import numpy as np

from .config import PRESETS, ExperimentConfig
from .core import PKGM, pretrain_pkgm
from .data import (
    build_alignment_dataset,
    build_classification_dataset,
    generate_interactions,
)
from .kg import holdout_incompleteness, kg_statistics
from .lint import cli as lint_cli
from .pipeline import build_workbench
from .tasks import (
    ItemClassificationTask,
    ProductAlignmentTask,
    RecommendationTask,
)

VARIANTS = ("base", "pkgm-t", "pkgm-r", "pkgm-all")


def _load_config(args: argparse.Namespace) -> ExperimentConfig:
    config = PRESETS[args.preset]()
    if args.seed is not None:
        config = dataclasses.replace(
            config,
            seed=args.seed,
            catalog=dataclasses.replace(config.catalog, seed=args.seed),
        )
    return config


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the dataset-statistics tables (II, III, V, IX shapes)."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    stats = kg_statistics(
        workbench.catalog.store, workbench.catalog.entities, workbench.catalog.relations
    )
    print("Table II  :", stats.as_table_row())
    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    print("Table III :", dataset.as_table_row("classification"))
    for index, category in enumerate((0, 1, 2)):
        alignment = build_alignment_dataset(
            workbench.catalog,
            workbench.titles,
            category_id=category,
            ranking_candidates=99,
            seed=11 + category,
        )
        print(f"Table V   : {alignment.as_table_row(f'category-{index + 1}')}")
    interactions = generate_interactions(workbench.catalog, config.interactions)
    print("Table IX  :", interactions.as_table_row())
    return 0


def cmd_pretrain(args: argparse.Namespace) -> int:
    """Pre-train PKGM and optionally export the deployable server."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=True)
    print(
        f"PKGM pre-trained: margin loss "
        f"{workbench.pkgm_history.epoch_losses[0]:.3f} -> "
        f"{workbench.pkgm_history.final_loss:.3f}"
    )
    if args.save:
        workbench.server.save(args.save)
        print(f"server snapshot written to {args.save}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Run the Table IV experiment."""
    config = _load_config(args)
    workbench = build_workbench(config, verbose=args.verbose)
    dataset = build_classification_dataset(
        workbench.catalog, workbench.titles, max_per_category=100, seed=5
    )
    task = ItemClassificationTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune,
    )
    print("Table IV: variant | Hit@1 | Hit@3 | Hit@10 | AC")
    for variant in VARIANTS:
        print(task.run(variant).as_table_row())
    return 0


def cmd_align(args: argparse.Namespace) -> int:
    """Run the Tables VI-VII experiment on one category."""
    config = _load_config(args)
    workbench = build_workbench(config, verbose=args.verbose)
    dataset = build_alignment_dataset(
        workbench.catalog,
        workbench.titles,
        category_id=args.category,
        ranking_candidates=99,
        train_samples_per_pair=4,
        seed=11 + args.category,
    )
    task = ProductAlignmentTask(
        dataset,
        workbench.tokenizer,
        workbench.encoder_config,
        server=workbench.server,
        pretrained_state=workbench.mlm_state,
        config=config.finetune_pair,
    )
    print("variant | category | Hit@1 | Hit@3 | Hit@10   /   accuracy")
    for variant in VARIANTS:
        result = task.run(variant)
        print(f"{result.as_hit_row()}   /   {result.as_accuracy_cell()}")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    """Run the Table VIII experiment."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    interactions = generate_interactions(workbench.catalog, config.interactions)
    entity_ids = [item.entity_id for item in workbench.catalog.items]
    task = RecommendationTask(
        interactions, entity_ids, server=workbench.server, config=config.ncf
    )
    print("Table VIII: variant | HR@1/3/5/10/30 | NDCG@1/3/5/10/30")
    for variant in VARIANTS:
        print(task.run(variant).as_table_row())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Train through the PS simulation under an injected fault plan.

    Runs the same distributed job twice — fault-free, then under the
    requested plan (with retries and crash-consistent checkpointing) —
    and reports the convergence gap plus the fault/retry accounting.
    """
    import tempfile

    from .distributed import DistributedConfig, DistributedPKGMTrainer
    from .reliability import CrashEvent, FaultPlan, RetryPolicy

    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    store = workbench.catalog.store
    n_ent = len(workbench.catalog.entities)
    n_rel = len(workbench.catalog.relations)

    def fresh_model():
        return PKGM(n_ent, n_rel, config.pkgm, rng=np.random.default_rng(config.seed))

    dist_config = DistributedConfig(
        num_shards=args.shards,
        num_workers=args.workers,
        epochs=args.epochs,
        batch_size=config.pkgm_trainer.batch_size,
        learning_rate=config.pkgm_trainer.learning_rate,
        seed=config.seed,
    )
    clean = DistributedPKGMTrainer(fresh_model(), dist_config)
    clean_losses = clean.train(store)

    crashes = ()
    if args.crash_epoch is not None:
        crashes = (
            CrashEvent(
                epoch=args.crash_epoch, batch=args.crash_batch, shard=args.crash_shard
            ),
        )
    plan = FaultPlan(
        seed=args.fault_seed,
        push_drop_prob=args.push_drop,
        push_duplicate_prob=args.push_duplicate,
        pull_delay_prob=args.pull_delay,
        rpc_error_prob=args.rpc_error,
        crashes=crashes,
    )
    checkpoint_dir = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    chaotic = DistributedPKGMTrainer(
        fresh_model(),
        dist_config,
        faults=plan,
        retry=RetryPolicy(seed=args.fault_seed),
        checkpoint_dir=checkpoint_dir,
        resume=False,
    )
    chaos_losses = chaotic.train(store)

    gap = abs(chaos_losses[-1] - clean_losses[-1]) / max(abs(clean_losses[-1]), 1e-12)
    print(f"fault plan : {plan.describe()}")
    print(f"checkpoints: {checkpoint_dir}")
    print(
        f"fault-free : first {clean_losses[0]:.4f} -> final {clean_losses[-1]:.4f}"
    )
    print(
        f"faulted    : first {chaos_losses[0]:.4f} -> final {chaos_losses[-1]:.4f}"
    )
    print(f"final-loss gap: {gap:.2%}")
    print(chaotic.fault_stats.as_row())
    print(chaotic.retry_stats.as_row())
    print(
        f"recoveries {chaotic.recoveries} | abandoned batches "
        f"{chaotic.abandoned_batches} | abandoned pushes {chaotic.abandoned_pushes}"
    )
    return 0 if gap <= args.tolerance else 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive the overload gateway with a seeded open-loop traffic profile.

    Builds an untrained PKGM server at the preset's catalog scale
    (overload mechanics do not depend on trained weights), fronts it
    with ``--replicas`` hedging replicas behind the admission
    controller, and replays the requested profile — including a
    mid-run ``drain()`` + snapshot swap at ``--drain-at``.  With a
    fixed ``--seed`` the printed metrics are byte-identical across
    runs; under overload the gateway sheds (degraded payloads), it
    never raises.
    """
    from .core import KeyRelationSelector, PKGMServer
    from .data import generate_catalog
    from .reliability import (
        AdmissionConfig,
        GatewayConfig,
        LoadTestConfig,
        PKGMGateway,
        build_replicas,
        run_loadtest,
    )

    config = _load_config(args)
    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(config.seed),
    )
    server = PKGMServer(model, selector)
    gateway = PKGMGateway(
        build_replicas(server, args.replicas, seed=args.load_seed),
        GatewayConfig(
            deadline_budget=args.deadline,
            hedge_after=args.hedge_after if args.hedge_after > 0 else None,
            admission=AdmissionConfig(
                rate=args.admit_rate if args.admit_rate > 0 else None,
                burst=args.admit_burst,
                queue_capacity=args.queue_capacity,
            ),
        ),
        seed=args.load_seed,
    )
    report = run_loadtest(
        gateway,
        server.known_items(),
        LoadTestConfig(
            profile=args.profile,
            requests=args.requests,
            base_rate=args.rate,
            seed=args.load_seed,
            drain_at=args.drain_at if 0.0 < args.drain_at < 1.0 else None,
        ),
    )
    for row in report.as_rows():
        print(row)
    print(gateway.stats.as_row())
    print(gateway.admission.stats.as_row())
    if args.verbose:
        for replica in gateway.replicas:
            print(
                f"{replica.name}: calls {replica.calls} | "
                f"cancelled {replica.cancelled}"
            )
    return 0


def cmd_complete(args: argparse.Namespace) -> int:
    """Demonstrate completion-during-service on held-out facts."""
    config = _load_config(args)
    workbench = build_workbench(config, pretrain_mlm=False, verbose=args.verbose)
    observed, missing = holdout_incompleteness(
        workbench.catalog.store, args.fraction, np.random.default_rng(7)
    )
    model = pretrain_pkgm(
        observed,
        len(workbench.catalog.entities),
        len(workbench.catalog.relations),
        model_config=config.pkgm,
        trainer_config=config.pkgm_trainer,
        seed=config.seed,
    )
    held = missing.to_array()
    service = model.service_triple(held[:, 0], held[:, 1])
    top = model.nearest_entities(service, k=10)
    hit1 = float(np.mean([held[i, 2] == top[i][0] for i in range(len(held))]))
    hit10 = float(np.mean([held[i, 2] in top[i] for i in range(len(held))]))
    print(
        f"completion on {len(held)} held-out facts ({args.fraction:.0%} of KG): "
        f"Hit@1={hit1:.3f} Hit@10={hit10:.3f}"
    )
    return 0


def _untrained_server(config: ExperimentConfig):
    """Deterministic preset-scale server (seeded weights, no training).

    Index mechanics — partitioning, snapshots, byte-determinism — do
    not depend on trained weights, so the index CLI builds this in
    milliseconds; the gate diffing two same-seed runs relies on it.
    """
    from .core import KeyRelationSelector, PKGMServer
    from .data import generate_catalog

    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(config.seed),
    )
    return PKGMServer(model, selector)


def _index_params(args: argparse.Namespace, seed: int) -> dict:
    """Constructor kwargs for the requested index kind."""
    if args.kind == "flat":
        return {"block_size": args.block_size}
    params = {
        "nlist": args.nlist,
        "nprobe": args.nprobe,
        "seed": seed,
    }
    if args.kind == "ivfpq":
        params.update(m=args.m, ksub=args.ksub)
    return params


def cmd_index(args: argparse.Namespace) -> int:
    """Build, query, or evaluate a retrieval index over the entity table.

    ``build`` writes a checksummed snapshot (two same-seed runs are
    byte-identical — the check.sh gate diffs them); ``search`` answers
    nearest-tail queries from a snapshot or a fresh build; ``eval``
    scores every index kind against the exact Flat baseline.
    """
    from .index import load_index, save_index

    config = _load_config(args)
    server = _untrained_server(config)

    if args.index_command == "build":
        index = server.build_tail_index(
            kind=args.kind,
            metric=args.metric,
            **_index_params(args, config.seed),
        )
        manifest = save_index(index, args.out)
        print(
            f"{args.kind} index: {index.ntotal} vectors, dim {index.dim}, "
            f"{index.metric}, {index.bytes_per_vector:.0f} bytes/vector"
        )
        print(f"snapshot -> {manifest.with_suffix('.npz')} + {manifest}")
        return 0

    items = server.known_items()
    heads = items[: args.queries]
    relations = [args.relation] * len(heads)

    if args.index_command == "search":
        if args.snapshot:
            server._tail_index = load_index(args.snapshot)
        else:
            server.build_tail_index(
                kind=args.kind,
                metric=args.metric,
                **_index_params(args, config.seed),
            )
        distances, ids = server.nearest_tails_batch(heads, relations, k=args.k)
        for row, head in enumerate(heads):
            cells = " ".join(
                f"{ids[row][j]}:{distances[row][j]:.6f}"
                for j in range(args.k)
            )
            print(f"S_T({head}, {args.relation}) -> {cells}")
        return 0

    if args.index_command == "eval":
        flat = server.build_tail_index(kind="flat", metric=args.metric)
        exact_d, exact_ids = server.nearest_tails_batch(
            heads, relations, k=args.k
        )
        flat_dc = flat.metrics.counter(
            "index.search.distance_computations"
        ).value
        print(
            f"kind | recall@{args.k} | distance computations | saving | "
            "bytes/vector"
        )
        print(f"flat | 1.000 | {flat_dc} | 1.0x | {flat.bytes_per_vector:.0f}")
        for kind in ("ivf", "ivfpq"):
            index = server.build_tail_index(
                kind=kind,
                metric=args.metric,
                **_index_params(
                    argparse.Namespace(**{**vars(args), "kind": kind}),
                    config.seed,
                ),
            )
            _, ann_ids = server.nearest_tails_batch(heads, relations, k=args.k)
            dc = index.metrics.counter(
                "index.search.distance_computations"
            ).value
            recall = float(
                np.mean(
                    [
                        len(set(exact_ids[r]) & set(ann_ids[r])) / args.k
                        for r in range(len(heads))
                    ]
                )
            )
            print(
                f"{kind} | {recall:.3f} | {dc} | {flat_dc / dc:.1f}x | "
                f"{index.bytes_per_vector:.0f}"
            )
        return 0

    raise ValueError(f"unknown index subcommand {args.index_command!r}")


def _store_dir_summary(store) -> None:
    """Deterministic per-table summary lines for store subcommands."""
    for name in store.table_names():
        spec = store.spec(name)
        print(
            f"  {name}: shape {spec.shape} {spec.dtype} | "
            f"{spec.nbytes} bytes | {spec.num_shards} shards ({spec.layout}) | "
            f"{spec.rows_per_page} rows/page"
        )


def cmd_store(args: argparse.Namespace) -> int:
    """Build, verify, scrub, or chaos-drill an embedding store.

    ``build`` persists the deterministic preset-scale server as a
    checksummed shard store (two same-seed builds are byte-identical);
    ``verify`` re-reads every page against its CRC without mutating
    anything; ``scrub`` additionally quarantines damage; ``chaos``
    runs the full storage-failure drill — seeded corruption, degraded
    serving, replica repair — and prints a byte-deterministic report
    the check.sh gate diffs across two runs.
    """
    from pathlib import Path

    from .store import EmbeddingStore, StoreManifestError

    config = _load_config(args)

    if args.store_command == "build":
        server = _untrained_server(config)
        store = server.save_store(
            args.out, num_shards=args.shards, page_bytes=args.page_bytes
        )
        print(
            f"store -> {args.out}: {len(store.table_names())} tables, "
            f"{store.nbytes} bytes"
        )
        _store_dir_summary(store)
        store.close()
        return 0

    if args.store_command in ("verify", "scrub"):
        try:
            store = EmbeddingStore.open(args.dir, cache_pages=args.cache_pages)
        except StoreManifestError as error:
            print(f"manifest: REFUSED ({error})")
            return 2
        if args.store_command == "scrub":
            report = store.scrub()
            print(report.as_row())
            for name in store.table_names():
                rows = store.quarantined_rows(name)
                if rows:
                    print(f"  {name}: quarantined rows {rows}")
        else:
            report = store.verify()
            print(
                f"verify: {report.pages_scanned} pages scanned | "
                f"{report.pages_bad} bad | damaged {list(report.bad_pages)}"
            )
        store.close()
        return 0 if report.clean else 1

    if args.store_command == "chaos":
        from .obs.metrics import MetricsRegistry
        from .reliability import (
            ResilientPKGMServer,
            StorageFaultPlan,
            inject_storage_faults,
        )

        workdir = Path(args.dir)
        primary_dir = workdir / "primary"
        replica_dir = workdir / "replica"
        server = _untrained_server(config)
        server.save_store(
            primary_dir, num_shards=args.shards, page_bytes=args.page_bytes
        ).close()
        server.save_store(
            replica_dir, num_shards=args.shards, page_bytes=args.page_bytes
        ).close()

        plan = StorageFaultPlan(
            seed=args.fault_seed,
            torn_writes=args.torn,
            bit_flips=args.flips,
            truncate_manifest=args.torn_manifest,
            lost_fsync_tails=args.lost_tails,
        )
        fault_stats = inject_storage_faults(primary_dir, plan)
        print(f"plan: {plan.describe()}")
        print(fault_stats.as_row())
        for kind, filename, offset in fault_stats.events:
            print(f"  {kind} {filename} @ {offset}")

        if args.torn_manifest:
            try:
                EmbeddingStore.open(primary_dir)
                print("manifest: ACCEPTED (unexpected)")
                return 1
            except StoreManifestError:
                print("manifest: refused torn manifest; restoring from replica")
                EmbeddingStore.restore_manifest(primary_dir, replica_dir)

        registry = MetricsRegistry()
        from .core import PKGMServer as _PKGMServer

        store_server = _PKGMServer.from_store(
            primary_dir, cache_pages=args.cache_pages, registry=registry
        )
        scrub = store_server.store.scrub()
        print(scrub.as_row())
        print(f"unreadable selector items: {store_server.unreadable_items}")

        facade = ResilientPKGMServer(store_server, registry=registry)
        items = server.known_items()
        degraded_items = []
        for item in items:
            payload = facade.serve(item)
            if payload.degraded:
                degraded_items.append(item)
        print(
            f"degraded serve: {len(items)} requests | "
            f"{len(degraded_items)} degraded | {facade.stats.as_row()}"
        )

        replica = EmbeddingStore.open(replica_dir)
        repair = store_server.store.repair(replica)
        replica.close()
        print(repair.as_row())
        rescrub = store_server.store.verify()
        print(f"post-repair {rescrub.as_row()}")

        # Reload over the repaired files: quarantined selector rows are
        # readable again, so every item must now serve live and
        # bit-identically to the in-RAM reference server.
        store_server.store.close()
        store_server = _PKGMServer.from_store(
            primary_dir, cache_pages=args.cache_pages, registry=registry
        )
        facade = ResilientPKGMServer(store_server, registry=registry)
        mismatches = 0
        for item in items:
            reference = server.serve(item)
            recovered = facade.serve(item)
            if recovered.degraded or not (
                np.array_equal(reference.triple_vectors, recovered.triple_vectors)
                and np.array_equal(
                    reference.relation_vectors, recovered.relation_vectors
                )
            ):
                mismatches += 1
        print(f"post-repair serve: {len(items)} requests | {mismatches} mismatches")

        print("metrics:")
        for key, value in sorted(registry.snapshot().items()):
            if key.startswith(("store.", "serving.")):
                print(f"  {key} {value}")
        store_server.store.close()
        ok = repair.complete and rescrub.clean and mismatches == 0
        print(f"chaos drill: {'RECOVERED' if ok else 'FAILED'}")
        return 0 if ok else 1

    raise ValueError(f"unknown store subcommand {args.store_command!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive the supervised multi-process worker pool.

    ``chaos`` runs the process-level kill drill: a seeded mixed
    workload over N forked workers, SIGKILLs at fixed request indices,
    and an exactly-once transcript that is byte-identical across runs
    (stdout carries only deterministic lines — the check.sh gate diffs
    two runs; operational counters go to stderr under ``--verbose``).
    ``loadtest`` measures real wall-clock QPS and latency percentiles,
    so its timing lines are *not* deterministic by design.
    """
    import time
    from pathlib import Path

    from .serving import (
        ChaosConfig,
        PoolConfig,
        ServeLoadConfig,
        Supervisor,
        run_kill_drill,
        run_serve_loadtest,
    )

    config = _load_config(args)
    workdir = Path(args.dir)
    store_dir = workdir / "store"
    server = _untrained_server(config)
    server.save_store(
        store_dir, num_shards=args.store_shards, page_bytes=args.page_bytes
    ).close()
    items = server.known_items()

    if args.serve_command == "chaos":
        kills = max(0, args.kills)
        kill_at = tuple(
            (slot + 1) * args.requests // (kills + 1) for slot in range(kills)
        )
        kill_workers = tuple(slot % args.workers for slot in range(kills))
        report = run_kill_drill(
            store_dir,
            items,
            ChaosConfig(
                requests=args.requests,
                workers=args.workers,
                kill_at=kill_at,
                kill_workers=kill_workers,
                window=args.window,
                seed=config.seed,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
                scrub_pages_per_tick=args.scrub_pages,
            ),
        )
        for line in report.lines():
            print(line)
        if args.verbose:
            for line in report.detail_lines():
                print(line, file=sys.stderr)
        return 0 if report.ok else 1

    if args.serve_command == "loadtest":
        pool = Supervisor(
            store_dir,
            PoolConfig(
                num_workers=args.workers,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
            ),
        )
        pool.start()
        try:
            report = run_serve_loadtest(
                pool,
                items,
                ServeLoadConfig(
                    requests=args.requests,
                    window=args.window,
                    seed=config.seed,
                ),
                timer=time.perf_counter,
            )
        finally:
            pool.shutdown()
        for row in report.as_rows():
            print(row)
        return 0

    raise ValueError(f"unknown serve subcommand {args.serve_command!r}")


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a seeded workload and export its telemetry.

    ``--workload serving`` (the default) drives the single-process
    gateway overload drill; ``--workload pool`` forks the supervised
    worker pool and surfaces the per-worker ``pool.*`` counters plus
    the background ``store.scrub.*`` accounting.  Stdout carries *only*
    the export (Prometheus text or JSON), so two runs with the same
    seed are byte-identical — the check.sh obs gate diffs exactly
    this.  ``--verbose`` adds the workload summary on stderr.
    """
    from .obs import (
        run_metrics_workload,
        run_pool_workload,
        to_json,
        to_prometheus,
    )

    config = _load_config(args)
    if args.workload == "pool":
        registry, summary = run_pool_workload(
            seed=config.seed, requests=args.requests, preset=args.preset
        )
    else:
        registry, report = run_metrics_workload(
            seed=config.seed, requests=args.requests, preset=args.preset
        )
        summary = report.as_rows()
    if args.format == "json":
        print(to_json(registry))
    else:
        print(to_prometheus(registry), end="")
    if args.verbose:
        for row in summary:
            print(row, file=sys.stderr)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Drive the catalog-delta streaming subsystem.

    ``run`` ingests the seeded delta stream over ``--dir`` — appending
    each batch to the write-ahead delta log, warm-starting and
    continual-training stream-born entities, absorbing deltas into the
    ANN index, and publishing versioned snapshots.  ``replay`` runs the
    identical loop over an existing directory: the verified log prefix
    replays instead of regenerating, and stdout must come out
    byte-identical.  ``chaos`` is the crash-mid-ingest drill — a run is
    killed after a batch is logged but before it is absorbed (plus a
    torn half-written segment), recovery replays from the log alone,
    and every artifact, metric, and transcript line is byte-compared
    against a never-crashed control run.

    Stdout carries only deterministic lines (the check.sh / CI gates
    diff two chaos runs); operational detail goes to stderr under
    ``--verbose``.
    """
    from pathlib import Path

    from .stream import (
        StreamChaosConfig,
        StreamPipeline,
        StreamRunConfig,
        run_stream_chaos,
        swap_gateway,
    )

    config = _load_config(args)
    stream_config = StreamRunConfig(
        batches=args.batches, publish_every=args.publish_every
    )
    workdir = Path(args.dir)

    if args.stream_command in ("run", "replay"):
        pipeline = StreamPipeline(
            config,
            workdir,
            stream_config,
            from_checkpoint=getattr(args, "from_checkpoint", None),
        )
        report = pipeline.run()
        for line in report.lines():
            print(line)
        if args.verbose:
            print(
                f"replayed {report.replayed_batches} logged batches",
                file=sys.stderr,
            )
            current = pipeline.versioner.current_version()
            if current is not None:
                from .reliability import PKGMGateway, build_replicas

                gateway = PKGMGateway(
                    build_replicas(
                        pipeline.versioner.load_server(current),
                        2,
                        seed=config.seed,
                    ),
                    seed=config.seed,
                )
                server = swap_gateway(gateway, pipeline.versioner, current)
                print(
                    f"swap drill: gateway {gateway.state} over "
                    f"v{current:06d} ({len(server.known_items())} items)",
                    file=sys.stderr,
                )
        return 0

    if args.stream_command == "chaos":
        report = run_stream_chaos(
            config,
            workdir,
            stream_config,
            StreamChaosConfig(kill_batch=args.kill_batch),
        )
        for line in report.lines():
            print(line)
        if args.verbose:
            for line in report.detail_lines():
                print(line, file=sys.stderr)
        return 0 if report.ok else 1

    raise ValueError(f"unknown stream subcommand {args.stream_command!r}")


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Zero-shot recommendation + explainable reasoning scenarios.

    ``workload`` runs the seeded two-phase gateway/pool drill whose
    transcript the check.sh / CI scenarios gate byte-diffs across two
    runs; ``coldstart`` multi-task pre-trains PKGM and ranks each
    user's held-out cold item from service vectors alone, against the
    popularity / random / warm-NCF baselines; ``explain`` prints
    citation-backed completion or existence explanations for sample
    items; ``transfer`` measures how rules mined on one category
    subgraph hold on every other.
    """
    from .data import generate_catalog
    from .kg.rules import RuleMiner
    from .scenarios import (
        ColdStartConfig,
        Explainer,
        category_subgraphs,
        evaluate_rule_transfer,
        run_coldstart,
        run_scenarios_workload,
    )

    config = _load_config(args)

    if args.scenarios_command == "workload":
        report = run_scenarios_workload(
            seed=config.seed,
            requests=args.requests,
            pool_requests=args.pool_requests,
            preset=args.preset,
        )
        for line in report.lines():
            print(line)
        return 0 if report.passed else 1

    if args.scenarios_command == "coldstart":
        coldstart = ColdStartConfig(
            cold_fraction=args.cold_fraction, seed=config.seed
        )
        report, split = run_coldstart(
            config, coldstart=coldstart, train_ncf=not args.no_ncf
        )
        print(split.summary())
        for line in report.lines():
            print(line)
        return 0

    if args.scenarios_command == "explain":
        catalog = generate_catalog(config.catalog)
        server = _untrained_server(config)
        explainer = Explainer(
            catalog.store,
            miner=RuleMiner(
                min_support=args.min_support,
                min_confidence=args.min_confidence,
            ),
            server=server,
        )
        print(f"mined rules: {explainer.num_rules}")
        printed = 0
        relations = explainer.completer.head_relations()
        for item in catalog.items:
            for relation in relations:
                payload = explainer.explain(
                    item.entity_id, relation, kind=args.kind
                )
                if not payload.predictions:
                    continue
                header = f"({item.entity_id}, {relation}, ?)"
                if payload.kind == "existence":
                    header += f" existence={payload.existence_score:.4f}"
                print(header)
                for value, score in payload.predictions:
                    print(f"  predict {value} (confidence {score:.3f})")
                for cite in payload.citations:
                    head, rel, tail = cite.support
                    print(
                        f"  because ({head}, {rel}, {tail}) and rule "
                        f"({cite.rule.body_relation}={cite.rule.body_value} "
                        f"=> {cite.rule.head_relation}={cite.rule.head_value}, "
                        f"conf {cite.rule.confidence:.2f})"
                    )
                printed += 1
                if printed >= args.queries:
                    break
            if printed >= args.queries:
                break
        print(f"explained {printed} queries")
        return 0

    if args.scenarios_command == "transfer":
        catalog = generate_catalog(config.catalog)
        miner = RuleMiner(
            min_support=args.min_support, min_confidence=args.min_confidence
        )
        subgraphs = category_subgraphs(catalog)
        categories = sorted(subgraphs)
        print("rule transfer across category subgraphs")
        for source in categories:
            for target in categories:
                if source == target:
                    continue
                print(
                    evaluate_rule_transfer(
                        subgraphs[source],
                        subgraphs[target],
                        miner=miner,
                        source_category=source,
                        target_category=target,
                    ).as_row()
                )
        return 0

    raise ValueError(f"unknown scenarios subcommand {args.scenarios_command!r}")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the seeded training workload and export spans + profile.

    ``--format tree`` prints the span tree followed by the phase/op
    profile; ``--format chrome`` prints Chrome ``trace_event`` JSON
    (load it at ``chrome://tracing``).  Same seed, same bytes.
    """
    from .obs import profile_report, run_trace_workload

    config = _load_config(args)
    registry, tracer, profiler, history = run_trace_workload(
        seed=config.seed, epochs=args.epochs, preset=args.preset
    )
    if args.format == "chrome":
        print(tracer.export_chrome())
    else:
        print(tracer.render_tree())
        print()
        print(profile_report(profiler))
    if args.verbose:
        losses = ", ".join(f"{loss:.4f}" for loss in history.epoch_losses)
        print(f"epoch losses: {losses}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PKGM reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--verbose", action="store_true")

    common(sub.add_parser("stats", help="dataset statistics tables"))
    pre = sub.add_parser("pretrain", help="pre-train PKGM, optionally save server")
    common(pre)
    pre.add_argument("--save", type=str, default=None, help="server npz path")
    common(sub.add_parser("classify", help="Table IV experiment"))
    align = sub.add_parser("align", help="Tables VI-VII experiment")
    common(align)
    align.add_argument("--category", type=int, default=0)
    common(sub.add_parser("recommend", help="Table VIII experiment"))
    comp = sub.add_parser("complete", help="completion-during-service demo")
    common(comp)
    comp.add_argument("--fraction", type=float, default=0.15)
    chaos = sub.add_parser(
        "chaos", help="distributed training under an injected fault plan"
    )
    common(chaos)
    chaos.add_argument("--epochs", type=int, default=8)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument("--workers", type=int, default=8)
    chaos.add_argument("--push-drop", type=float, default=0.1)
    chaos.add_argument("--push-duplicate", type=float, default=0.0)
    chaos.add_argument("--pull-delay", type=float, default=0.0)
    chaos.add_argument("--rpc-error", type=float, default=0.02)
    chaos.add_argument("--crash-epoch", type=int, default=None)
    chaos.add_argument("--crash-batch", type=int, default=0)
    chaos.add_argument("--crash-shard", type=int, default=0)
    chaos.add_argument("--fault-seed", type=int, default=0)
    chaos.add_argument("--checkpoint-dir", type=str, default=None)
    chaos.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max final-loss gap vs the fault-free run (exit 1 beyond)",
    )
    load = sub.add_parser(
        "loadtest", help="seeded overload drill against the serving gateway"
    )
    common(load)
    load.add_argument(
        "--profile", choices=("sustained", "ramp", "spike"), default="spike"
    )
    load.add_argument("--requests", type=int, default=2000)
    load.add_argument("--rate", type=float, default=400.0)
    load.add_argument("--replicas", type=int, default=2)
    load.add_argument("--deadline", type=float, default=0.25)
    load.add_argument(
        "--hedge-after",
        type=float,
        default=0.05,
        help="hedge a request after this many virtual seconds (<=0 disables)",
    )
    load.add_argument(
        "--admit-rate",
        type=float,
        default=300.0,
        help="token-bucket admit rate per virtual second (<=0 disables)",
    )
    load.add_argument("--admit-burst", type=float, default=64.0)
    load.add_argument("--queue-capacity", type=int, default=64)
    load.add_argument(
        "--drain-at",
        type=float,
        default=0.5,
        help="run fraction for the drain+swap drill (outside (0,1) disables)",
    )
    load.add_argument(
        "--load-seed",
        type=int,
        default=0,
        help="seed for arrivals, priorities and replica latency draws",
    )
    ind = sub.add_parser(
        "index", help="deterministic ANN retrieval over the entity table"
    )
    isub = ind.add_subparsers(dest="index_command", required=True)

    def index_common(p: argparse.ArgumentParser) -> None:
        common(p)
        p.add_argument(
            "--kind", choices=("flat", "ivf", "ivfpq"), default="ivf"
        )
        p.add_argument("--metric", choices=("l1", "l2"), default="l1")
        p.add_argument("--block-size", type=int, default=1024)
        p.add_argument("--nlist", type=int, default=16)
        p.add_argument("--nprobe", type=int, default=4)
        p.add_argument("--m", type=int, default=8)
        p.add_argument("--ksub", type=int, default=16)
        p.add_argument("-k", type=int, default=10, help="neighbors per query")
        p.add_argument(
            "--queries", type=int, default=8, help="number of item queries"
        )
        p.add_argument("--relation", type=int, default=0)

    build = isub.add_parser(
        "build", help="build an index and write its checksummed snapshot"
    )
    index_common(build)
    build.add_argument(
        "--out", type=str, required=True, help="snapshot path (without suffix)"
    )
    search = isub.add_parser(
        "search", help="nearest-tail queries from a snapshot or fresh build"
    )
    index_common(search)
    search.add_argument(
        "--snapshot", type=str, default=None, help="load this snapshot"
    )
    index_common(
        isub.add_parser(
            "eval", help="recall/cost of every index kind vs exact Flat"
        )
    )
    met = sub.add_parser(
        "metrics", help="seeded serving workload, metrics snapshot export"
    )
    common(met)
    met.add_argument("--requests", type=int, default=400)
    met.add_argument("--format", choices=("prom", "json"), default="prom")
    met.add_argument(
        "--workload",
        choices=("serving", "pool"),
        default="serving",
        help="serving = gateway overload drill; pool = forked worker pool",
    )
    tra = sub.add_parser(
        "trace", help="seeded training run, span and profile export"
    )
    common(tra)
    tra.add_argument("--epochs", type=int, default=2)
    tra.add_argument("--format", choices=("tree", "chrome"), default="tree")
    sto = sub.add_parser(
        "store", help="crash-safe out-of-core embedding store operations"
    )
    ssub = sto.add_subparsers(dest="store_command", required=True)

    def store_common(p: argparse.ArgumentParser) -> None:
        common(p)
        p.add_argument("--shards", type=int, default=2)
        p.add_argument("--page-bytes", type=int, default=4096)
        p.add_argument("--cache-pages", type=int, default=16)

    sbuild = ssub.add_parser(
        "build", help="persist the preset server as a checksummed shard store"
    )
    store_common(sbuild)
    sbuild.add_argument("--out", type=str, required=True, help="store directory")
    sverify = ssub.add_parser(
        "verify", help="CRC-check every page without mutating anything"
    )
    store_common(sverify)
    sverify.add_argument("--dir", type=str, required=True, help="store directory")
    sscrub = ssub.add_parser(
        "scrub", help="CRC-check every page, quarantining damage"
    )
    store_common(sscrub)
    sscrub.add_argument("--dir", type=str, required=True, help="store directory")
    schaos = ssub.add_parser(
        "chaos",
        help="seeded corruption + degraded serving + replica repair drill",
    )
    store_common(schaos)
    schaos.add_argument(
        "--dir", type=str, required=True, help="work directory for the drill"
    )
    schaos.add_argument("--torn", type=int, default=1, help="torn shard writes")
    schaos.add_argument("--flips", type=int, default=2, help="single-bit flips")
    schaos.add_argument(
        "--lost-tails", type=int, default=0, help="lost-fsync tail zeroings"
    )
    schaos.add_argument(
        "--torn-manifest",
        action="store_true",
        help="also truncate the manifest (restored from the replica)",
    )
    schaos.add_argument("--fault-seed", type=int, default=0)
    srv = sub.add_parser(
        "serve", help="supervised multi-process worker pool drills"
    )
    srvsub = srv.add_subparsers(dest="serve_command", required=True)

    def serve_common(p: argparse.ArgumentParser) -> None:
        common(p)
        p.add_argument(
            "--dir", type=str, required=True, help="work directory for the store"
        )
        p.add_argument("--workers", type=int, default=3)
        p.add_argument("--requests", type=int, default=240)
        p.add_argument("--window", type=int, default=8)
        p.add_argument("--max-batch", type=int, default=4)
        p.add_argument("--max-delay", type=float, default=0.004)
        p.add_argument("--store-shards", type=int, default=2)
        p.add_argument("--page-bytes", type=int, default=4096)

    srvchaos = srvsub.add_parser(
        "chaos",
        help="SIGKILL workers mid-load; assert exactly-once responses",
    )
    serve_common(srvchaos)
    srvchaos.add_argument(
        "--kills", type=int, default=2, help="workers to SIGKILL mid-drill"
    )
    srvchaos.add_argument(
        "--scrub-pages",
        type=int,
        default=0,
        help="pages scrubbed per idle supervisor tick (0 disables)",
    )
    srvload = srvsub.add_parser(
        "loadtest", help="wall-clock QPS and latency percentiles for the pool"
    )
    serve_common(srvload)
    stm = sub.add_parser(
        "stream", help="deterministic catalog-delta ingest drills"
    )
    stmsub = stm.add_subparsers(dest="stream_command", required=True)

    def stream_common(p: argparse.ArgumentParser) -> None:
        common(p)
        p.add_argument(
            "--dir", type=str, required=True, help="stream run directory"
        )
        p.add_argument("--batches", type=int, default=12)
        p.add_argument("--publish-every", type=int, default=4)

    stmrun = stmsub.add_parser(
        "run", help="ingest the seeded delta stream (resumes from the log)"
    )
    stream_common(stmrun)
    stmrun.add_argument(
        "--from-checkpoint",
        type=str,
        default=None,
        help="seed the pipeline tables from a trained PKGMServer .npz "
        "snapshot (e.g. from `repro pretrain --save`)",
    )
    stream_common(
        stmsub.add_parser(
            "replay", help="re-run over an existing log; identical stdout"
        )
    )
    stmchaos = stmsub.add_parser(
        "chaos", help="crash mid-ingest, replay to byte-identical state"
    )
    stream_common(stmchaos)
    stmchaos.add_argument(
        "--kill-batch", type=int, default=3, help="batch index the kill lands on"
    )
    scn = sub.add_parser(
        "scenarios",
        help="zero-shot recommendation + explainable reasoning drills",
    )
    scnsub = scn.add_subparsers(dest="scenarios_command", required=True)

    def rule_common(p: argparse.ArgumentParser) -> None:
        common(p)
        p.add_argument("--min-support", type=int, default=2)
        p.add_argument("--min-confidence", type=float, default=0.6)

    swork = scnsub.add_parser(
        "workload",
        help="seeded gateway+pool scenario drill (byte-diffed by the gate)",
    )
    common(swork)
    swork.add_argument("--requests", type=int, default=160)
    swork.add_argument("--pool-requests", type=int, default=96)
    scold = scnsub.add_parser(
        "coldstart", help="zero-shot ranking of cold items vs baselines"
    )
    common(scold)
    scold.add_argument("--cold-fraction", type=float, default=0.2)
    scold.add_argument(
        "--no-ncf",
        action="store_true",
        help="skip the warm-only NCF baseline (faster)",
    )
    sexp = scnsub.add_parser(
        "explain", help="citation-backed completion/existence explanations"
    )
    rule_common(sexp)
    sexp.add_argument(
        "--kind", choices=("completion", "existence"), default="completion"
    )
    sexp.add_argument("--queries", type=int, default=5)
    rule_common(
        scnsub.add_parser(
            "transfer", help="precision/coverage of rules across categories"
        )
    )
    lint = sub.add_parser(
        "lint",
        parents=[lint_cli.build_parser()],
        add_help=False,
        help="AST-based correctness linter (see repro.lint)",
    )
    lint.set_defaults(command="lint")
    return parser


COMMANDS = {
    "stats": cmd_stats,
    "pretrain": cmd_pretrain,
    "classify": cmd_classify,
    "align": cmd_align,
    "recommend": cmd_recommend,
    "complete": cmd_complete,
    "chaos": cmd_chaos,
    "loadtest": cmd_loadtest,
    "index": cmd_index,
    "store": cmd_store,
    "serve": cmd_serve,
    "stream": cmd_stream,
    "scenarios": cmd_scenarios,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "lint": lint_cli.run_lint,
}


def main(argv: Optional[list] = None) -> int:
    """Entry point: dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
