"""The PKGM serving layer (paper §II-D and §II-E).

After pre-training, downstream tasks never touch triple data — they
receive *service vectors*:

* ``k`` triple-query vectors ``S_1..S_k = S_T(item, r_j)`` — candidate
  tail embeddings for the item's k key relations (completion included);
* ``k`` relation-query vectors ``S_{k+1}..S_{2k} = S_R(item, r_j)`` —
  near-zero iff the item has / should have relation ``r_j``.

Two integration recipes (§II-E):

* **sequence models** — append all ``2k`` vectors after the token
  embeddings (:meth:`PKGMServer.serve` provides them stacked);
* **single-embedding models** — condense to one vector (Eq. 8–9 /
  Eq. 20): ``S = (1/k) Σ_j [S_j ; S_{j+k}]`` (:meth:`PKGMServer.serve_condensed`).

:class:`PKGMServer` holds copies of the model parameters and the key
relation table only — it cannot answer symbolic queries, demonstrating
the paper's data-independence property.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .key_relations import KeyRelationSelector
from .pkgm import PKGM


@dataclass(frozen=True)
class ServiceVectors:
    """Service payload for one item.

    ``triple_vectors`` is (k, d) — ``S_1..S_k``;
    ``relation_vectors`` is (k, d) — ``S_{k+1}..S_{2k}``.
    """

    entity_id: int
    key_relations: np.ndarray
    triple_vectors: np.ndarray
    relation_vectors: np.ndarray

    @property
    def k(self) -> int:
        return len(self.key_relations)

    @property
    def dim(self) -> int:
        return self.triple_vectors.shape[-1]

    def sequence(self) -> np.ndarray:
        """All 2k vectors in paper order (triple first), shape (2k, d)."""
        return np.concatenate([self.triple_vectors, self.relation_vectors], axis=0)

    def condensed(self) -> np.ndarray:
        """Eq. 8–9: ``S = (1/k) Σ_j [S_j ; S_{j+k}]``, shape (2d,)."""
        paired = np.concatenate(
            [self.triple_vectors, self.relation_vectors], axis=1
        )  # (k, 2d)
        return paired.mean(axis=0)


class PKGMServer:
    """Serves PKGM vectors without access to the triple store.

    Construction copies the embedding tables, transfer matrices and key
    relation table out of the trained model; the store itself is *not*
    retained (data protection / triple independence, §II-D).
    """

    def __init__(
        self,
        model: PKGM,
        selector: KeyRelationSelector,
    ) -> None:
        self.dim = model.config.dim
        self.k = selector.k
        self.num_entities = model.num_entities
        self.num_relations = model.num_relations
        # Snapshot parameters: the server must keep working even if the
        # model is further trained or discarded.
        self._entity_table = model.triple_module.entity_embeddings.weight.data.copy()
        self._relation_table = (
            model.triple_module.relation_embeddings.weight.data.copy()
        )
        self._transfer = model.relation_module.transfer_matrices.data.copy()
        self._selector = selector

    # ------------------------------------------------------------------
    # Raw module services for arbitrary (h, r)
    # ------------------------------------------------------------------
    def triple_service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_T(h, r) = h + r`` on the snapshot."""
        heads, relations = np.asarray(heads), np.asarray(relations)
        return self._entity_table[heads] + self._relation_table[relations]

    def relation_service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_R(h, r) = M_r h - r`` on the snapshot."""
        heads, relations = np.asarray(heads), np.asarray(relations)
        h = self._entity_table[heads]
        transformed = np.einsum("...ij,...j->...i", self._transfer[relations], h)
        return transformed - self._relation_table[relations]

    # ------------------------------------------------------------------
    # Item-level service with key relations
    # ------------------------------------------------------------------
    def serve(self, entity_id: int) -> ServiceVectors:
        """All 2k service vectors for one item."""
        relations = np.asarray(self._selector.for_item(entity_id), dtype=np.int64)
        heads = np.full(len(relations), entity_id, dtype=np.int64)
        return ServiceVectors(
            entity_id=entity_id,
            key_relations=relations,
            triple_vectors=self.triple_service(heads, relations),
            relation_vectors=self.relation_service(heads, relations),
        )

    def serve_batch(self, entity_ids: Sequence[int]) -> List[ServiceVectors]:
        """Service vectors for a batch of items."""
        return [self.serve(int(e)) for e in entity_ids]

    def serve_sequence_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Sequence-model payload: (batch, 2k, d) in paper order."""
        relations = self._selector.for_items(entity_ids)  # (B, k)
        heads = np.repeat(
            np.asarray(entity_ids, dtype=np.int64)[:, None], self.k, axis=1
        )
        triple = self.triple_service(heads, relations)  # (B, k, d)
        relation = self.relation_service(heads, relations)  # (B, k, d)
        return np.concatenate([triple, relation], axis=1)

    def serve_condensed_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Single-embedding payload (Eq. 20): (batch, 2d)."""
        relations = self._selector.for_items(entity_ids)
        heads = np.repeat(
            np.asarray(entity_ids, dtype=np.int64)[:, None], self.k, axis=1
        )
        triple = self.triple_service(heads, relations)  # (B, k, d)
        relation = self.relation_service(heads, relations)  # (B, k, d)
        paired = np.concatenate([triple, relation], axis=2)  # (B, k, 2d)
        return paired.mean(axis=1)

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        """L1 norm of ``S_R`` — small means (should) EXIST (§II-D)."""
        score = self.relation_service(
            np.asarray([entity_id]), np.asarray([relation])
        )
        return float(np.abs(score).sum())

    # ------------------------------------------------------------------
    # Deployment: persist / restore the snapshot
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the full service snapshot to one compressed npz file.

        The saved artifact is exactly what a production deployment needs:
        the embedding tables, transfer matrices, and the per-item key
        relation assignments — no triple data, no training code.
        """
        item_ids = sorted(self._selector._item_to_category)
        key_table = np.asarray(
            [self._selector.for_item(item) for item in item_ids], dtype=np.int64
        )
        np.savez_compressed(
            Path(path),
            entity_table=self._entity_table,
            relation_table=self._relation_table,
            transfer=self._transfer,
            item_ids=np.asarray(item_ids, dtype=np.int64),
            key_relations=key_table,
            k=np.asarray([self.k]),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PKGMServer":
        """Restore a server saved by :meth:`save` (no model required)."""
        with np.load(Path(path)) as data:
            server = cls.__new__(cls)
            server._entity_table = data["entity_table"]
            server._relation_table = data["relation_table"]
            server._transfer = data["transfer"]
            server.k = int(data["k"][0])
            server.dim = server._entity_table.shape[1]
            server.num_entities = server._entity_table.shape[0]
            server.num_relations = server._relation_table.shape[0]
            server._selector = _FrozenSelector(
                dict(
                    zip(
                        (int(i) for i in data["item_ids"]),
                        (list(map(int, row)) for row in data["key_relations"]),
                    )
                ),
                server.k,
            )
        return server


class _FrozenSelector:
    """Key-relation lookup restored from a saved snapshot.

    Implements the subset of :class:`KeyRelationSelector` the server
    uses (``k``, ``for_item``, ``for_items``).
    """

    def __init__(self, table: Dict[int, List[int]], k: int) -> None:
        self._table = table
        self.k = k

    def for_item(self, entity_id: int) -> List[int]:
        if entity_id not in self._table:
            raise KeyError(f"entity {entity_id} is not a known item")
        return list(self._table[entity_id])

    def for_items(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.asarray([self.for_item(int(e)) for e in entity_ids], dtype=np.int64)
