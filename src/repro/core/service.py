"""The PKGM serving layer (paper §II-D and §II-E).

After pre-training, downstream tasks never touch triple data — they
receive *service vectors*:

* ``k`` triple-query vectors ``S_1..S_k = S_T(item, r_j)`` — candidate
  tail embeddings for the item's k key relations (completion included);
* ``k`` relation-query vectors ``S_{k+1}..S_{2k} = S_R(item, r_j)`` —
  near-zero iff the item has / should have relation ``r_j``.

Two integration recipes (§II-E):

* **sequence models** — append all ``2k`` vectors after the token
  embeddings (:meth:`PKGMServer.serve` provides them stacked);
* **single-embedding models** — condense to one vector (Eq. 8–9 /
  Eq. 20): ``S = (1/k) Σ_j [S_j ; S_{j+k}]`` (:meth:`PKGMServer.serve_condensed`).

:class:`PKGMServer` holds copies of the model parameters and the key
relation table only — it cannot answer symbolic queries, demonstrating
the paper's data-independence property.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .key_relations import KeyRelationSelector
from .pkgm import PKGM


class SnapshotError(RuntimeError):
    """A server snapshot is missing keys or has inconsistent shapes."""


@dataclass(frozen=True)
class ServiceVectors:
    """Service payload for one item.

    ``triple_vectors`` is (k, d) — ``S_1..S_k``;
    ``relation_vectors`` is (k, d) — ``S_{k+1}..S_{2k}``.

    ``degraded`` marks a fallback payload (unknown item or backend
    failure) synthesized by the reliability layer instead of computed
    from the model — downstream consumers can weigh or skip it.
    """

    entity_id: int
    key_relations: np.ndarray
    triple_vectors: np.ndarray
    relation_vectors: np.ndarray
    degraded: bool = False

    @property
    def k(self) -> int:
        return len(self.key_relations)

    @property
    def dim(self) -> int:
        return self.triple_vectors.shape[-1]

    def sequence(self) -> np.ndarray:
        """All 2k vectors in paper order (triple first), shape (2k, d)."""
        return np.concatenate([self.triple_vectors, self.relation_vectors], axis=0)

    def condensed(self) -> np.ndarray:
        """Eq. 8–9: ``S = (1/k) Σ_j [S_j ; S_{j+k}]``, shape (2d,)."""
        paired = np.concatenate(
            [self.triple_vectors, self.relation_vectors], axis=1
        )  # (k, 2d)
        return paired.mean(axis=0)


class PKGMServer:
    """Serves PKGM vectors without access to the triple store.

    Construction copies the embedding tables, transfer matrices and key
    relation table out of the trained model; the store itself is *not*
    retained (data protection / triple independence, §II-D).
    """

    def __init__(
        self,
        model: PKGM,
        selector: KeyRelationSelector,
    ) -> None:
        self.dim = model.config.dim
        self.k = selector.k
        self.num_entities = model.num_entities
        self.num_relations = model.num_relations
        # Snapshot parameters: the server must keep working even if the
        # model is further trained or discarded.
        self._entity_table = model.triple_module.entity_embeddings.weight.data.copy()
        self._relation_table = (
            model.triple_module.relation_embeddings.weight.data.copy()
        )
        self._transfer = model.relation_module.transfer_matrices.data.copy()
        self._selector = selector
        self._tail_index = None
        #: The backing :class:`repro.store.EmbeddingStore`, when the
        #: server was restored via :meth:`from_store`; ``None`` for
        #: resident servers.
        self.store = None
        #: Items whose selector rows were quarantined at
        #: :meth:`from_store` time (0 for resident servers).
        self.unreadable_items = 0

    # ------------------------------------------------------------------
    # Snapshot table views (read-only by convention)
    # ------------------------------------------------------------------
    @property
    def entity_table(self) -> np.ndarray:
        """The served entity-embedding table.  Consumers that seed new
        systems from a trained snapshot (e.g. ``repro stream run
        --from-checkpoint``) read through these views instead of the
        private attributes."""
        return self._entity_table

    @property
    def relation_table(self) -> np.ndarray:
        """The served relation-embedding table."""
        return self._relation_table

    @property
    def transfer_tensor(self) -> np.ndarray:
        """The served per-relation transfer matrices ``M_r``."""
        return self._transfer

    # ------------------------------------------------------------------
    # Raw module services for arbitrary (h, r)
    # ------------------------------------------------------------------
    def triple_service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_T(h, r) = h + r`` on the snapshot."""
        heads, relations = np.asarray(heads), np.asarray(relations)
        return self._entity_table[heads] + self._relation_table[relations]

    def relation_service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_R(h, r) = M_r h - r`` on the snapshot."""
        heads, relations = np.asarray(heads), np.asarray(relations)
        h = self._entity_table[heads]
        transformed = np.einsum("...ij,...j->...i", self._transfer[relations], h)
        return transformed - self._relation_table[relations]

    # ------------------------------------------------------------------
    # Item-level service with key relations
    # ------------------------------------------------------------------
    def serve(self, entity_id: int) -> ServiceVectors:
        """All 2k service vectors for one item."""
        relations = np.asarray(self._selector.for_item(entity_id), dtype=np.int64)
        heads = np.full(len(relations), entity_id, dtype=np.int64)
        return ServiceVectors(
            entity_id=entity_id,
            key_relations=relations,
            triple_vectors=self.triple_service(heads, relations),
            relation_vectors=self.relation_service(heads, relations),
        )

    def serve_batch(self, entity_ids: Sequence[int]) -> List[ServiceVectors]:
        """Service vectors for a batch of items."""
        return [self.serve(int(e)) for e in entity_ids]

    def serve_sequence_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Sequence-model payload: (batch, 2k, d) in paper order."""
        relations = self._selector.for_items(entity_ids)  # (B, k)
        heads = np.repeat(
            np.asarray(entity_ids, dtype=np.int64)[:, None], self.k, axis=1
        )
        triple = self.triple_service(heads, relations)  # (B, k, d)
        relation = self.relation_service(heads, relations)  # (B, k, d)
        return np.concatenate([triple, relation], axis=1)

    def serve_condensed_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Single-embedding payload (Eq. 20): (batch, 2d)."""
        relations = self._selector.for_items(entity_ids)
        heads = np.repeat(
            np.asarray(entity_ids, dtype=np.int64)[:, None], self.k, axis=1
        )
        triple = self.triple_service(heads, relations)  # (B, k, d)
        relation = self.relation_service(heads, relations)  # (B, k, d)
        paired = np.concatenate([triple, relation], axis=2)  # (B, k, 2d)
        return paired.mean(axis=1)

    def relation_existence_scores(
        self, entity_ids: Sequence[int], relations: Sequence[int]
    ) -> np.ndarray:
        """Batched L1 norms of ``S_R`` — one einsum pass, no item loop.

        ``entity_ids`` and ``relations`` pair up elementwise; the result
        is one score per pair.  Small means the relation (should) EXIST
        (§II-D).
        """
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        if entity_ids.shape != relations.shape:
            raise ValueError(
                f"entity_ids {entity_ids.shape} and relations "
                f"{relations.shape} must pair up elementwise"
            )
        return np.abs(self.relation_service(entity_ids, relations)).sum(axis=-1)

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        """L1 norm of ``S_R`` — small means (should) EXIST (§II-D)."""
        return float(
            self.relation_existence_scores([entity_id], [relation])[0]
        )

    def known_items(self) -> List[int]:
        """All item ids this server can answer for, ascending."""
        return self._selector.items()

    # ------------------------------------------------------------------
    # Retrieval: turn inferred tail embeddings back into entities
    # ------------------------------------------------------------------
    def build_tail_index(
        self,
        kind: str = "flat",
        metric: str = "l1",
        entity_ids: Optional[Sequence[int]] = None,
        registry=None,
        **params,
    ):
        """Build (and retain) a vector index over the entity table.

        ``kind`` is one of ``repro.index.INDEX_KINDS``; ``metric``
        defaults to L1, the TransE energy the triple module was trained
        under.  ``entity_ids`` restricts the retrieval corpus (e.g. to
        :meth:`known_items` for item-to-item queries); the default
        indexes every entity.  Extra ``params`` (``nlist``, ``nprobe``,
        ``m``, ``ksub``, ``seed``, …) pass through to the index
        constructor.  Returns the index, which :meth:`nearest_tails`
        uses until a new one is built.
        """
        # Imported lazily: repro.index reaches repro.reliability (for
        # snapshot atomics), which imports repro.core at init time.
        from ..index import INDEX_KINDS

        if kind not in INDEX_KINDS:
            raise ValueError(
                f"kind must be one of {sorted(INDEX_KINDS)}, got {kind!r}"
            )
        if entity_ids is None:
            ids = np.arange(self.num_entities, dtype=np.int64)
        else:
            ids = np.asarray(entity_ids, dtype=np.int64)
        vectors = self._entity_table[ids]
        index = INDEX_KINDS[kind](
            dim=self.dim, metric=metric, registry=registry, **params
        )
        if hasattr(index, "build"):
            index.build(vectors, ids)
        else:
            index.add(vectors, ids)
        self._tail_index = index
        return index

    @property
    def tail_index(self):
        """The retrieval index, or ``None`` before the first build."""
        return self._tail_index

    def nearest_tails_batch(
        self,
        heads: Sequence[int],
        relations: Sequence[int],
        k: int = 10,
    ):
        """Entities nearest each inferred tail ``S_T(h, r) = h + r``.

        Searches the tail index (building an exact Flat/L1 one on first
        use) and returns ``(distances, entity_ids)``, both (B, k) —
        the candidate-generation primitive behind link prediction and
        "similar items".
        """
        if self._tail_index is None:
            self.build_tail_index()
        queries = self.triple_service(
            np.asarray(heads, dtype=np.int64),
            np.asarray(relations, dtype=np.int64),
        )
        return self._tail_index.search(np.atleast_2d(queries), k)

    def nearest_tails(self, head: int, relation: int, k: int = 10):
        """Single-query :meth:`nearest_tails_batch`: two (k,) arrays."""
        distances, ids = self.nearest_tails_batch([head], [relation], k)
        return distances[0], ids[0]

    # ------------------------------------------------------------------
    # Deployment: persist / restore the snapshot
    # ------------------------------------------------------------------
    SNAPSHOT_KEYS = (
        "entity_table",
        "relation_table",
        "transfer",
        "item_ids",
        "key_relations",
        "k",
    )

    def save(self, path: Union[str, Path]) -> None:
        """Persist the full service snapshot to one compressed npz file.

        The saved artifact is exactly what a production deployment needs:
        the embedding tables, transfer matrices, and the per-item key
        relation assignments — no triple data, no training code.  The
        write is atomic (tmp → fsync → rename), so a crash mid-save
        cannot tear an existing deployment artifact.
        """
        # Imported lazily: repro.reliability imports repro.core at
        # package-init time, so a module-scope import here would cycle.
        from ..reliability.checkpoint import atomic_save_npz

        item_ids = self._selector.items()
        key_table = np.asarray(
            [self._selector.for_item(item) for item in item_ids], dtype=np.int64
        )
        atomic_save_npz(
            Path(path),
            {
                "entity_table": self._entity_table,
                "relation_table": self._relation_table,
                "transfer": self._transfer,
                "item_ids": np.asarray(item_ids, dtype=np.int64),
                "key_relations": key_table,
                "k": np.asarray([self.k]),
            },
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PKGMServer":
        """Restore a server saved by :meth:`save` (no model required).

        Validates the payload before constructing anything: missing
        keys and inconsistent table shapes raise :class:`SnapshotError`
        naming the offending key, never a raw ``KeyError``.
        """
        with np.load(Path(path)) as data:
            present = set(data.files)
            for key in cls.SNAPSHOT_KEYS:
                if key not in present:
                    raise SnapshotError(
                        f"snapshot {Path(path).name} is missing key {key!r}"
                    )
            entity_table = data["entity_table"]
            relation_table = data["relation_table"]
            transfer = data["transfer"]
            item_ids = data["item_ids"]
            key_relations = data["key_relations"]
            k = int(data["k"][0])

        if entity_table.ndim != 2:
            raise SnapshotError(
                f"'entity_table' must be 2-D, got shape {entity_table.shape}"
            )
        dim = entity_table.shape[1]
        if relation_table.ndim != 2 or relation_table.shape[1] != dim:
            raise SnapshotError(
                f"'relation_table' shape {relation_table.shape} does not "
                f"match entity dim {dim}"
            )
        if transfer.shape != (relation_table.shape[0], dim, dim):
            raise SnapshotError(
                f"'transfer' shape {transfer.shape} != expected "
                f"{(relation_table.shape[0], dim, dim)}"
            )
        if key_relations.ndim != 2 or key_relations.shape != (len(item_ids), k):
            raise SnapshotError(
                f"'key_relations' shape {key_relations.shape} != expected "
                f"{(len(item_ids), k)}"
            )
        if len(key_relations) and key_relations.size:
            out_of_range = (key_relations < 0) | (
                key_relations >= relation_table.shape[0]
            )
            if np.any(out_of_range):
                raise SnapshotError(
                    "'key_relations' references relation ids outside "
                    f"[0, {relation_table.shape[0]})"
                )

        server = cls.__new__(cls)
        server._tail_index = None
        server.store = None
        server.unreadable_items = 0
        server._entity_table = entity_table
        server._relation_table = relation_table
        server._transfer = transfer
        server.k = k
        server.dim = dim
        server.num_entities = entity_table.shape[0]
        server.num_relations = relation_table.shape[0]
        server._selector = _FrozenSelector(
            dict(
                zip(
                    (int(i) for i in item_ids),
                    (list(map(int, row)) for row in key_relations),
                )
            ),
            k,
        )
        return server

    # ------------------------------------------------------------------
    # Out-of-core deployment: the snapshot as an embedding store
    # ------------------------------------------------------------------
    def save_store(
        self,
        directory: Union[str, Path],
        *,
        num_shards: int = 1,
        page_bytes: Optional[int] = None,
        registry=None,
    ):
        """Persist the snapshot as a :class:`repro.store.EmbeddingStore`.

        Same payload as :meth:`save`, different medium: checksummed
        binary shard files under a self-verified manifest instead of
        one npz.  A server restored with :meth:`from_store` then pages
        rows in on demand, so the catalog no longer has to fit in RAM.
        Returns the built (open) store.

        The tables go through the streaming build path in bounded
        chunks, so peak build memory is one chunk — not one table —
        while the files stay byte-identical to an in-RAM build.
        """
        # Imported lazily: repro.store sits on repro.core.cache and
        # repro.reliability, both of which import repro.core first.
        from ..store import DEFAULT_PAGE_BYTES, EmbeddingStore, RowSource

        item_ids = self._selector.items()
        key_table = np.asarray(
            [self._selector.for_item(item) for item in item_ids], dtype=np.int64
        ).reshape(len(item_ids), self.k)
        sources = {
            "entity_table": np.asarray(self._entity_table),
            "relation_table": np.asarray(self._relation_table),
            "transfer": np.asarray(self._transfer),
            "item_ids": np.asarray(item_ids, dtype=np.int64),
            "key_relations": key_table,
        }
        return EmbeddingStore.build_from_rows(
            directory,
            {
                name: RowSource.from_array(
                    array,
                    chunk_rows=max(
                        1, (1 << 20) // max(1, array[:1].nbytes)
                    ),
                )
                for name, array in sources.items()
            },
            num_shards=num_shards,
            page_bytes=DEFAULT_PAGE_BYTES if page_bytes is None else page_bytes,
            metadata={"kind": "pkgm-server", "k": self.k, "dim": self.dim},
            registry=registry,
        )

    @classmethod
    def from_store(
        cls,
        directory: Union[str, Path],
        *,
        cache_pages: int = 64,
        registry=None,
    ) -> "PKGMServer":
        """Cold-start a server over a store written by :meth:`save_store`.

        Only the manifest and the (small) key-relation tables are read
        eagerly; the embedding tables stay on disk behind
        :class:`repro.store.StoreTable` views, paged in through an LRU
        cache of ``cache_pages`` pages.  Service results are
        bit-identical to the in-RAM server the store was built from —
        unless a page is quarantined, in which case lookups raise
        :class:`repro.store.QuarantinedRowError` for the resilient
        facade to resolve.  Schema damage raises :class:`SnapshotError`.
        """
        from ..store import EmbeddingStore, QuarantinedRowError, StoreTable

        store = EmbeddingStore.open(
            directory, cache_pages=cache_pages, registry=registry
        )
        names = set(store.table_names())
        for key in ("entity_table", "relation_table", "transfer",
                    "item_ids", "key_relations"):
            if key not in names:
                raise SnapshotError(f"store is missing table {key!r}")
        metadata = store.metadata
        if metadata.get("kind") != "pkgm-server":
            raise SnapshotError(
                f"store metadata kind {metadata.get('kind')!r} is not "
                f"'pkgm-server'"
            )
        entity_spec = store.spec("entity_table")
        relation_spec = store.spec("relation_table")
        transfer_spec = store.spec("transfer")
        if len(entity_spec.row_shape) != 1:
            raise SnapshotError(
                f"'entity_table' rows must be 1-D, got {entity_spec.row_shape}"
            )
        dim = entity_spec.row_shape[0]
        if relation_spec.row_shape != (dim,):
            raise SnapshotError(
                f"'relation_table' row shape {relation_spec.row_shape} does "
                f"not match entity dim {dim}"
            )
        if transfer_spec.row_shape != (dim, dim) or (
            transfer_spec.rows != relation_spec.rows
        ):
            raise SnapshotError(
                f"'transfer' geometry {transfer_spec.shape} != expected "
                f"{(relation_spec.rows, dim, dim)}"
            )
        k = int(metadata.get("k", 0))
        item_spec = store.spec("item_ids")
        key_spec = store.spec("key_relations")
        if key_spec.rows != item_spec.rows or key_spec.row_shape != (k,):
            raise SnapshotError(
                f"'key_relations' geometry {key_spec.shape} != expected "
                f"{(item_spec.rows, k)}"
            )
        # Selector tables are tiny relative to the embeddings; read them
        # resident so item enumeration never faults pages.  Reads are
        # per-row and quarantine-tolerant: a damaged selector page costs
        # only the items on it (they serve the unknown-item fallback
        # until repair), never the cold start itself.
        table: Dict[int, List[int]] = {}
        unreadable = 0
        for row in range(item_spec.rows):
            try:
                item = int(store.read_row("item_ids", row)[()])
                relations = store.read_row("key_relations", row)
            except QuarantinedRowError:
                unreadable += 1
                continue
            table[item] = [int(r) for r in relations]
        server = cls.__new__(cls)
        server._tail_index = None
        server._entity_table = StoreTable(store, "entity_table")
        server._relation_table = StoreTable(store, "relation_table")
        server._transfer = StoreTable(store, "transfer")
        server.k = k
        server.dim = dim
        server.num_entities = entity_spec.rows
        server.num_relations = relation_spec.rows
        server._selector = _FrozenSelector(table, k)
        server.store = store
        server.unreadable_items = unreadable
        return server


class _FrozenSelector:
    """Key-relation lookup restored from a saved snapshot.

    Implements the subset of :class:`KeyRelationSelector` the server
    uses (``k``, ``for_item``, ``for_items``, ``items``,
    ``key_relation_table``) — in particular the public enumeration API,
    so a loaded server can be saved again (save → load → save).
    """

    def __init__(self, table: Dict[int, List[int]], k: int) -> None:
        self._table = table
        self.k = k

    def for_item(self, entity_id: int) -> List[int]:
        if entity_id not in self._table:
            raise KeyError(f"entity {entity_id} is not a known item")
        return list(self._table[entity_id])

    def for_items(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.asarray([self.for_item(int(e)) for e in entity_ids], dtype=np.int64)

    def items(self) -> List[int]:
        """All known item entity ids, ascending."""
        return sorted(self._table)

    def key_relation_table(self) -> Dict[int, List[int]]:
        """The full item → key-relations mapping as plain data."""
        return {item: self.for_item(item) for item in self.items()}
