"""PKGM core: the paper's primary contribution.

Triple and relation query modules, the joint margin-loss pre-training,
key-relation selection, and the service-vector API that downstream
tasks consume instead of triple data.
"""

from .cache import CachedPKGMServer, CacheStats
from .key_relations import KeyRelationSelector
from .modules import RelationQueryModule, TripleQueryModule
from .pkgm import PKGM, PKGMConfig
from .service import PKGMServer, ServiceVectors, SnapshotError
from .trainer import PKGMTrainer, TrainerConfig, TrainingHistory, pretrain_pkgm

__all__ = [
    "CacheStats",
    "CachedPKGMServer",
    "KeyRelationSelector",
    "PKGM",
    "PKGMConfig",
    "PKGMServer",
    "PKGMTrainer",
    "RelationQueryModule",
    "ServiceVectors",
    "SnapshotError",
    "TrainerConfig",
    "TrainingHistory",
    "TripleQueryModule",
    "pretrain_pkgm",
]
