"""Serving-side LRU cache for PKGM service vectors.

Production knowledge services sit behind caches: item service vectors
are immutable between model refreshes, and request traffic is heavily
skewed toward popular items.  :class:`CachedPKGMServer` wraps any
server exposing the :class:`repro.core.PKGMServer` surface with a
bounded LRU and hit-rate accounting, and invalidates wholesale on
model refresh (:meth:`refresh`).

Hit/miss/eviction accounting lives in a
:class:`repro.obs.metrics.MetricsRegistry` (``cache.hits``,
``cache.misses``, ``cache.evictions``, ``cache.refreshes``, plus
``cache.size``/``cache.capacity`` gauges); the legacy surface —
``hits``/``misses``/``evictions`` attributes, :meth:`reset_stats`,
and the :class:`CacheStats` snapshot — is preserved as views over the
registry, so existing callers and dashboards keep working.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence

import numpy as np

from .service import PKGMServer, ServiceVectors


class LRUDict:
    """A bounded least-recently-used mapping (OrderedDict idiom).

    The recency discipline shared by the service-vector cache below and
    the :mod:`repro.store` page cache: :meth:`get` refreshes an entry,
    :meth:`put` inserts and returns however many cold entries were
    evicted to stay within ``capacity``, and :meth:`peek` reads without
    touching recency — the degraded-mode probe.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The entry for ``key`` (refreshed), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The entry for ``key`` without touching the LRU order."""
        return self._entries.get(key)

    def put(self, key: Hashable, value: Any) -> int:
        """Insert (or refresh) an entry; returns the eviction count."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def discard(self, key: Hashable) -> None:
        """Drop one entry if present (repair invalidation)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class CacheStats:
    """Cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_row(self) -> str:
        return (
            f"cache {self.size}/{self.capacity} | hits {self.hits} | "
            f"misses {self.misses} | evictions {self.evictions} | "
            f"hit-rate {self.hit_rate:.2%}"
        )


class CachedPKGMServer:
    """LRU-cached facade over a :class:`PKGMServer`.

    Only :meth:`serve` results are cached (they dominate production
    traffic); batch helpers reuse the same cache entry per item, so a
    warm cache accelerates them too.

    ``registry`` is an optional shared
    :class:`repro.obs.metrics.MetricsRegistry`; without one the cache
    keeps a private registry so the accounting surface is identical
    either way.
    """

    def __init__(self, server: PKGMServer, capacity: int = 1024, registry=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if registry is None:
            # Local import: repro.obs is a leaf package, but this module
            # is imported by repro.reliability (whose serving facade the
            # obs workloads drive) — a top-level import would be a cycle.
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        self._server = server
        self._capacity = capacity
        self._cache = LRUDict(capacity)
        self._hits_c = registry.counter("cache.hits", help="Cache hits")
        self._misses_c = registry.counter("cache.misses", help="Cache misses")
        self._evictions_c = registry.counter("cache.evictions", help="LRU evictions")
        self._refreshes_c = registry.counter(
            "cache.refreshes", help="Model-refresh invalidations"
        )
        self._size_g = registry.gauge("cache.size", help="Entries currently cached")
        self._capacity_g = registry.gauge("cache.capacity", help="LRU capacity")
        self._capacity_g.set(capacity)

    # ------------------------------------------------------------------
    # PKGMServer surface
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._server.k

    @property
    def dim(self) -> int:
        return self._server.dim

    @property
    def num_entities(self) -> int:
        return self._server.num_entities

    @property
    def num_relations(self) -> int:
        return self._server.num_relations

    def serve(self, entity_id: int) -> ServiceVectors:
        entity_id = int(entity_id)
        cached = self._cache.get(entity_id)
        if cached is not None:
            self._hits_c.inc()
            return cached
        self._misses_c.inc()
        vectors = self._server.serve(entity_id)
        if not vectors.degraded:
            # A degraded payload is an outage artifact, not model output:
            # caching it would keep serving the fallback long after the
            # backend recovered.  Let the next request retry live.
            evicted = self._cache.put(entity_id, vectors)
            if evicted:
                self._evictions_c.inc(evicted)
            self._size_g.set(len(self._cache))
        return vectors

    def serve_batch(self, entity_ids: Sequence[int]) -> List[ServiceVectors]:
        return [self.serve(int(e)) for e in entity_ids]

    def serve_sequence_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.stack([self.serve(int(e)).sequence() for e in entity_ids])

    def serve_condensed_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.stack([self.serve(int(e)).condensed() for e in entity_ids])

    def triple_service(self, heads, relations) -> np.ndarray:
        return self._server.triple_service(heads, relations)

    def relation_service(self, heads, relations) -> np.ndarray:
        return self._server.relation_service(heads, relations)

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        return self._server.relation_existence_score(entity_id, relation)

    def relation_existence_scores(self, entity_ids, relations) -> np.ndarray:
        return self._server.relation_existence_scores(entity_ids, relations)

    def known_items(self) -> List[int]:
        return self._server.known_items()

    def build_tail_index(self, **kwargs):
        return self._server.build_tail_index(**kwargs)

    @property
    def tail_index(self):
        return self._server.tail_index

    def nearest_tails(self, head: int, relation: int, k: int = 10):
        return self._server.nearest_tails(head, relation, k)

    def nearest_tails_batch(self, heads, relations, k: int = 10):
        return self._server.nearest_tails_batch(heads, relations, k)

    # ------------------------------------------------------------------
    # Accounting views (legacy attribute surface over the registry)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Cache hits since the last stats reset."""
        return self._hits_c.value

    @property
    def misses(self) -> int:
        """Cache misses since the last stats reset."""
        return self._misses_c.value

    @property
    def evictions(self) -> int:
        """LRU evictions since the last stats reset."""
        return self._evictions_c.value

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def peek(self, entity_id: int) -> Optional[ServiceVectors]:
        """The cached entry for an item, or ``None`` — without touching
        the backing server, the LRU order, or the hit/miss counters.

        This is the degraded-mode read path: when the backing server is
        down, stale-but-valid vectors beat no vectors.
        """
        return self._cache.peek(int(entity_id))

    def refresh(self, server: PKGMServer, reset_stats: bool = True) -> None:
        """Swap in a newly trained server and drop every cached entry.

        Counters describe the server generation they accumulated under,
        so they reset with it by default; pass ``reset_stats=False`` to
        keep lifetime totals across refreshes.  ``cache.refreshes`` is a
        lifetime counter and survives either way.
        """
        self._server = server
        self._cache.clear()
        self._size_g.set(0)
        self._refreshes_c.inc()
        if reset_stats:
            self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self._hits_c.reset()
        self._misses_c.reset()
        self._evictions_c.reset()

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits_c.value,
            misses=self._misses_c.value,
            evictions=self._evictions_c.value,
            size=len(self._cache),
            capacity=self._capacity,
        )
