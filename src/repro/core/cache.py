"""Serving-side LRU cache for PKGM service vectors.

Production knowledge services sit behind caches: item service vectors
are immutable between model refreshes, and request traffic is heavily
skewed toward popular items.  :class:`CachedPKGMServer` wraps any
server exposing the :class:`repro.core.PKGMServer` surface with a
bounded LRU and hit-rate accounting, and invalidates wholesale on
model refresh (:meth:`refresh`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .service import PKGMServer, ServiceVectors


@dataclass(frozen=True)
class CacheStats:
    """Cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_row(self) -> str:
        return (
            f"cache {self.size}/{self.capacity} | hits {self.hits} | "
            f"misses {self.misses} | evictions {self.evictions} | "
            f"hit-rate {self.hit_rate:.2%}"
        )


class CachedPKGMServer:
    """LRU-cached facade over a :class:`PKGMServer`.

    Only :meth:`serve` results are cached (they dominate production
    traffic); batch helpers reuse the same cache entry per item, so a
    warm cache accelerates them too.
    """

    def __init__(self, server: PKGMServer, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._server = server
        self._capacity = capacity
        self._cache: "OrderedDict[int, ServiceVectors]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # PKGMServer surface
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._server.k

    @property
    def dim(self) -> int:
        return self._server.dim

    @property
    def num_entities(self) -> int:
        return self._server.num_entities

    @property
    def num_relations(self) -> int:
        return self._server.num_relations

    def serve(self, entity_id: int) -> ServiceVectors:
        entity_id = int(entity_id)
        cached = self._cache.get(entity_id)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(entity_id)
            return cached
        self._misses += 1
        vectors = self._server.serve(entity_id)
        if not vectors.degraded:
            # A degraded payload is an outage artifact, not model output:
            # caching it would keep serving the fallback long after the
            # backend recovered.  Let the next request retry live.
            self._cache[entity_id] = vectors
            if len(self._cache) > self._capacity:
                self._cache.popitem(last=False)
                self._evictions += 1
        return vectors

    def serve_batch(self, entity_ids: Sequence[int]) -> List[ServiceVectors]:
        return [self.serve(int(e)) for e in entity_ids]

    def serve_sequence_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.stack([self.serve(int(e)).sequence() for e in entity_ids])

    def serve_condensed_batch(self, entity_ids: Sequence[int]) -> np.ndarray:
        return np.stack([self.serve(int(e)).condensed() for e in entity_ids])

    def triple_service(self, heads, relations) -> np.ndarray:
        return self._server.triple_service(heads, relations)

    def relation_service(self, heads, relations) -> np.ndarray:
        return self._server.relation_service(heads, relations)

    def relation_existence_score(self, entity_id: int, relation: int) -> float:
        return self._server.relation_existence_score(entity_id, relation)

    def known_items(self) -> List[int]:
        return self._server.known_items()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def peek(self, entity_id: int) -> Optional[ServiceVectors]:
        """The cached entry for an item, or ``None`` — without touching
        the backing server, the LRU order, or the hit/miss counters.

        This is the degraded-mode read path: when the backing server is
        down, stale-but-valid vectors beat no vectors.
        """
        return self._cache.get(int(entity_id))

    def refresh(self, server: PKGMServer, reset_stats: bool = True) -> None:
        """Swap in a newly trained server and drop every cached entry.

        Counters describe the server generation they accumulated under,
        so they reset with it by default; pass ``reset_stats=False`` to
        keep lifetime totals across refreshes.
        """
        self._server = server
        self._cache.clear()
        if reset_stats:
            self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
            capacity=self._capacity,
        )
