"""The Pre-trained Knowledge Graph Model (paper §II).

Combines the triple query module and the relation query module under
the joint score ``f(h,r,t) = f_T(h,r,t) + f_R(h,r)`` (Eq. 3), trained
with the margin loss of Eq. 4–5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Module, Tensor
from ..nn import functional as F
from .modules import RelationQueryModule, TripleQueryModule


@dataclass(frozen=True)
class PKGMConfig:
    """PKGM hyperparameters.

    Paper values: ``dim=64``, margin not reported (we default to 2.0),
    Adam lr ``1e-4``, batch 1000, 1 negative per edge, 2 epochs.  At
    synthetic scale the loops in :mod:`repro.core.trainer` default to
    more epochs since each one is cheap.
    """

    dim: int = 64
    margin: float = 2.0
    relation_matrix_init_noise: float = 0.01

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.margin <= 0:
            raise ValueError("margin must be positive")


class PKGM(Module):
    """Joint PKGM model: Eq. 3 scoring over both modules."""

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        config: Optional[PKGMConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else PKGMConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.triple_module = TripleQueryModule(
            num_entities, num_relations, self.config.dim, rng=rng
        )
        self.relation_module = RelationQueryModule(
            self.triple_module,
            rng=rng,
            init_noise=self.config.relation_matrix_init_noise,
        )

    # ------------------------------------------------------------------
    # Pre-training scores
    # ------------------------------------------------------------------
    def score(self, triples: np.ndarray) -> Tensor:
        """``f(h,r,t) = f_T(h,r,t) + f_R(h,r)`` (Eq. 3) for (N, 3) ids."""
        triples = np.asarray(triples, dtype=np.int64)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise ValueError(f"expected (N, 3) triples, got {triples.shape}")
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        f_triple = self.triple_module.score(heads, relations, tails)
        f_rel = self.relation_module.score(heads, relations)
        return f_triple + f_rel

    def forward(self, triples: np.ndarray) -> Tensor:
        return self.score(triples)

    def margin_loss(self, positives: np.ndarray, negatives: np.ndarray) -> Tensor:
        """Eq. 4: ``sum [f(pos) + margin - f(neg)]_+`` over the batch.

        ``negatives`` may be (N, 3) or (K, N, 3); with K corruptions per
        positive, each is compared against its positive.
        """
        negatives = np.asarray(negatives, dtype=np.int64)
        pos_scores = self.score(positives)
        if negatives.ndim == 2:
            neg_scores = self.score(negatives)
            return F.margin_ranking_loss(
                pos_scores, neg_scores, margin=self.config.margin, reduction="sum"
            )
        total: Optional[Tensor] = None
        for k in range(negatives.shape[0]):
            neg_scores = self.score(negatives[k])
            term = F.margin_ranking_loss(
                pos_scores, neg_scores, margin=self.config.margin, reduction="sum"
            )
            total = term if total is None else total + term
        return total

    # ------------------------------------------------------------------
    # Servicing (Table I, right column) — numpy, no autograd
    # ------------------------------------------------------------------
    def service_triple(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_T(h,r) = h + r`` (Eq. 6)."""
        return self.triple_module.service(heads, relations)

    def service_relation(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_R(h,r) = M_r h - r`` (Eq. 7)."""
        return self.relation_module.service(heads, relations)

    def nearest_entities(
        self,
        query_vectors: np.ndarray,
        k: int = 10,
        candidate_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Entities whose embeddings are L1-closest to each query vector.

        Decodes the output of :meth:`service_triple` back to symbolic
        entity ids; used to evaluate completion-during-service.  Returns
        an (N, k) array of entity ids, nearest first.
        """
        query_vectors = np.atleast_2d(np.asarray(query_vectors))
        table = self.triple_module.entity_embeddings.weight.data
        if candidate_ids is not None:
            candidate_ids = np.asarray(candidate_ids)
            table = table[candidate_ids]
        k = min(k, len(table))
        # (N, E) L1 distances, chunked to bound memory.
        results = []
        for query in query_vectors:
            distances = np.abs(table - query).sum(axis=1)
            top = np.argpartition(distances, k - 1)[:k]
            top = top[np.argsort(distances[top])]
            if candidate_ids is not None:
                top = candidate_ids[top]
            results.append(top)
        return np.stack(results)

    def renormalize_entities(self, max_norm: float = 1.0) -> None:
        """Apply TransE's entity-norm constraint (call once per batch)."""
        self.triple_module.renormalize_entities(max_norm)
