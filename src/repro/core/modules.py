"""PKGM's two query modules (paper §II-A and §II-B, Table I).

* :class:`TripleQueryModule` — TransE: pre-training scores
  ``f_T(h,r,t) = ||h + r - t||_1`` (Eq. 1); servicing returns
  ``S_T(h,r) = h + r`` (Eq. 6), the (possibly inferred) tail embedding.
* :class:`RelationQueryModule` — a transfer matrix ``M_r`` per relation:
  pre-training scores ``f_R(h,r) = ||M_r h - r||_1`` (Eq. 2); servicing
  returns ``S_R(h,r) = M_r h - r`` (Eq. 7), which approaches the zero
  vector (the EXIST embedding) iff ``h`` has — or should have — ``r``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, Module, Parameter, Tensor
from ..nn import functional as F
from ..nn import init


class TripleQueryModule(Module):
    """TransE-style triple encoder (Eq. 1 / Eq. 6).

    Parameters
    ----------
    num_entities, num_relations:
        Id-space sizes of the product KG.
    dim:
        Embedding dimension (the paper used 64).
    rng:
        Generator for the TransE uniform initialization.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embeddings = Embedding(
            num_entities, dim, rng=rng, init_fn=init.transe_embedding
        )
        self.relation_embeddings = Embedding(
            num_relations, dim, rng=rng, init_fn=init.transe_embedding
        )

    def score(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        """``f_T(h, r, t) = ||h + r - t||_1`` for a batch of triples."""
        h = self.entity_embeddings(heads)
        r = self.relation_embeddings(relations)
        t = self.entity_embeddings(tails)
        return F.l1_norm(h + r - t, axis=-1)

    def forward(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        return self.score(heads, relations, tails)

    def service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_T(h, r) = h + r`` (Eq. 6) — no gradient, pure lookup math.

        The returned array approximates the tail-entity embedding even
        when no triple ``(h, r, ?)`` exists in the KG — the completion
        capability of §II-D.
        """
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        h = self.entity_embeddings.weight.data[heads]
        r = self.relation_embeddings.weight.data[relations]
        return h + r

    def renormalize_entities(self, max_norm: float = 1.0) -> None:
        """TransE's unit-ball constraint on entity embeddings."""
        self.entity_embeddings.renormalize(max_norm)


class RelationQueryModule(Module):
    """Relation-existence encoder (Eq. 2 / Eq. 7).

    Owns one ``dim x dim`` transfer matrix per relation, initialized
    near the identity so early scores stay well conditioned.  Shares the
    entity and relation embeddings of a :class:`TripleQueryModule`.
    """

    def __init__(
        self,
        triple_module: TripleQueryModule,
        rng: Optional[np.random.Generator] = None,
        init_noise: float = 0.01,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.triple_module = triple_module
        self.dim = triple_module.dim
        self.num_relations = triple_module.num_relations
        self.transfer_matrices = Parameter(
            init.identity_stack(
                self.num_relations, self.dim, noise_std=init_noise, rng=rng
            )
        )

    def transform(self, heads: np.ndarray, relations: np.ndarray) -> Tensor:
        """``M_r h - r`` with autograd, shape (batch, dim)."""
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        h = self.triple_module.entity_embeddings(heads)  # (B, d)
        r = self.triple_module.relation_embeddings(relations)  # (B, d)
        matrices = self.transfer_matrices.take_rows(relations)  # (B, d, d)
        transformed = (matrices @ h.reshape(*heads.shape, self.dim, 1)).reshape(
            *heads.shape, self.dim
        )
        return transformed - r

    def score(self, heads: np.ndarray, relations: np.ndarray) -> Tensor:
        """``f_R(h, r) = ||M_r h - r||_1`` for a batch."""
        return F.l1_norm(self.transform(heads, relations), axis=-1)

    def forward(self, heads: np.ndarray, relations: np.ndarray) -> Tensor:
        return self.score(heads, relations)

    def service(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """``S_R(h, r) = M_r h - r`` (Eq. 7) — numpy only, no gradient.

        Near-zero output encodes EXIST; far-from-zero encodes that ``h``
        should not have relation ``r`` (§II-D case analysis).
        """
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        h = self.triple_module.entity_embeddings.weight.data[heads]
        r = self.triple_module.relation_embeddings.weight.data[relations]
        matrices = self.transfer_matrices.data[relations]
        transformed = np.einsum("...ij,...j->...i", matrices, h)
        return transformed - r
