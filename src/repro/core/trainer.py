"""PKGM pre-training loop (paper §III-A2).

The paper trained with TensorFlow + Graph-learn on 50 parameter servers
and 200 workers (88 GB of parameters, 15 h, 2 epochs, Adam lr 1e-4,
batch 1000, 1 negative per edge).  :class:`PKGMTrainer` reproduces the
same optimization — edge sampling, uniform negatives, margin loss,
Adam — as a single-process loop sized for the synthetic KG.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..kg import EdgeSampler, TripleStore
from ..nn import Adam, no_grad, sanitizer
from .pkgm import PKGM, PKGMConfig


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization knobs for PKGM pre-training."""

    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 1e-2
    negatives_per_edge: int = 1
    corrupt_relation_prob: float = 0.1
    filtered_negatives: bool = False
    entity_max_norm: Optional[float] = 1.0
    numeric_guard: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.negatives_per_edge < 1:
            raise ValueError("negatives_per_edge must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch mean margin loss, for convergence checks and plots."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    def improved(self) -> bool:
        """Whether loss decreased from the first to the last epoch."""
        return len(self.epoch_losses) >= 2 and (
            self.epoch_losses[-1] < self.epoch_losses[0]
        )


class PKGMTrainer:
    """Pre-trains a :class:`PKGM` on a triple store.

    With ``checkpoint_dir`` set, the trainer writes a crash-consistent
    snapshot (model parameters, Adam moments, sampler RNG state, loss
    history — see :mod:`repro.reliability.checkpoint`) every
    ``checkpoint_every`` epochs, and a later trainer pointed at the
    same directory resumes the run *bit-exactly*: a killed 30-epoch job
    restarted from epoch 12 produces the same final tables as one that
    never died.
    """

    def __init__(
        self,
        model: PKGM,
        config: Optional[TrainerConfig] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        resume: bool = True,
        registry=None,
        tracer=None,
        profiler=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._manager = None
        if checkpoint_dir is not None:
            from ..reliability.checkpoint import CheckpointManager

            self._manager = CheckpointManager(checkpoint_dir)
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        # Observability wiring (repro.obs) — all optional, all no-ops
        # when absent.  The tracer and profiler share one virtual
        # timeline so span durations and phase steps line up.
        self.metrics = registry
        self.tracer = tracer
        self.profiler = profiler
        if profiler is not None and tracer is not None:
            profiler.clock = tracer.clock
        self._obs_clock = (
            tracer.clock
            if tracer is not None
            else profiler.clock if profiler is not None else None
        )
        self._loss_g = self._epochs_c = None
        self._batches_c = self._examples_c = self._violations_c = None
        if registry is not None:
            self._loss_g = registry.gauge(
                "train.epoch_loss", help="Mean margin loss of the last epoch"
            )
            self._epochs_c = registry.counter("train.epochs", help="Epochs run")
            self._batches_c = registry.counter("train.batches", help="Batches run")
            self._examples_c = registry.counter(
                "train.examples", help="Positive edges consumed"
            )
            self._violations_c = registry.counter(
                "train.violating_batches",
                help="Batches with at least one active margin violation",
            )

    @contextmanager
    def _phase(self, name: str, units: int = 0):
        """Profiler phase + one virtual step, when observability is on."""
        cm = (
            self.profiler.phase(name, units=units)
            if self.profiler is not None
            else nullcontext()
        )
        with cm:
            try:
                yield
            finally:
                if self._obs_clock is not None:
                    self._obs_clock.advance(1.0)

    def train(
        self,
        store: TripleStore,
        progress: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Run the pre-training loop; returns the loss history.

        ``progress`` (epoch_index, mean_loss) is invoked after each
        epoch — handy for logging from examples and benches.

        The NaN/Inf sanitizer (:mod:`repro.nn.sanitizer`) is armed for
        the duration of the run when ``config.numeric_guard`` is set or
        the ``REPRO_NUMERIC_GUARD`` environment flag is exported.
        """
        profiler_cm = self.profiler if self.profiler is not None else nullcontext()
        with sanitizer.guard(
            self.config.numeric_guard or sanitizer.env_enabled()
        ), profiler_cm:
            return self._train(store, progress)

    def _train(
        self,
        store: TripleStore,
        progress: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        rng = np.random.default_rng(self.config.seed)
        sampler = EdgeSampler.with_uniform(
            store,
            batch_size=self.config.batch_size,
            num_entities=self.model.num_entities,
            num_relations=self.model.num_relations,
            rng=rng,
            negatives_per_edge=self.config.negatives_per_edge,
            filtered=self.config.filtered_negatives,
            corrupt_relation_prob=self.config.corrupt_relation_prob,
        )
        history = TrainingHistory()
        start_epoch = 0
        if self._manager is not None:
            if self.resume and self._manager.latest() is not None:
                start_epoch = self._restore(rng, history)
            else:
                self._manager.clear()
        for epoch in range(start_epoch, self.config.epochs):
            epoch_loss = 0.0
            count = 0
            span_cm = (
                self.tracer.span("train.epoch", epoch=epoch)
                if self.tracer is not None
                else nullcontext()
            )
            with span_cm:
                batches = iter(sampler.epoch())
                while True:
                    with self._phase("negative_sampling"):
                        batch = next(batches, None)
                    if batch is None:
                        break
                    with self._phase("forward", units=len(batch)):
                        self.optimizer.zero_grad()
                        loss = self.model.margin_loss(
                            batch.positives, batch.negatives
                        )
                    if not np.isfinite(loss.item()):
                        raise FloatingPointError(
                            "non-finite margin loss during pre-training; "
                            "lower the learning rate or check the input KG"
                        )
                    with self._phase("backward"):
                        loss.backward()
                    with self._phase("optimizer"):
                        self.optimizer.step()
                        if self.config.entity_max_norm is not None:
                            self.model.renormalize_entities(
                                self.config.entity_max_norm
                            )
                    epoch_loss += loss.item()
                    count += len(batch)
                    if self._batches_c is not None:
                        self._batches_c.inc()
                        self._examples_c.inc(len(batch))
                        if loss.item() > 0.0:
                            # The margin ranking loss is a sum of hinge
                            # terms: positive loss ⇔ at least one pair
                            # still violates the margin.
                            self._violations_c.inc()
            mean_loss = epoch_loss / max(count, 1)
            history.epoch_losses.append(mean_loss)
            if self._loss_g is not None:
                self._loss_g.set(mean_loss)
                self._epochs_c.inc()
            if progress is not None:
                progress(epoch, mean_loss)
            completed = epoch + 1
            if self._manager is not None and (
                completed % self.checkpoint_every == 0
                or completed == self.config.epochs
            ):
                self._save_checkpoint(completed, rng, history)
        return history

    # ------------------------------------------------------------------
    # Crash-consistent checkpointing (repro.reliability.checkpoint)
    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, completed_epochs: int, rng: np.random.Generator, history: TrainingHistory
    ) -> None:
        from ..reliability.checkpoint import rng_state

        arrays = {}
        for index, param in enumerate(self.optimizer.parameters):
            arrays[f"param{index}"] = param.data
            moment = self.optimizer._m.get(id(param))
            velocity = self.optimizer._v.get(id(param))
            arrays[f"m{index}"] = (
                moment if moment is not None else np.zeros_like(param.data)
            )
            arrays[f"v{index}"] = (
                velocity if velocity is not None else np.zeros_like(param.data)
            )
        self._manager.save(
            completed_epochs,
            arrays,
            metadata={
                "epoch": completed_epochs,
                "adam_step": self.optimizer._step_count,
                "rng": rng_state(rng),
                "losses": list(history.epoch_losses),
            },
        )

    def _restore(self, rng: np.random.Generator, history: TrainingHistory) -> int:
        from ..reliability.checkpoint import restore_rng

        arrays, metadata = self._manager.load()
        with no_grad():
            for index, param in enumerate(self.optimizer.parameters):
                param.data = arrays[f"param{index}"]
                self.optimizer._m[id(param)] = arrays[f"m{index}"]
                self.optimizer._v[id(param)] = arrays[f"v{index}"]
        self.optimizer._step_count = int(metadata["adam_step"])
        restore_rng(rng, metadata["rng"])
        history.epoch_losses.extend(float(x) for x in metadata["losses"])
        return int(metadata["epoch"])


def pretrain_pkgm(
    store: TripleStore,
    num_entities: int,
    num_relations: int,
    model_config: Optional[PKGMConfig] = None,
    trainer_config: Optional[TrainerConfig] = None,
    seed: int = 0,
) -> PKGM:
    """One-call pre-training: build a PKGM and fit it to ``store``."""
    model = PKGM(
        num_entities,
        num_relations,
        config=model_config,
        rng=np.random.default_rng(seed),
    )
    trainer = PKGMTrainer(model, trainer_config)
    trainer.train(store)
    return model
