"""Key-relation selection (paper §III-A1).

"For each item in the dataset, we select 10 key relations for it
according to its category ... we gather all items belonging to C and
account for the frequency of properties in those items, then select
top 10 most frequent properties as key relations."

:class:`KeyRelationSelector` computes exactly that table from the KG and
an item→category map, and answers per-item lookups during servicing.
Categories with fewer than ``k`` observed relations are padded by
cycling their own list (so service batches stay rectangular) — the
padding choice is covered by tests and called out in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..kg import TripleStore


class KeyRelationSelector:
    """Per-category top-k relation table with per-item lookup."""

    def __init__(
        self,
        store: TripleStore,
        item_to_category: Mapping[int, int],
        k: int = 10,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._item_to_category = dict(item_to_category)
        self._table = self._build_table(store)

    def _build_table(self, store: TripleStore) -> Dict[int, List[int]]:
        frequency: Dict[int, Counter] = defaultdict(Counter)
        for entity_id, category_id in self._item_to_category.items():
            for triple in store.triples_with_head(entity_id):
                frequency[category_id][triple.relation] += 1

        table: Dict[int, List[int]] = {}
        for category_id, counts in frequency.items():
            # Sort by frequency desc, then relation id asc for determinism.
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            chosen = [relation for relation, _ in ranked[: self.k]]
            if not chosen:
                continue
            while len(chosen) < self.k:  # pad rare categories by cycling
                chosen.append(chosen[len(chosen) % len(ranked)])
            table[category_id] = chosen
        return table

    def categories(self) -> List[int]:
        """Categories with at least one observed relation."""
        return sorted(self._table)

    def for_category(self, category_id: int) -> List[int]:
        """The k key relation ids of ``category_id``."""
        if category_id not in self._table:
            raise KeyError(f"category {category_id} has no observed relations")
        return list(self._table[category_id])

    def for_item(self, entity_id: int) -> List[int]:
        """The k key relation ids of the item's category."""
        category_id = self._item_to_category.get(entity_id)
        if category_id is None:
            raise KeyError(f"entity {entity_id} is not a known item")
        return self.for_category(category_id)

    def for_items(self, entity_ids: Sequence[int]) -> np.ndarray:
        """Key relations for a batch of items, shape (batch, k)."""
        return np.asarray([self.for_item(e) for e in entity_ids], dtype=np.int64)

    def items(self) -> List[int]:
        """All known item entity ids, ascending (public: serialization
        and fallback computation must not reach into internals)."""
        return sorted(self._item_to_category)

    def key_relation_table(self) -> Dict[int, List[int]]:
        """The full item → key-relations mapping as plain data."""
        return {item: self.for_item(item) for item in self.items()}
