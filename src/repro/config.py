"""Experiment configuration presets.

One dataclass bundles every knob of the end-to-end pipeline (catalog →
PKGM pre-training → MLM pre-training → fine-tuning), with three
presets:

* ``smoke``   — seconds; used by tests;
* ``default`` — a couple of minutes; used by examples;
* ``bench``   — the benchmark scale behind EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from typing import Optional

from .core import PKGMConfig, TrainerConfig
from .data import CatalogConfig, InteractionConfig, TitleConfig
from .tasks import FineTuneConfig, NCFConfig
from .text import MLMConfig, PairPretrainConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one experimental run."""

    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    titles: TitleConfig = field(default_factory=TitleConfig)
    pkgm: PKGMConfig = field(default_factory=lambda: PKGMConfig(dim=16))
    pkgm_trainer: TrainerConfig = field(
        default_factory=lambda: TrainerConfig(
            epochs=30, batch_size=256, learning_rate=0.02, corrupt_relation_prob=0.2
        )
    )
    mlm: MLMConfig = field(
        default_factory=lambda: MLMConfig(epochs=5, batch_size=32, learning_rate=2e-3)
    )
    finetune: FineTuneConfig = field(default_factory=FineTuneConfig)
    finetune_pair: FineTuneConfig = field(
        default_factory=lambda: FineTuneConfig(
            epochs=20, batch_size=32, learning_rate=2e-3, max_length=32
        )
    )
    pair_pretrain: Optional[PairPretrainConfig] = field(
        default_factory=lambda: PairPretrainConfig(
            num_pairs=3000, epochs=10, max_length=32, same_category_negatives=False
        )
    )
    interactions: InteractionConfig = field(default_factory=InteractionConfig)
    ncf: NCFConfig = field(default_factory=NCFConfig)
    key_relations: int = 5
    encoder_dim: int = 48
    encoder_layers: int = 2
    encoder_heads: int = 4
    encoder_ffn: int = 96
    encoder_max_length: int = 24
    seed: int = 0


def smoke_config() -> ExperimentConfig:
    """Tiny preset for tests: everything runs in seconds."""
    return ExperimentConfig(
        catalog=CatalogConfig(
            num_categories=4,
            products_per_category=12,
            min_items_per_product=2,
            max_items_per_product=3,
            noun_pool_size=2,
            seed=0,
        ),
        titles=TitleConfig(attribute_drop_probability=0.4, noun_drop_probability=0.3),
        pkgm=PKGMConfig(dim=16),
        pkgm_trainer=TrainerConfig(
            epochs=15, batch_size=128, learning_rate=0.02, corrupt_relation_prob=0.2
        ),
        mlm=MLMConfig(epochs=2, batch_size=32, learning_rate=2e-3),
        finetune=FineTuneConfig(epochs=6, batch_size=32, learning_rate=2e-3, max_length=16),
        finetune_pair=FineTuneConfig(
            epochs=8, batch_size=32, learning_rate=2e-3, max_length=24
        ),
        pair_pretrain=PairPretrainConfig(num_pairs=400, epochs=3, max_length=24),
        interactions=InteractionConfig(num_users=40),
        ncf=NCFConfig(epochs=8, batch_size=256, eval_negatives=50),
        key_relations=4,
        encoder_dim=32,
        encoder_layers=2,
        encoder_heads=4,
        encoder_ffn=64,
        encoder_max_length=24,
    )


def default_config() -> ExperimentConfig:
    """Example-scale preset: a few minutes end to end."""
    return ExperimentConfig(
        catalog=CatalogConfig(
            num_categories=10,
            products_per_category=30,
            min_items_per_product=2,
            max_items_per_product=4,
            noun_pool_size=4,
            seed=0,
        ),
        titles=TitleConfig(attribute_drop_probability=0.4, noun_drop_probability=0.3),
        pkgm=PKGMConfig(dim=24),
        pkgm_trainer=TrainerConfig(
            epochs=40, batch_size=256, learning_rate=0.02, corrupt_relation_prob=0.2
        ),
        mlm=MLMConfig(epochs=4, batch_size=64, learning_rate=2e-3),
        finetune=FineTuneConfig(epochs=6, batch_size=32, learning_rate=2e-3, max_length=20),
        finetune_pair=FineTuneConfig(
            epochs=20, batch_size=32, learning_rate=2e-3, max_length=32
        ),
        interactions=InteractionConfig(num_users=150),
        ncf=NCFConfig(epochs=15, batch_size=256),
        key_relations=5,
        encoder_dim=48,
        encoder_layers=2,
        encoder_heads=4,
        encoder_ffn=96,
        encoder_max_length=32,
    )


def bench_config() -> ExperimentConfig:
    """Benchmark preset behind EXPERIMENTS.md (largest of the three)."""
    return replace(
        default_config(),
        catalog=CatalogConfig(
            num_categories=12,
            products_per_category=40,
            min_items_per_product=2,
            max_items_per_product=4,
            noun_pool_size=4,
            seed=0,
        ),
        titles=TitleConfig(
            attribute_drop_probability=0.25,
            noun_drop_probability=0.3,
            noise_word_count_max=2,
        ),
        interactions=InteractionConfig(num_users=250),
    )


#: Preset name → factory, shared by the CLI and the obs workloads.
PRESETS = {
    "smoke": smoke_config,
    "default": default_config,
    "bench": bench_config,
}
