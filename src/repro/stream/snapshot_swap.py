"""Versioned store+index snapshots with atomic CURRENT promotion.

The stream pipeline periodically freezes its live state into a
*version*::

    <root>/versions/v000003/store/...      repro.store (streamed build)
    <root>/versions/v000003/index.npz/.json  ANN snapshot
    <root>/versions/v000003/version.json   sealed: seq, counts, checksums
    <root>/CURRENT                         the promoted version name

Write order is the checkpoint discipline end-to-end: payloads first
(each internally atomic), the sealed ``version.json`` after them, and
the ``CURRENT`` pointer strictly last — a crash anywhere leaves the
previous version promoted and the torn one invisible.  Re-publishing
the same version after a crash rewrites byte-identical files, which is
what lets the chaos drill demand byte equality.

Serving handoff rides the PR 3 gateway lifecycle unchanged:
:func:`swap_gateway` drains the gateway to quiescence, swaps in a
server cold-started from the version's store, and returns it — no new
swap machinery, the stream layer is just another caller of
``drain()``/``swap()``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.service import PKGMServer
from ..index.snapshot import load_index, save_index
from ..obs.metrics import MetricsRegistry
from ..reliability.checkpoint import atomic_write_bytes, sha256_of_file
from ..store.layout import (
    MANIFEST_NAME,
    canonical_json,
    parse_manifest,
    seal_manifest,
)
from ..store.store import EmbeddingStore, RowSource

CURRENT_NAME = "CURRENT"
VERSION_RE = re.compile(r"v(\d{6})$")


class SnapshotSwapError(RuntimeError):
    """A version is missing, torn, or fails verification."""


class SnapshotVersioner:
    """Publishes and resolves versioned serving snapshots under a root."""

    def __init__(
        self,
        root: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._publishes_c = self.metrics.counter(
            "stream.publishes", help="Snapshot versions published"
        )
        self._published_seq_g = self.metrics.gauge(
            "stream.published_seq", help="Last op seq in the current version"
        )
        self._version_g = self.metrics.gauge(
            "stream.version", help="Currently promoted snapshot version"
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def version_name(self, version: int) -> str:
        return f"v{version:06d}"

    def version_dir(self, version: int) -> Path:
        return self.root / "versions" / self.version_name(version)

    @property
    def current_path(self) -> Path:
        return self.root / CURRENT_NAME

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(
        self,
        version: int,
        tables: Dict[str, np.ndarray],
        index,
        *,
        seq: int,
        k: int,
        dim: int,
        num_shards: int = 1,
        extra: Optional[Dict] = None,
    ) -> Path:
        """Freeze ``tables`` + ``index`` as ``version``; promote it.

        ``tables`` must be the five pkgm-server tables that
        :meth:`repro.core.PKGMServer.from_store` expects.  The store
        goes through the streamed build path (bounded memory), the
        index through the checksummed snapshot writer, and CURRENT is
        rewritten only after the sealed version manifest lands.
        Deterministic inputs → byte-identical version directories,
        even when re-published over a torn previous attempt.
        """
        directory = self.version_dir(version)
        store_dir = directory / "store"
        store = EmbeddingStore.build_from_rows(
            store_dir,
            {
                name: RowSource.from_array(np.ascontiguousarray(array))
                for name, array in tables.items()
            },
            num_shards=num_shards,
            metadata={
                "kind": "pkgm-server",
                "k": int(k),
                "dim": int(dim),
                "stream_version": int(version),
                "stream_seq": int(seq),
            },
        )
        store.close()
        save_index(index, directory / "index")
        manifest = seal_manifest(
            {
                "version": 1,  # manifest format version (parse_manifest pins it)
                "snapshot_version": int(version),
                "seq": int(seq),
                "store_manifest_sha256": sha256_of_file(
                    store_dir / MANIFEST_NAME
                ),
                "index_payload_sha256": sha256_of_file(
                    directory / "index.npz"
                ),
                "extra": dict(extra) if extra is not None else {},
            }
        )
        atomic_write_bytes(
            directory / "version.json", canonical_json(manifest)
        )
        atomic_write_bytes(
            self.current_path, (self.version_name(version) + "\n").encode()
        )
        self._publishes_c.inc(1)
        self._published_seq_g.set(seq)
        self._version_g.set(version)
        return directory

    # ------------------------------------------------------------------
    # Resolve / load
    # ------------------------------------------------------------------
    def current_version(self) -> Optional[int]:
        """The promoted version number, or ``None`` before first publish."""
        if not self.current_path.exists():
            return None
        name = self.current_path.read_text().strip()
        match = VERSION_RE.fullmatch(name)
        if match is None:
            raise SnapshotSwapError(f"CURRENT names invalid version {name!r}")
        return int(match.group(1))

    def verify(self, version: int) -> dict:
        """Parse + cross-check one version's manifest; returns it."""
        directory = self.version_dir(version)
        manifest_path = directory / "version.json"
        if not manifest_path.exists():
            raise SnapshotSwapError(
                f"version {version} has no sealed manifest"
            )
        manifest = parse_manifest(manifest_path.read_bytes())
        if int(manifest.get("snapshot_version", -1)) != version:
            raise SnapshotSwapError(
                f"version {version}: manifest claims snapshot "
                f"{manifest.get('snapshot_version')!r}"
            )
        actual = sha256_of_file(directory / "store" / MANIFEST_NAME)
        if actual != manifest["store_manifest_sha256"]:
            raise SnapshotSwapError(
                f"version {version}: store manifest checksum mismatch"
            )
        actual = sha256_of_file(directory / "index.npz")
        if actual != manifest["index_payload_sha256"]:
            raise SnapshotSwapError(
                f"version {version}: index payload checksum mismatch"
            )
        return manifest

    def load_server(
        self,
        version: int,
        *,
        cache_pages: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> PKGMServer:
        """Cold-start a server over one published version's store."""
        self.verify(version)
        return PKGMServer.from_store(
            self.version_dir(version) / "store",
            cache_pages=cache_pages,
            registry=registry,
        )

    def load_index(self, version: int, registry=None):
        """Load one published version's ANN snapshot."""
        self.verify(version)
        return load_index(self.version_dir(version) / "index", registry=registry)


def swap_gateway(gateway, versioner: SnapshotVersioner, version: int):
    """Drain the live gateway and swap in a published version's server.

    Returns the freshly loaded server.  This is the PR 3 state machine
    verbatim — ``serving → draining → quiesced → serving`` — so every
    in-flight request completes against the old snapshot and the first
    post-swap request sees the new one.
    """
    server = versioner.load_server(version)
    gateway.drain()
    gateway.swap(server)
    return server
