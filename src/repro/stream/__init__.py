"""``repro.stream``: deterministic catalog-delta lifecycle.

The paper's billion-scale PKG churns constantly; this package is the
delta path over the frozen-snapshot stack: a seeded, replayable
add/update/delete stream with a checksummed write-ahead delta log
(:mod:`.deltas`), warm-started embeddings and bounded continual
training for stream-born entities (:mod:`.warmstart`,
:mod:`.continual`), incremental IVF maintenance — appends, tombstones,
seeded re-cluster triggers (:mod:`.index_delta`) — and versioned
store+index snapshots promoted through the gateway's drain/swap
lifecycle (:mod:`.snapshot_swap`).  :mod:`.pipeline` ties them into
one write-ahead loop whose crash recovery is a pure log replay, and
:mod:`.chaos` is the drill that proves recovery byte-identical.
"""

from .chaos import StreamChaosConfig, StreamChaosReport, run_stream_chaos
from .continual import ContinualConfig, ContinualTrainer, ReplayBuffer
from .deltas import (
    OP_ADD,
    OP_DELETE,
    OP_KINDS,
    OP_NEW_ITEM,
    OP_RETIRE,
    OP_UPDATE,
    CatalogDeltaStream,
    DeltaBatch,
    DeltaLog,
    DeltaLogError,
    DeltaOp,
    DeltaStreamConfig,
    StreamState,
)
from .index_delta import DeltaIndex, DeltaIndexConfig
from .pipeline import StreamPipeline, StreamReport, StreamRunConfig
from .snapshot_swap import SnapshotSwapError, SnapshotVersioner, swap_gateway
from .warmstart import (
    category_mean_init,
    relation_neighborhood_init,
    seeded_fallback_init,
    warm_start,
)

__all__ = [
    "CatalogDeltaStream",
    "ContinualConfig",
    "ContinualTrainer",
    "DeltaBatch",
    "DeltaIndex",
    "DeltaIndexConfig",
    "DeltaLog",
    "DeltaLogError",
    "DeltaOp",
    "DeltaStreamConfig",
    "OP_ADD",
    "OP_DELETE",
    "OP_KINDS",
    "OP_NEW_ITEM",
    "OP_RETIRE",
    "OP_UPDATE",
    "ReplayBuffer",
    "SnapshotSwapError",
    "SnapshotVersioner",
    "StreamChaosConfig",
    "StreamChaosReport",
    "StreamPipeline",
    "StreamReport",
    "StreamRunConfig",
    "StreamState",
    "category_mean_init",
    "relation_neighborhood_init",
    "run_stream_chaos",
    "seeded_fallback_init",
    "swap_gateway",
    "warm_start",
]
