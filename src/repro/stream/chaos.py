"""Crash-mid-ingest drill: kill the pipeline, replay to identical bytes.

The drill runs the same stream twice:

* **clean** — one pipeline, start to finish;
* **crashed** — a pipeline killed *mid-delta*: its latest batch is
  appended to the log but never absorbed, and a torn half-written
  segment is left behind (the worst legal crash window), then a fresh
  process recovers purely from the delta log and finishes the run.

Recovery must converge to the clean run **byte-for-byte**: every delta
segment, every shard file and manifest of every published version,
the index snapshots, the ``CURRENT`` pointer, and the ``stream.*``
metrics dump.  The report prints timing-invariant lines ending
``stream drill: RECOVERED`` — ``tools/check.sh`` and CI run the drill
twice and diff the transcripts, so flakiness in any of those layers
fails the merge gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..config import ExperimentConfig
from ..store.layout import canonical_json, seal_manifest
from .pipeline import StreamPipeline, StreamReport, StreamRunConfig


@dataclass(frozen=True)
class StreamChaosConfig:
    """Where the simulated kill lands."""

    kill_batch: int = 3
    torn_tail_bytes: int = 48

    def __post_init__(self) -> None:
        if self.kill_batch < 1:
            raise ValueError("kill_batch must be >= 1")
        if self.torn_tail_bytes < 1:
            raise ValueError("torn_tail_bytes must be >= 1")


@dataclass(frozen=True)
class StreamChaosReport:
    """Deterministic outcome of one drill."""

    ok: bool
    files_compared: int
    mismatched: Tuple[str, ...]
    clean: StreamReport
    recovered: StreamReport
    metrics_match: bool
    transcript_match: bool

    def lines(self) -> List[str]:
        """Byte-diffable stdout transcript."""
        out = list(self.clean.lines())
        out.append(
            f"artifacts: {self.files_compared} files byte-compared | "
            f"{len(self.mismatched)} mismatched"
        )
        out.append(
            "metrics: stream.* dump "
            + ("identical" if self.metrics_match else "DIVERGED")
        )
        out.append(
            f"stream drill: {'RECOVERED' if self.ok else 'FAILED'}"
        )
        return out

    def detail_lines(self) -> List[str]:
        """Operational detail for stderr (never byte-diffed)."""
        out = [
            f"recovered run replayed {self.recovered.replayed_batches} "
            f"logged batches"
        ]
        for name in self.mismatched:
            out.append(f"mismatch: {name}")
        if not self.transcript_match:
            out.append("clean/recovered report lines diverged")
        return out


def _walk_files(root: Path) -> List[Path]:
    return sorted(
        path for path in root.rglob("*") if path.is_file()
    )


def _compare_trees(clean: Path, crashed: Path) -> Tuple[int, List[str]]:
    """Byte-compare two run directories; returns (count, mismatches)."""
    clean_files = {
        str(path.relative_to(clean)): path for path in _walk_files(clean)
    }
    crashed_files = {
        str(path.relative_to(crashed)): path for path in _walk_files(crashed)
    }
    mismatched: List[str] = []
    names = sorted(set(clean_files) | set(crashed_files))
    for name in names:
        left = clean_files.get(name)
        right = crashed_files.get(name)
        if left is None or right is None:
            mismatched.append(name)
            continue
        if left.read_bytes() != right.read_bytes():
            mismatched.append(name)
    return len(names), mismatched


def run_stream_chaos(
    experiment: ExperimentConfig,
    run_dir: Union[str, Path],
    stream_config: Optional[StreamRunConfig] = None,
    chaos: Optional[StreamChaosConfig] = None,
) -> StreamChaosReport:
    """Run the clean/crashed pair and byte-compare everything."""
    run_dir = Path(run_dir)
    stream_config = (
        stream_config if stream_config is not None else StreamRunConfig()
    )
    chaos = chaos if chaos is not None else StreamChaosConfig()
    if stream_config.batches < 3:
        raise ValueError("the drill needs at least 3 batches")
    # The torn segment sits at kill_batch + 1; the recovered run must
    # regenerate (and so overwrite) it, which requires the kill point
    # to land at least two batches before the end.
    kill_batch = max(1, min(chaos.kill_batch, stream_config.batches - 2))

    clean_dir = run_dir / "clean"
    crashed_dir = run_dir / "crashed"

    clean_pipeline = StreamPipeline(experiment, clean_dir, stream_config)
    clean_report = clean_pipeline.run()

    # Phase 1: ingest up to the kill point, then die mid-delta — the
    # next batch is logged but never absorbed, and a half-written
    # follow-up segment is torn on disk.
    victim = StreamPipeline(experiment, crashed_dir, stream_config)
    victim.run(kill_batch)
    logged_not_absorbed = victim.stream.generate(kill_batch)
    victim.log.append(logged_not_absorbed)
    torn_doc = canonical_json(
        seal_manifest(
            {"version": 1, "batch": kill_batch + 1, "base_seq": -1,
             "last_seq": -1, "ops": []}
        )
    )
    victim.log.segment_path(kill_batch + 1).write_bytes(
        torn_doc[: chaos.torn_tail_bytes]
    )
    del victim  # the process is dead; nothing of it survives

    # Phase 2: a fresh process recovers from the delta log alone.
    recovered_pipeline = StreamPipeline(
        experiment, crashed_dir, stream_config
    )
    recovered_report = recovered_pipeline.run()

    files_compared, mismatched = _compare_trees(clean_dir, crashed_dir)
    metrics_match = (
        clean_pipeline.metrics_dump() == recovered_pipeline.metrics_dump()
    )
    transcript_match = clean_report.lines() == recovered_report.lines()
    ok = not mismatched and metrics_match and transcript_match
    return StreamChaosReport(
        ok=ok,
        files_compared=files_compared,
        mismatched=tuple(mismatched),
        clean=clean_report,
        recovered=recovered_report,
        metrics_match=metrics_match,
        transcript_match=transcript_match,
    )
