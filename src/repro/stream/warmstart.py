"""Warm-started embeddings for stream-born entities.

A new listing must be servable *now* — before any continual training
step has touched it.  TransE geometry gives a closed-form first guess:
``h + r ≈ t`` means the entity that carries attributes
``{(r₁,t₁), …}`` should sit near ``mean(tᵢ − rᵢ)``.  That is the
relation-neighborhood init.  When an item arrives bare (no attributes
yet), we fall back to the mean embedding of its category's live items;
when even that is empty, to a small seeded random vector — the same
deterministic-everything discipline as the rest of the repo, keyed by
``[seed, entity_id]`` so warm starts are order-independent.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np


def relation_neighborhood_init(
    attributes: Dict[int, int],
    entity_table: np.ndarray,
    relation_table: np.ndarray,
) -> Optional[np.ndarray]:
    """``mean(t − r)`` over the new item's attribute triples.

    Returns ``None`` when the item has no attributes (the caller falls
    back to the category mean).  Tails must already have embeddings —
    guaranteed by the stream invariant that only item entities are
    born on the stream, while tails come from base value pools.
    """
    if not attributes:
        return None
    rows = [
        entity_table[tail] - relation_table[relation]
        for relation, tail in sorted(attributes.items())
    ]
    return np.mean(rows, axis=0)


def category_mean_init(
    members: Sequence[int],
    entity_table: np.ndarray,
) -> Optional[np.ndarray]:
    """Mean embedding of the category's live items (``None`` if empty)."""
    members = [m for m in members if 0 <= m < len(entity_table)]
    if not members:
        return None
    return np.mean(entity_table[np.asarray(sorted(members))], axis=0)


def seeded_fallback_init(
    entity_id: int,
    dim: int,
    seed: int,
    scale: float = 0.1,
) -> np.ndarray:
    """Last-resort init: small uniform noise keyed by the entity id."""
    rng = np.random.default_rng([seed, entity_id])
    return rng.uniform(-scale, scale, size=dim)


def warm_start(
    entity_id: int,
    attributes: Dict[int, int],
    category_members: Sequence[int],
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    seed: int,
    max_norm: float = 1.0,
) -> Tuple[np.ndarray, str]:
    """``(vector, method)`` for one new entity.

    Tries relation-neighborhood, then category-mean, then the seeded
    fallback; the result is projected onto the TransE ``max_norm``
    ball so it is immediately consistent with trained neighbors.
    """
    vector = relation_neighborhood_init(
        attributes, entity_table, relation_table
    )
    method = "relation-neighborhood"
    if vector is None:
        vector = category_mean_init(category_members, entity_table)
        method = "category-mean"
    if vector is None:
        vector = seeded_fallback_init(
            entity_id, entity_table.shape[1], seed
        )
        method = "seeded-fallback"
    norm = float(np.linalg.norm(vector))
    if norm > max_norm:
        vector = vector * (max_norm / max(norm, 1e-12))
    return np.asarray(vector, dtype=entity_table.dtype), method
