"""Seeded, replayable catalog delta streams with a checksummed log.

Real product KGs churn: items are listed, re-described, and delisted
every second.  This module turns the static synthetic catalog into a
*stream* of ``(seq, op, h, r, t)`` delta operations with three
properties the rest of :mod:`repro.stream` builds on:

* **determinism** — batch ``i`` is generated from
  ``np.random.default_rng([seed, i])`` plus the stream state, and the
  state itself is a pure function of the op history; two processes
  that apply the same prefix generate identical continuations;
* **monotone sequence numbers** — every op carries the next ``seq``;
  :meth:`StreamState.apply` enforces contiguity, so a gap or replayed
  duplicate is an error, never silent drift;
* **a write-ahead delta log** — :class:`DeltaLog` persists each batch
  as a self-checksummed JSON segment in the checkpoint discipline
  (atomic tmp → fsync → rename).  ``scan`` fails closed on mid-log
  corruption but forgives a torn *trailing* segment — exactly the
  state a crash mid-append leaves behind.

Ops never grow the value-entity vocabulary: update/add tails are drawn
from the per-``(category, relation)`` value pools observed in the base
catalog, so only *item* entities are born on the stream — matching the
e-commerce reality that attribute vocabularies are curated while
listings churn freely.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from ..data.catalog import Catalog
from ..reliability.checkpoint import atomic_write_bytes
from ..store.layout import canonical_json, parse_manifest, seal_manifest
from ..store.errors import StoreManifestError

#: Op kinds, in the order the generator emits them for one event.
OP_NEW_ITEM = "new-item"
OP_ADD = "add"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_RETIRE = "retire"

OP_KINDS = (OP_NEW_ITEM, OP_ADD, OP_UPDATE, OP_DELETE, OP_RETIRE)

LOG_VERSION = 1

_SEGMENT_RE = re.compile(r"delta-(\d{6})\.json$")


class DeltaLogError(RuntimeError):
    """The delta log is corrupt before its final segment."""


@dataclass(frozen=True)
class DeltaOp:
    """One catalog mutation with its global sequence number.

    ``entity_label``/``category_id`` ride only on ``new-item`` ops —
    they are what lets a replayer rebuild the item registry without
    the generator's RNG.
    """

    seq: int
    op: str
    head: int
    relation: int
    tail: int
    entity_label: str = ""
    category_id: int = -1

    def to_doc(self) -> dict:
        doc = {
            "seq": self.seq,
            "op": self.op,
            "head": self.head,
            "relation": self.relation,
            "tail": self.tail,
        }
        if self.op == OP_NEW_ITEM:
            doc["entity_label"] = self.entity_label
            doc["category_id"] = self.category_id
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "DeltaOp":
        return cls(
            seq=int(doc["seq"]),
            op=str(doc["op"]),
            head=int(doc["head"]),
            relation=int(doc["relation"]),
            tail=int(doc["tail"]),
            entity_label=str(doc.get("entity_label", "")),
            category_id=int(doc.get("category_id", -1)),
        )


@dataclass(frozen=True)
class DeltaBatch:
    """One generated (or replayed) batch of contiguous ops."""

    batch_index: int
    base_seq: int
    last_seq: int
    ops: Tuple[DeltaOp, ...]

    def to_doc(self) -> dict:
        return {
            "version": LOG_VERSION,
            "batch": self.batch_index,
            "base_seq": self.base_seq,
            "last_seq": self.last_seq,
            "ops": [op.to_doc() for op in self.ops],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "DeltaBatch":
        return cls(
            batch_index=int(doc["batch"]),
            base_seq=int(doc["base_seq"]),
            last_seq=int(doc["last_seq"]),
            ops=tuple(DeltaOp.from_doc(d) for d in doc["ops"]),
        )


class StreamState:
    """The live catalog view: items, their attributes, value pools.

    Mutated *only* through :meth:`apply`, which both the generator and
    the replayer use — there is one mutation code path, so generated
    and replayed states cannot diverge.
    """

    def __init__(
        self,
        live: Dict[int, Dict[int, int]],
        category_of: Dict[int, int],
        pools: Dict[Tuple[int, int], List[int]],
        next_entity_id: int,
        next_seq: int = 0,
    ) -> None:
        self.live = live
        self.category_of = category_of
        self.pools = pools
        self.next_entity_id = next_entity_id
        self.next_seq = next_seq
        self.base_entity_count = next_entity_id

    @classmethod
    def from_catalog(cls, catalog: Catalog) -> "StreamState":
        live: Dict[int, Dict[int, int]] = {}
        category_of: Dict[int, int] = {}
        pools: Dict[Tuple[int, int], List[int]] = {}
        pool_sets: Dict[Tuple[int, int], set] = {}
        for item in catalog.items:
            attrs: Dict[int, int] = {}
            for triple in catalog.store.triples_with_head(item.entity_id):
                attrs[triple.relation] = triple.tail
                key = (item.category_id, triple.relation)
                pool_sets.setdefault(key, set()).add(triple.tail)
            live[item.entity_id] = attrs
            category_of[item.entity_id] = item.category_id
        for key, values in pool_sets.items():
            pools[key] = sorted(values)
        return cls(
            live=live,
            category_of=category_of,
            pools=pools,
            next_entity_id=len(catalog.entities),
        )

    # -- queries --------------------------------------------------------
    @property
    def live_count(self) -> int:
        return len(self.live)

    def live_items(self) -> List[int]:
        """Live item entity ids, ascending (the generator's pick order)."""
        return sorted(self.live)

    def categories(self) -> List[int]:
        """Categories with at least one value pool, ascending."""
        return sorted({category for category, _ in self.pools})

    def pool_relations(self, category_id: int) -> List[int]:
        """Relations with a value pool in ``category_id``, ascending."""
        return sorted(
            relation
            for category, relation in self.pools
            if category == category_id
        )

    def triples(self) -> List[Tuple[int, int, int]]:
        """Every live ``(h, r, t)``, sorted — the current KG view."""
        out = []
        for head in sorted(self.live):
            for relation in sorted(self.live[head]):
                out.append((head, relation, self.live[head][relation]))
        return out

    def checksum(self) -> str:
        """SHA-256 of the canonical state — replay-equality witness."""
        doc = {
            "next_entity_id": self.next_entity_id,
            "next_seq": self.next_seq,
            "triples": [list(t) for t in self.triples()],
            "categories": {
                str(e): self.category_of[e] for e in sorted(self.live)
            },
        }
        return hashlib.sha256(canonical_json(doc)).hexdigest()

    # -- the single mutation path --------------------------------------
    def apply(self, op: DeltaOp) -> None:
        """Apply one op, enforcing seq contiguity and referential sanity."""
        if op.seq != self.next_seq:
            raise DeltaLogError(
                f"op seq {op.seq} != expected {self.next_seq} (gap or replay)"
            )
        if op.op == OP_NEW_ITEM:
            if op.head != self.next_entity_id:
                raise DeltaLogError(
                    f"new-item entity {op.head} != expected "
                    f"{self.next_entity_id}"
                )
            self.live[op.head] = {}
            self.category_of[op.head] = op.category_id
            self.next_entity_id += 1
        elif op.op in (OP_ADD, OP_UPDATE):
            if op.head not in self.live:
                raise DeltaLogError(f"{op.op} on unknown item {op.head}")
            self.live[op.head][op.relation] = op.tail
        elif op.op == OP_DELETE:
            attrs = self.live.get(op.head)
            if attrs is None or attrs.get(op.relation) != op.tail:
                raise DeltaLogError(
                    f"delete of absent triple ({op.head}, {op.relation}, "
                    f"{op.tail})"
                )
            del attrs[op.relation]
        elif op.op == OP_RETIRE:
            if op.head not in self.live:
                raise DeltaLogError(f"retire of unknown item {op.head}")
            if self.live[op.head]:
                raise DeltaLogError(
                    f"retire of item {op.head} with live attributes"
                )
            del self.live[op.head]
        else:
            raise DeltaLogError(f"unknown op kind {op.op!r}")
        self.next_seq += 1


@dataclass(frozen=True)
class DeltaStreamConfig:
    """Shape of the generated churn."""

    seed: int = 0
    events_per_batch: int = 8
    add_probability: float = 0.45
    update_probability: float = 0.35
    delete_probability: float = 0.20
    fill_probability: float = 0.8
    min_live_items: int = 4

    def __post_init__(self) -> None:
        total = (
            self.add_probability
            + self.update_probability
            + self.delete_probability
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError("event probabilities must sum to 1")
        if self.events_per_batch < 1:
            raise ValueError("events_per_batch must be >= 1")


class CatalogDeltaStream:
    """Deterministic delta generator over a :class:`StreamState`.

    ``generate(i)`` is a pure function of ``(state, i)``: the per-batch
    RNG is ``default_rng([seed, i])`` and every emitted op mutates the
    state through :meth:`StreamState.apply` before the next is drawn —
    so replaying logged batches 0..i-1 and then calling ``generate(i)``
    reproduces the original run bit-for-bit.
    """

    def __init__(self, state: StreamState, config: DeltaStreamConfig) -> None:
        self.state = state
        self.config = config

    def generate(self, batch_index: int) -> DeltaBatch:
        rng = np.random.default_rng([self.config.seed, batch_index])
        base_seq = self.state.next_seq
        ops: List[DeltaOp] = []
        kinds = (OP_ADD, OP_UPDATE, OP_DELETE)
        probabilities = (
            self.config.add_probability,
            self.config.update_probability,
            self.config.delete_probability,
        )
        for _ in range(self.config.events_per_batch):
            kind = kinds[rng.choice(len(kinds), p=probabilities)]
            if (
                kind == OP_DELETE
                and self.state.live_count <= self.config.min_live_items
            ):
                kind = OP_ADD  # keep the catalog from draining dry
            if kind == OP_UPDATE and self.state.live_count == 0:
                kind = OP_ADD
            if kind == OP_ADD:
                ops.extend(self._emit_add(rng))
            elif kind == OP_UPDATE:
                ops.extend(self._emit_update(rng))
            else:
                ops.extend(self._emit_delete(rng))
        return DeltaBatch(
            batch_index=batch_index,
            base_seq=base_seq,
            last_seq=self.state.next_seq - 1,
            ops=tuple(ops),
        )

    # -- event emitters (each op applied as it is drawn) ---------------
    def _emit(self, op: DeltaOp) -> DeltaOp:
        self.state.apply(op)
        return op

    def _emit_add(self, rng: np.random.Generator) -> List[DeltaOp]:
        categories = self.state.categories()
        category = int(categories[rng.integers(len(categories))])
        entity = self.state.next_entity_id
        ops = [
            self._emit(
                DeltaOp(
                    seq=self.state.next_seq,
                    op=OP_NEW_ITEM,
                    head=entity,
                    relation=-1,
                    tail=-1,
                    entity_label=f"stream_item_{entity}",
                    category_id=category,
                )
            )
        ]
        for relation in self.state.pool_relations(category):
            if rng.random() >= self.config.fill_probability:
                continue
            pool = self.state.pools[(category, relation)]
            tail = int(pool[rng.integers(len(pool))])
            ops.append(
                self._emit(
                    DeltaOp(
                        seq=self.state.next_seq,
                        op=OP_ADD,
                        head=entity,
                        relation=relation,
                        tail=tail,
                    )
                )
            )
        return ops

    def _emit_update(self, rng: np.random.Generator) -> List[DeltaOp]:
        items = self.state.live_items()
        head = int(items[rng.integers(len(items))])
        attrs = self.state.live[head]
        if not attrs:
            return self._emit_add(rng)
        relations = sorted(attrs)
        relation = int(relations[rng.integers(len(relations))])
        pool = self.state.pools.get(
            (self.state.category_of[head], relation), [attrs[relation]]
        )
        tail = int(pool[rng.integers(len(pool))])
        return [
            self._emit(
                DeltaOp(
                    seq=self.state.next_seq,
                    op=OP_UPDATE,
                    head=head,
                    relation=relation,
                    tail=tail,
                )
            )
        ]

    def _emit_delete(self, rng: np.random.Generator) -> List[DeltaOp]:
        items = self.state.live_items()
        head = int(items[rng.integers(len(items))])
        ops = []
        for relation in sorted(self.state.live[head]):
            ops.append(
                self._emit(
                    DeltaOp(
                        seq=self.state.next_seq,
                        op=OP_DELETE,
                        head=head,
                        relation=relation,
                        tail=self.state.live[head][relation],
                    )
                )
            )
        ops.append(
            self._emit(
                DeltaOp(
                    seq=self.state.next_seq,
                    op=OP_RETIRE,
                    head=head,
                    relation=-1,
                    tail=-1,
                )
            )
        )
        return ops


class DeltaLog:
    """Checksummed, atomic, torn-tail-tolerant delta segments.

    One file per batch — ``delta-000042.json`` — sealed with the store
    manifest discipline (:func:`repro.store.layout.seal_manifest`), so
    a flipped bit fails the self-checksum and a crash mid-append leaves
    a temp file the scan never sees (or a torn final segment it
    forgives).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def segment_path(self, batch_index: int) -> Path:
        return self.directory / f"delta-{batch_index:06d}.json"

    def append(self, batch: DeltaBatch) -> Path:
        path = self.segment_path(batch.batch_index)
        document = seal_manifest(batch.to_doc())
        atomic_write_bytes(path, canonical_json(document))
        return path

    def segment_indexes(self) -> List[int]:
        found = []
        for path in self.directory.glob("delta-*.json"):
            match = _SEGMENT_RE.fullmatch(path.name)
            if match is not None:
                found.append(int(match.group(1)))
        return sorted(found)

    def scan(self) -> List[DeltaBatch]:
        """Every verified batch, in order.

        The *final* segment is dropped silently when torn or corrupt —
        that is the legal crash-mid-append state.  Damage anywhere
        earlier, a numbering gap, or a seq discontinuity raises
        :class:`DeltaLogError`: the log prefix must be trusted before
        anything replays from it.
        """
        indexes = self.segment_indexes()
        batches: List[DeltaBatch] = []
        for position, batch_index in enumerate(indexes):
            is_last = position == len(indexes) - 1
            if batch_index != position:
                raise DeltaLogError(
                    f"segment numbering gap: found batch {batch_index} "
                    f"at position {position}"
                )
            try:
                document = parse_manifest(
                    self.segment_path(batch_index).read_bytes()
                )
                batch = DeltaBatch.from_doc(document)
            except (StoreManifestError, KeyError, ValueError) as error:
                if is_last:
                    break  # torn tail: a crash mid-append; regenerate it
                raise DeltaLogError(
                    f"delta segment {batch_index} is corrupt mid-log: {error}"
                ) from error
            if batch.batch_index != batch_index:
                if is_last:
                    break
                raise DeltaLogError(
                    f"segment {batch_index} claims batch {batch.batch_index}"
                )
            expected = batches[-1].last_seq + 1 if batches else 0
            if batch.base_seq != expected or any(
                op.seq != batch.base_seq + i for i, op in enumerate(batch.ops)
            ):
                if is_last:
                    break
                raise DeltaLogError(
                    f"segment {batch_index} breaks seq contiguity"
                )
            batches.append(batch)
        return batches
