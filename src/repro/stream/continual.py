"""Continual refinement of stream-born embeddings without forgetting.

The frozen-eval baseline (the pre-trained snapshot the benchmarks
score) is never touched: :class:`ContinualTrainer` owns a *copy* of
the entity table and refines it with bounded numpy TransE-L1 SGD
steps — relation embeddings and transfer matrices stay frozen, so the
service geometry new entities must fit into is fixed.

Two choices keep recovery trivial:

* **plain SGD, no optimizer state** — crash recovery is a full
  deterministic replay from seq 0 (the delta log is the only durable
  state), which bit-exactly reproduces the table with nothing but the
  log;
* **seeded reservoir replay** — each training step mixes fresh stream
  triples with a reservoir sample of old catalog triples
  (:class:`ReplayBuffer`), the standard defense against catastrophic
  forgetting, with the reservoir's RNG seeded so its contents are a
  pure function of the offer history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .deltas import OP_ADD, OP_NEW_ITEM, OP_UPDATE, DeltaBatch, StreamState
from .warmstart import warm_start


@dataclass(frozen=True)
class ContinualConfig:
    """Bounded-update knobs for one absorbed batch."""

    seed: int = 0
    learning_rate: float = 0.05
    margin: float = 2.0
    steps_per_batch: int = 4
    step_batch_size: int = 32
    replay_fraction: float = 0.5
    buffer_size: int = 2048
    max_norm: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.replay_fraction <= 1.0:
            raise ValueError("replay_fraction must be in [0, 1]")
        if self.steps_per_batch < 0:
            raise ValueError("steps_per_batch must be >= 0")
        if self.step_batch_size < 1:
            raise ValueError("step_batch_size must be >= 1")


class ReplayBuffer:
    """Seeded reservoir sample over every triple ever offered.

    Classic reservoir sampling: triple ``n`` is kept with probability
    ``capacity / n``, evicting a uniform victim.  The RNG is seeded at
    construction, so the buffer contents are a deterministic function
    of the offer sequence — which is itself the replayable op history.
    """

    def __init__(self, capacity: int, seed: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = np.random.default_rng([seed, 0x5E5E])
        self._items: List[Tuple[int, int, int]] = []
        self._offered = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def offered(self) -> int:
        return self._offered

    def offer(self, triple: Tuple[int, int, int]) -> None:
        self._offered += 1
        if len(self._items) < self.capacity:
            self._items.append(triple)
            return
        slot = int(self._rng.integers(self._offered))
        if slot < self.capacity:
            self._items[slot] = triple

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``(count, 3)`` triples drawn uniformly (with replacement)."""
        if not self._items or count < 1:
            return np.zeros((0, 3), dtype=np.int64)
        picks = rng.integers(len(self._items), size=count)
        return np.asarray([self._items[int(p)] for p in picks], dtype=np.int64)


class ContinualTrainer:
    """Warm-start + bounded replay-buffered TransE steps per batch.

    Owns the (growing) entity table; ``entity_table`` is the live
    serving candidate that :mod:`repro.stream.snapshot_swap` publishes.
    Per-batch RNG is ``default_rng([seed, batch_index, 1])`` so a
    replayed batch trains identically to the original run.
    """

    def __init__(
        self,
        entity_table: np.ndarray,
        relation_table: np.ndarray,
        config: ContinualConfig,
    ) -> None:
        self.entity_table = np.array(entity_table, dtype=np.float64, copy=True)
        self.relation_table = np.asarray(relation_table, dtype=np.float64)
        self.config = config
        self.buffer = ReplayBuffer(config.buffer_size, config.seed)
        self.steps_taken = 0
        self.warm_methods: Dict[str, int] = {}

    @property
    def num_entities(self) -> int:
        return int(self.entity_table.shape[0])

    def seed_buffer(self, triples: Sequence[Tuple[int, int, int]]) -> None:
        """Offer the base catalog's triples (sorted order = replayable)."""
        for triple in triples:
            self.buffer.offer(
                (int(triple[0]), int(triple[1]), int(triple[2]))
            )

    # ------------------------------------------------------------------
    # Batch absorption
    # ------------------------------------------------------------------
    def absorb(self, batch: DeltaBatch, state: StreamState) -> dict:
        """Warm-start this batch's new entities, then refine.

        ``state`` must already reflect the batch (the pipeline applies
        ops as it generates or replays them); it supplies category
        membership for warm starts.  Returns summary stats for metrics.
        """
        new_entities = [op.head for op in batch.ops if op.op == OP_NEW_ITEM]
        fresh: List[Tuple[int, int, int]] = []
        new_attrs: Dict[int, Dict[int, int]] = {e: {} for e in new_entities}
        for op in batch.ops:
            if op.op in (OP_ADD, OP_UPDATE):
                fresh.append((op.head, op.relation, op.tail))
                if op.head in new_attrs:
                    new_attrs[op.head][op.relation] = op.tail

        grown = self._grow(new_entities, new_attrs, state)
        for triple in fresh:
            self.buffer.offer(triple)
        loss = self._train(batch.batch_index, fresh)
        return {
            "new_entities": grown,
            "fresh_triples": len(fresh),
            "loss": loss,
        }

    def _grow(
        self,
        new_entities: List[int],
        new_attrs: Dict[int, Dict[int, int]],
        state: StreamState,
    ) -> int:
        if not new_entities:
            return 0
        dim = self.entity_table.shape[1]
        rows = np.zeros((len(new_entities), dim), dtype=np.float64)
        members_by_category: Dict[int, List[int]] = {}
        for position, entity in enumerate(new_entities):
            if entity != self.num_entities + position:
                raise ValueError(
                    f"entity {entity} arrives out of order (table has "
                    f"{self.num_entities + position} rows)"
                )
            category = state.category_of.get(entity, -1)
            if category not in members_by_category:
                members_by_category[category] = [
                    item
                    for item in state.live_items()
                    if state.category_of.get(item) == category
                    and item < self.num_entities
                ]
            vector, method = warm_start(
                entity,
                new_attrs.get(entity, {}),
                members_by_category[category],
                self.entity_table,
                self.relation_table,
                self.config.seed,
                max_norm=self.config.max_norm,
            )
            rows[position] = vector
            self.warm_methods[method] = self.warm_methods.get(method, 0) + 1
        self.entity_table = np.concatenate([self.entity_table, rows], axis=0)
        return len(new_entities)

    def _train(
        self,
        batch_index: int,
        fresh: List[Tuple[int, int, int]],
    ) -> float:
        """Bounded margin-SGD over fresh ∪ replay; returns summed loss."""
        config = self.config
        if config.steps_per_batch == 0 or (not fresh and not len(self.buffer)):
            return 0.0
        rng = np.random.default_rng([config.seed, batch_index, 1])
        fresh_arr = (
            np.asarray(fresh, dtype=np.int64)
            if fresh
            else np.zeros((0, 3), dtype=np.int64)
        )
        total_loss = 0.0
        for _ in range(config.steps_per_batch):
            n_replay = int(round(config.step_batch_size * config.replay_fraction))
            n_fresh = config.step_batch_size - n_replay
            parts = []
            if len(fresh_arr) and n_fresh:
                picks = rng.integers(len(fresh_arr), size=n_fresh)
                parts.append(fresh_arr[picks])
            replay = self.buffer.sample(n_replay, rng)
            if len(replay):
                parts.append(replay)
            if not parts:
                continue
            positives = np.concatenate(parts, axis=0)
            negatives = positives.copy()
            negatives[:, 2] = rng.integers(
                self.num_entities, size=len(negatives)
            )
            total_loss += self._sgd_step(positives, negatives)
            self.steps_taken += 1
        return float(total_loss)

    def _sgd_step(
        self, positives: np.ndarray, negatives: np.ndarray
    ) -> float:
        """One TransE-L1 margin step on the entity table only."""
        table, relations = self.entity_table, self.relation_table
        lr, margin = self.config.learning_rate, self.config.margin

        def residual(triples: np.ndarray) -> np.ndarray:
            return (
                table[triples[:, 0]]
                + relations[triples[:, 1]]
                - table[triples[:, 2]]
            )

        pos_res = residual(positives)
        neg_res = residual(negatives)
        pos_d = np.abs(pos_res).sum(axis=1)
        neg_d = np.abs(neg_res).sum(axis=1)
        violation = pos_d + margin - neg_d
        active = violation > 0
        loss = float(violation[active].sum())
        if not active.any():
            return 0.0
        # d|x|/dx = sign(x): push positive residuals down, negative up.
        pos_g = np.sign(pos_res[active]) * lr
        neg_g = np.sign(neg_res[active]) * lr
        touched = np.unique(
            np.concatenate(
                [
                    positives[active][:, 0],
                    positives[active][:, 2],
                    negatives[active][:, 0],
                    negatives[active][:, 2],
                ]
            )
        )
        np.add.at(table, positives[active][:, 0], -pos_g)
        np.add.at(table, positives[active][:, 2], pos_g)
        np.add.at(table, negatives[active][:, 0], neg_g)
        np.add.at(table, negatives[active][:, 2], -neg_g)
        norms = np.linalg.norm(table[touched], axis=1, keepdims=True)
        scale = np.minimum(1.0, self.config.max_norm / np.maximum(norms, 1e-12))
        table[touched] = table[touched] * scale
        return loss
