"""Delta-aware IVF maintenance: appends, tombstones, re-clustering.

A full IVF rebuild over a billion vectors for every catalog tick is
absurd; this module gives :class:`repro.index.IVFFlatIndex` (and the
PQ variant, which shares the inverted-list shape) an incremental
surface:

* **inserts** append to the nearest centroid's list — exactly what
  ``add`` already does, now tracked per-id so later ops can find rows;
* **deletes** tombstone the id: searches overfetch and filter, and the
  bytes stay until a compaction sweep strikes them out of the lists;
* **updates** remove the old row in place and re-insert, because a
  tombstone keyed by id would also kill the replacement;
* **maintenance** runs seeded triggers — compaction when the tombstone
  ratio crosses its threshold, a full re-cluster (new seeded k-means)
  when list-size skew shows the centroids have drifted from the data.

Everything is deterministic: triggers fire on exact counters and the
re-cluster seed derives from ``(seed, recluster_count)``, so a
replayed op history reproduces the same index bytes — the property
the stream chaos gate diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..index.ivf import IVFFlatIndex
from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class DeltaIndexConfig:
    """Maintenance trigger thresholds."""

    seed: int = 0
    tombstone_ratio: float = 0.25
    skew_ratio: float = 4.0
    min_vectors_for_recluster: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.tombstone_ratio <= 1.0:
            raise ValueError("tombstone_ratio must be in (0, 1]")
        if self.skew_ratio <= 1.0:
            raise ValueError("skew_ratio must be > 1")


class DeltaIndex:
    """Incremental insert/delete/update façade over an IVF-Flat index."""

    def __init__(
        self,
        base: IVFFlatIndex,
        config: Optional[DeltaIndexConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not base.is_trained:
            raise ValueError("the base index must be trained (or built)")
        self.index = base
        self.config = config if config is not None else DeltaIndexConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tombstones: Set[int] = set()
        self._cell_of: Dict[int, int] = {}
        for cell, ids in enumerate(base._list_ids):
            for vector_id in ids:
                self._cell_of[int(vector_id)] = cell
        self.recluster_count = 0
        self._inserts_c = self.metrics.counter(
            "stream.index.inserts", help="Vectors absorbed via list appends"
        )
        self._deletes_c = self.metrics.counter(
            "stream.index.deletes", help="Vectors tombstoned"
        )
        self._updates_c = self.metrics.counter(
            "stream.index.updates", help="Vectors replaced in place"
        )
        self._compactions_c = self.metrics.counter(
            "stream.index.compactions", help="Tombstone compaction sweeps"
        )
        self._reclusters_c = self.metrics.counter(
            "stream.index.reclusters", help="Full seeded re-clusterings"
        )
        self._tombstones_g = self.metrics.gauge(
            "stream.index.tombstones", help="Tombstoned ids awaiting compaction"
        )
        self._live_g = self.metrics.gauge(
            "stream.index.live", help="Live (non-tombstoned) vectors"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return self.index.ntotal - len(self.tombstones)

    @property
    def tombstone_fraction(self) -> float:
        total = self.index.ntotal
        return len(self.tombstones) / total if total else 0.0

    def list_sizes(self) -> np.ndarray:
        return np.asarray(
            [len(ids) for ids in self.index._list_ids], dtype=np.int64
        )

    def skew(self) -> float:
        """Largest list over mean non-empty list size (1.0 = balanced)."""
        sizes = self.list_sizes()
        live = sizes[sizes > 0]
        if not len(live):
            return 1.0
        return float(live.max() / live.mean())

    def _update_gauges(self) -> None:
        self._tombstones_g.set(len(self.tombstones))
        self._live_g.set(self.live_count)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Append new vectors to their nearest lists."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if not len(ids):
            return
        for vector_id in ids:
            if int(vector_id) in self._cell_of:
                raise ValueError(f"id {int(vector_id)} is already indexed")
        before = [len(cell_ids) for cell_ids in self.index._list_ids]
        self.index.add(vectors, ids)
        for cell, cell_ids in enumerate(self.index._list_ids):
            for vector_id in cell_ids[before[cell] :]:
                self._cell_of[int(vector_id)] = cell
        self._inserts_c.inc(len(ids))
        self._update_gauges()

    def delete(self, ids: np.ndarray) -> int:
        """Tombstone ids; returns how many were actually present."""
        removed = 0
        for vector_id in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            vector_id = int(vector_id)
            if vector_id in self._cell_of and vector_id not in self.tombstones:
                self.tombstones.add(vector_id)
                removed += 1
        self._deletes_c.inc(removed)
        self._update_gauges()
        return removed

    def update(self, vector_id: int, vector: np.ndarray) -> None:
        """Replace one vector's coordinates (same id, possibly new cell).

        A tombstone keyed by id cannot express this — it would also
        hide the replacement — so the old row is struck in place and
        the new one re-appended through the normal assignment path.
        """
        vector_id = int(vector_id)
        cell = self._cell_of.get(vector_id)
        if cell is None:
            raise KeyError(f"id {vector_id} is not indexed")
        self._strike(cell, vector_id)
        self.tombstones.discard(vector_id)
        del self._cell_of[vector_id]
        before = [len(cell_ids) for cell_ids in self.index._list_ids]
        self.index.add(
            np.asarray(vector, dtype=np.float64)[None, :],
            np.asarray([vector_id], dtype=np.int64),
        )
        for new_cell, cell_ids in enumerate(self.index._list_ids):
            for moved_id in cell_ids[before[new_cell] :]:
                self._cell_of[int(moved_id)] = new_cell
        self._updates_c.inc(1)
        self._update_gauges()

    def _strike(self, cell: int, vector_id: int) -> None:
        """Physically remove one row from one inverted list."""
        ids = self.index._list_ids[cell]
        keep = ids != vector_id
        self.index._list_ids[cell] = ids[keep]
        self.index._list_vectors[cell] = self.index._list_vectors[cell][keep]
        self.index._size_g.set(self.index.ntotal)

    # ------------------------------------------------------------------
    # Search (tombstone-aware)
    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` with tombstoned ids filtered out.

        Overfetches by the tombstone count so a fully-poisoned probe
        set still yields ``k`` live answers when they exist; rows pad
        with ``(inf, -1)`` like the base index.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        overfetch = k + len(self.tombstones)
        distances, ids = self.index.search(queries, overfetch, nprobe=nprobe)
        out_d = np.full((len(queries), k), np.inf)
        out_i = np.full((len(queries), k), -1, dtype=np.int64)
        for row in range(len(queries)):
            keep = [
                col
                for col in range(overfetch)
                if ids[row, col] >= 0
                and int(ids[row, col]) not in self.tombstones
            ][:k]
            for position, col in enumerate(keep):
                out_d[row, position] = distances[row, col]
                out_i[row, position] = ids[row, col]
        return out_d, out_i

    # ------------------------------------------------------------------
    # Maintenance triggers
    # ------------------------------------------------------------------
    def maintenance(self) -> List[str]:
        """Run due maintenance; returns the actions taken (in order)."""
        actions: List[str] = []
        if (
            self.tombstones
            and self.tombstone_fraction >= self.config.tombstone_ratio
        ):
            self.compact()
            actions.append("compact")
        if (
            self.live_count >= self.config.min_vectors_for_recluster
            and self.skew() >= self.config.skew_ratio
        ):
            self.recluster()
            actions.append("recluster")
        return actions

    def compact(self) -> int:
        """Strike every tombstoned row out of its list; returns count."""
        struck = 0
        for vector_id in sorted(self.tombstones):
            cell = self._cell_of.pop(vector_id, None)
            if cell is None:
                continue
            self._strike(cell, vector_id)
            struck += 1
        self.tombstones.clear()
        self._compactions_c.inc(1)
        self._update_gauges()
        return struck

    def recluster(self) -> None:
        """Re-train the coarse quantizer on the live vectors (seeded).

        The new seed derives from ``(config.seed, recluster_count)``,
        so the trigger history — itself deterministic — fully fixes
        the resulting centroids and list assignment.
        """
        if self.tombstones:
            self.compact()
        vectors, ids = self._live_rows()
        base = self.index
        nlist = min(base.nlist, max(1, len(vectors)))
        rebuilt = IVFFlatIndex(
            dim=base.dim,
            nlist=nlist,
            nprobe=min(base.nprobe, nlist),
            metric=base.metric,
            seed=int(
                np.random.default_rng(
                    [self.config.seed, self.recluster_count]
                ).integers(2**31)
            ),
            kmeans_iters=base.kmeans_iters,
            registry=base.metrics,
        )
        rebuilt.build(vectors, ids)
        self.index = rebuilt
        self._cell_of = {
            int(vector_id): cell
            for cell, cell_ids in enumerate(rebuilt._list_ids)
            for vector_id in cell_ids
        }
        self.recluster_count += 1
        self._reclusters_c.inc(1)
        self._update_gauges()

    def _live_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live vectors and ids, sorted by id (rebuild input)."""
        pairs = []
        for cell, cell_ids in enumerate(self.index._list_ids):
            for position, vector_id in enumerate(cell_ids):
                if int(vector_id) not in self.tombstones:
                    pairs.append(
                        (
                            int(vector_id),
                            self.index._list_vectors[cell][position],
                        )
                    )
        pairs.sort(key=lambda pair: pair[0])
        if not pairs:
            return (
                np.zeros((0, self.index.dim), dtype=np.float64),
                np.zeros((0,), dtype=np.int64),
            )
        ids = np.asarray([pair[0] for pair in pairs], dtype=np.int64)
        vectors = np.asarray([pair[1] for pair in pairs], dtype=np.float64)
        return vectors, ids
