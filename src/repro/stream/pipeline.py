"""The streaming ingest pipeline: generate → log → absorb → publish.

One loop ties the subsystem together, in strict write-ahead order per
batch:

1. **generate** the batch (or *replay* it, when the delta log already
   holds a verified segment for this index — recovery and steady state
   are the same loop, not two code paths);
2. **append** it to the checksummed delta log *before* any state it
   implies is acted on;
3. **absorb** it: warm-start + continual-train new entities
   (:class:`repro.stream.continual.ContinualTrainer`), apply
   insert/update/delete to the delta-aware ANN index, run seeded
   maintenance triggers;
4. every ``publish_every`` batches, **publish** a versioned
   store+index snapshot and promote it atomically.

Crash analysis, window by window: a crash during (1) loses nothing —
the log prefix replays and the batch regenerates from its seeded RNG;
during (2) it leaves a torn tail the log scan forgives; between (2)
and (3/4) the logged batch replays through the *same* absorb path on
recovery.  Publishing is idempotent-deterministic (every payload write
is atomic and byte-stable), so re-publishing over a torn version
directory converges to identical bytes.  Because the whole metric
surface counts *absorbed* work — never file writes — a recovered run's
``stream.*`` dump is byte-identical to a never-crashed one, which is
precisely what ``repro stream chaos`` gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..config import ExperimentConfig
from ..core import KeyRelationSelector, PKGM, PKGMServer
from ..data import generate_catalog
from ..index.ivf import IVFFlatIndex
from ..obs.metrics import MetricsRegistry
from .continual import ContinualConfig, ContinualTrainer
from .deltas import (
    OP_NEW_ITEM,
    OP_RETIRE,
    OP_UPDATE,
    CatalogDeltaStream,
    DeltaBatch,
    DeltaLog,
    DeltaStreamConfig,
    StreamState,
)
from .index_delta import DeltaIndex, DeltaIndexConfig
from .snapshot_swap import SnapshotVersioner


@dataclass(frozen=True)
class StreamRunConfig:
    """One stream run, end to end."""

    batches: int = 12
    publish_every: int = 4
    num_shards: int = 1
    nlist: int = 8
    nprobe: int = 4
    metric: str = "l2"
    delta: DeltaStreamConfig = field(default_factory=DeltaStreamConfig)
    continual: ContinualConfig = field(default_factory=ContinualConfig)
    index: DeltaIndexConfig = field(default_factory=DeltaIndexConfig)

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ValueError("batches must be >= 1")
        if self.publish_every < 1:
            raise ValueError("publish_every must be >= 1")


@dataclass(frozen=True)
class StreamReport:
    """Deterministic outcome summary of one run/replay."""

    batches: int
    replayed_batches: int
    ops: int
    last_seq: int
    live_items: int
    entities: int
    publishes: int
    state_checksum: str
    warm_methods: Dict[str, int]
    index_live: int
    index_tombstones: int

    def lines(self) -> List[str]:
        """Timing-invariant stdout lines (byte-diffed by the gates).

        ``replayed_batches`` is deliberately absent: a clean run and a
        crash-recovered run differ only in how many batches came from
        the log, and the transcript must not betray that.
        """
        warm = " ".join(
            f"{name}={self.warm_methods[name]}"
            for name in sorted(self.warm_methods)
        )
        return [
            (
                f"stream: {self.batches} batches | {self.ops} ops | "
                f"last seq {self.last_seq}"
            ),
            (
                f"catalog: {self.live_items} live items | "
                f"{self.entities} entities"
            ),
            f"warmstart: {warm if warm else 'none'}",
            (
                f"index: {self.index_live} live | "
                f"{self.index_tombstones} tombstoned"
            ),
            f"published: {self.publishes} versions",
            f"state checksum: {self.state_checksum}",
        ]


class StreamPipeline:
    """Deterministic catalog-delta ingest over one run directory."""

    def __init__(
        self,
        experiment: ExperimentConfig,
        run_dir: Union[str, Path],
        config: Optional[StreamRunConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        from_checkpoint: Optional[Union[str, Path]] = None,
    ) -> None:
        self.experiment = experiment
        self.run_dir = Path(run_dir)
        self.config = config if config is not None else StreamRunConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()

        catalog = generate_catalog(experiment.catalog)
        self.catalog = catalog
        item_to_category = {
            item.entity_id: item.category_id for item in catalog.items
        }
        self.selector = KeyRelationSelector(
            catalog.store, item_to_category, k=experiment.key_relations
        )
        if from_checkpoint is not None:
            # Seed every table from a trained snapshot instead of the
            # untrained smoke model: the published stream snapshots then
            # serve the trained embeddings from batch zero.
            server = PKGMServer.load(from_checkpoint)
            mismatches = []
            if server.num_entities != len(catalog.entities):
                mismatches.append(
                    f"entities {server.num_entities} != {len(catalog.entities)}"
                )
            if server.num_relations != len(catalog.relations):
                mismatches.append(
                    f"relations {server.num_relations} != "
                    f"{len(catalog.relations)}"
                )
            if server.k != experiment.key_relations:
                mismatches.append(
                    f"key relations k={server.k} != "
                    f"{experiment.key_relations}"
                )
            if mismatches:
                raise ValueError(
                    f"checkpoint {from_checkpoint!s} does not match the "
                    "experiment catalog: " + "; ".join(mismatches)
                )
            self.dim = server.dim
            self.relation_table = np.array(
                server.relation_table, dtype=np.float64
            )
            self.transfer = np.array(server.transfer_tensor, dtype=np.float64)
            entity_table = np.array(server.entity_table, dtype=np.float64)
        else:
            model = PKGM(
                len(catalog.entities),
                len(catalog.relations),
                experiment.pkgm,
                rng=np.random.default_rng(experiment.seed),
            )
            self.dim = model.config.dim
            self.relation_table = np.array(
                model.triple_module.relation_embeddings.weight.data,
                dtype=np.float64,
            )
            self.transfer = np.array(
                model.relation_module.transfer_matrices.data, dtype=np.float64
            )
            entity_table = np.asarray(
                model.triple_module.entity_embeddings.weight.data,
                dtype=np.float64,
            )
        self.state = StreamState.from_catalog(catalog)
        self.stream = CatalogDeltaStream(self.state, self.config.delta)
        self.log = DeltaLog(self.run_dir / "deltas")
        self.trainer = ContinualTrainer(
            entity_table,
            self.relation_table,
            self.config.continual,
        )
        self.trainer.seed_buffer(sorted(self.state.triples()))

        base_items = np.asarray(self.selector.items(), dtype=np.int64)
        nlist = min(self.config.nlist, max(1, len(base_items)))
        base_index = IVFFlatIndex(
            dim=self.dim,
            nlist=nlist,
            nprobe=min(self.config.nprobe, nlist),
            metric=self.config.metric,
            seed=experiment.seed,
        )
        base_index.build(self.trainer.entity_table[base_items], base_items)
        self.index = DeltaIndex(
            base_index, self.config.index, registry=self.metrics
        )
        self.versioner = SnapshotVersioner(self.run_dir, registry=self.metrics)
        self.publishes = 0

        self._batches_c = self.metrics.counter(
            "stream.batches", help="Delta batches absorbed"
        )
        self._ops_c = {
            kind: self.metrics.counter(
                "stream.ops", help="Delta ops absorbed", labels={"op": kind}
            )
            for kind in ("new-item", "add", "update", "delete", "retire")
        }
        self._entities_added_c = self.metrics.counter(
            "stream.entities_added", help="Stream-born entities warm-started"
        )
        self._fresh_triples_c = self.metrics.counter(
            "stream.fresh_triples", help="Fresh triples fed to training"
        )
        self._train_steps_c = self.metrics.counter(
            "stream.train_steps", help="Continual SGD steps taken"
        )
        self._train_loss_c = self.metrics.counter(
            "stream.train_loss", help="Summed continual margin loss"
        )
        self._seq_g = self.metrics.gauge(
            "stream.seq", help="Next op sequence number"
        )
        self._live_g = self.metrics.gauge(
            "stream.live_items", help="Live (servable) item entities"
        )
        self._entities_g = self.metrics.gauge(
            "stream.entities", help="Total entity rows (live + retired)"
        )
        self._stale_ops_g = self.metrics.gauge(
            "stream.staleness.ops_since_publish",
            help="Ops absorbed since the promoted snapshot",
        )
        self._stale_batches_g = self.metrics.gauge(
            "stream.staleness.batches_since_publish",
            help="Batches absorbed since the promoted snapshot",
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, batches: Optional[int] = None) -> StreamReport:
        """Run (or resume, or replay) ``batches`` ingest rounds.

        The verified delta-log prefix replays first — through exactly
        the same absorb path — then generation continues from wherever
        the log ends.  A fresh directory runs purely generatively; a
        complete one replays purely; a crashed one does both.
        """
        total = self.config.batches if batches is None else batches
        logged = self.log.scan()
        ops_total = 0
        replayed = 0
        for index in range(total):
            if index < len(logged):
                batch = logged[index]
                for op in batch.ops:
                    self.state.apply(op)
                replayed += 1
            else:
                batch = self.stream.generate(index)
                self.log.append(batch)
            ops_total += len(batch.ops)
            self._absorb(batch)
            if (index + 1) % self.config.publish_every == 0:
                self.publish()
        return StreamReport(
            batches=total,
            replayed_batches=replayed,
            ops=ops_total,
            last_seq=self.state.next_seq - 1,
            live_items=self.state.live_count,
            entities=self.state.next_entity_id,
            publishes=self.publishes,
            state_checksum=self.state.checksum(),
            warm_methods=dict(self.trainer.warm_methods),
            index_live=self.index.live_count,
            index_tombstones=len(self.index.tombstones),
        )

    def _absorb(self, batch: DeltaBatch) -> None:
        """Apply one batch to the trainer and the index (shared path)."""
        for op in batch.ops:
            self._ops_c[op.op].inc(1)
        steps_before = self.trainer.steps_taken
        stats = self.trainer.absorb(batch, self.state)
        self._entities_added_c.inc(stats["new_entities"])
        self._fresh_triples_c.inc(stats["fresh_triples"])
        self._train_steps_c.inc(self.trainer.steps_taken - steps_before)
        self._train_loss_c.inc(stats["loss"])

        new_items = [op.head for op in batch.ops if op.op == OP_NEW_ITEM]
        if new_items:
            ids = np.asarray(new_items, dtype=np.int64)
            self.index.insert(self.trainer.entity_table[ids], ids)
        for op in batch.ops:
            if op.op == OP_RETIRE:
                self.index.delete(np.asarray([op.head], dtype=np.int64))
            elif op.op == OP_UPDATE and op.head not in new_items:
                # A re-described live item gets its row re-embedded; a
                # tombstone cannot express that (it would also hide the
                # replacement).
                if (
                    op.head in self.index._cell_of
                    and op.head not in self.index.tombstones
                ):
                    self.index.update(
                        op.head, self.trainer.entity_table[op.head]
                    )
        self.index.maintenance()

        self._batches_c.inc(1)
        self._seq_g.set(self.state.next_seq)
        self._live_g.set(self.state.live_count)
        self._entities_g.set(self.state.next_entity_id)
        self._stale_ops_g.add(len(batch.ops))
        self._stale_batches_g.add(1)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _key_relations_for(self, item: int) -> List[int]:
        try:
            return self.selector.for_item(item)
        except KeyError:
            category = self.state.category_of.get(item, -1)
            try:
                return self.selector.for_category(category)
            except KeyError:
                return self.selector.for_category(
                    self.selector.categories()[0]
                )

    def publish(self) -> Path:
        """Freeze the live state as the next snapshot version."""
        if self.index.tombstones:
            self.index.compact()
        live = self.state.live_items()
        item_ids = np.asarray(live, dtype=np.int64)
        key_table = np.asarray(
            [self._key_relations_for(item) for item in live], dtype=np.int64
        ).reshape(len(live), self.selector.k)
        directory = self.versioner.publish(
            self.publishes,
            {
                "entity_table": self.trainer.entity_table,
                "relation_table": self.relation_table,
                "transfer": self.transfer,
                "item_ids": item_ids,
                "key_relations": key_table,
            },
            self.index.index,
            seq=self.state.next_seq - 1,
            k=self.selector.k,
            dim=self.dim,
            num_shards=self.config.num_shards,
        )
        self.publishes += 1
        self._stale_ops_g.set(0)
        self._stale_batches_g.set(0)
        return directory

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_dump(self) -> str:
        """Canonical JSON of every ``stream.*`` series (chaos gate input)."""
        snapshot = {
            key: value
            for key, value in self.metrics.snapshot().items()
            if key.startswith("stream.")
        }
        return json.dumps(snapshot, sort_keys=True, indent=2)
