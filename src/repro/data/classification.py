"""Item-classification dataset builder (paper §III-B, Table III).

The paper frames item classification as text classification over item
titles, with item categories as target classes, and deliberately caps
each category at <100 training instances to showcase pre-training under
scarce supervision.  This builder reproduces that protocol on the
synthetic catalog: one example per item (title, category label), capped
per category, split train/test/dev.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog, ItemRecord
from .titles import TitleGenerator


@dataclass(frozen=True)
class ClassificationExample:
    """One labelled example: a title and its category."""

    item_id: int
    entity_id: int
    title: Tuple[str, ...]
    label: int


@dataclass
class ClassificationDataset:
    """Train/test/dev splits plus bookkeeping (Table III shape)."""

    num_categories: int
    train: List[ClassificationExample]
    test: List[ClassificationExample]
    dev: List[ClassificationExample]

    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.test), len(self.dev))

    def as_table_row(self, name: str = "dataset") -> str:
        """Format like Table III: name | # category | # Train | # Test | # Dev."""
        return (
            f"{name} | {self.num_categories} | {len(self.train)} | "
            f"{len(self.test)} | {len(self.dev)}"
        )


def build_classification_dataset(
    catalog: Catalog,
    titles: TitleGenerator,
    max_per_category: int = 100,
    test_fraction: float = 0.2,
    dev_fraction: float = 0.2,
    seed: int = 0,
) -> ClassificationDataset:
    """Build the classification dataset from a catalog.

    Follows the paper's preparation: "we constrain the instance of each
    category less than 100 during data preparation".  Splits are
    stratified by category so every class appears in every split when
    it has enough instances.
    """
    if max_per_category < 1:
        raise ValueError("max_per_category must be >= 1")
    if test_fraction < 0 or dev_fraction < 0 or test_fraction + dev_fraction >= 1:
        raise ValueError("fractions must be nonnegative and sum below 1")
    rng = np.random.default_rng(seed)

    by_category: Dict[int, List[ItemRecord]] = defaultdict(list)
    for item in catalog.items:
        by_category[item.category_id].append(item)

    train: List[ClassificationExample] = []
    test: List[ClassificationExample] = []
    dev: List[ClassificationExample] = []
    for category_id in sorted(by_category):
        members = by_category[category_id]
        order = rng.permutation(len(members))[: min(max_per_category, len(members))]
        chosen = [members[i] for i in order]
        examples = [
            ClassificationExample(
                item_id=item.item_id,
                entity_id=item.entity_id,
                title=tuple(titles.title_of(item)),
                label=category_id,
            )
            for item in chosen
        ]
        n = len(examples)
        n_test = int(round(n * test_fraction))
        n_dev = int(round(n * dev_fraction))
        # Keep at least one training example per category when possible.
        if n - n_test - n_dev < 1 and n >= 1:
            n_test = max(0, min(n_test, n - 1))
            n_dev = max(0, min(n_dev, n - 1 - n_test))
        test.extend(examples[:n_test])
        dev.extend(examples[n_test : n_test + n_dev])
        train.extend(examples[n_test + n_dev :])

    for split in (train, test, dev):
        order = rng.permutation(len(split))
        split[:] = [split[i] for i in order]

    return ClassificationDataset(
        num_categories=len(catalog.schema),
        train=train,
        test=test,
        dev=dev,
    )
