"""Product-alignment dataset builder (paper §III-C, Table V).

Two items *align* when they are listings of the same product.  The
paper builds three per-category datasets of labelled title pairs (7 :
1.5 : 1.5 train/test/dev), evaluated two ways:

* *classification* (Test-C / Dev-C): binary paraphrase-style accuracy
  over positive and negative pairs;
* *ranking* (Test-R / Dev-R): each aligned pair is ranked against 99
  corrupted pairs, reported as Hit@k.

Our generator mirrors that: positives are item pairs sharing a
``product_id``; negatives pair items of *different* products within the
same category (cross-category pairs would be trivially negative — the
paper notes alignment is only needed within a type).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog, ItemRecord
from .titles import TitleGenerator


@dataclass(frozen=True)
class AlignmentPair:
    """A labelled pair of item titles (1 = same product)."""

    item_a: int
    item_b: int
    entity_a: int
    entity_b: int
    title_a: Tuple[str, ...]
    title_b: Tuple[str, ...]
    label: int


@dataclass(frozen=True)
class RankingCase:
    """One ranking instance: an aligned pair plus corrupted candidates.

    ``candidates`` holds ``n`` replacement items for ``item_b`` (the
    paper corrupts one side of the aligned pair with 99 random items);
    the model should rank the true pair above all corrupted ones.
    """

    positive: AlignmentPair
    candidates: Tuple[AlignmentPair, ...]


@dataclass
class AlignmentDataset:
    """One per-category alignment dataset (a row of Table V)."""

    category_id: int
    category_name: str
    train: List[AlignmentPair]
    test_c: List[AlignmentPair]
    dev_c: List[AlignmentPair]
    test_r: List[RankingCase]
    dev_r: List[RankingCase]

    def as_table_row(self, name: str) -> str:
        """Format like Table V: name | # Train | # Test-C | # Dev-C | # Test-R | # Dev-R."""
        return (
            f"{name} | {len(self.train)} | {len(self.test_c)} | {len(self.dev_c)} | "
            f"{len(self.test_r)} | {len(self.dev_r)}"
        )


def build_alignment_dataset(
    catalog: Catalog,
    titles: TitleGenerator,
    category_id: int,
    negatives_per_positive: int = 1,
    ranking_candidates: int = 99,
    train_fraction: float = 0.7,
    test_fraction: float = 0.15,
    train_samples_per_pair: int = 1,
    seed: int = 0,
) -> AlignmentDataset:
    """Build the alignment dataset for one category.

    Positive pairs: all unordered item pairs within a product (each
    side's title generated independently, so surfaces differ).
    Negative pairs: for each positive, ``negatives_per_positive`` pairs
    of items from different products of the same category.
    Ranking cases: built from test/dev positives with
    ``ranking_candidates`` corruptions each.

    ``train_samples_per_pair`` re-samples each *training* positive that
    many times with freshly generated titles — label-preserving data
    augmentation that mirrors sellers re-listing the same product with
    new copy.  Test/dev splits are never augmented.
    """
    if train_samples_per_pair < 1:
        raise ValueError("train_samples_per_pair must be >= 1")
    if not 0 < train_fraction < 1 or not 0 < test_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if train_fraction + 2 * test_fraction > 1.0 + 1e-9:
        raise ValueError("train + 2*test fractions exceed 1")
    rng = np.random.default_rng(seed)

    members = catalog.items_of_category(category_id)
    if not members:
        raise ValueError(f"category {category_id} has no items")
    by_product: Dict[int, List[ItemRecord]] = defaultdict(list)
    for item in members:
        by_product[item.product_id].append(item)

    positives: List[Tuple[ItemRecord, ItemRecord]] = []
    for product_items in by_product.values():
        for i in range(len(product_items)):
            for j in range(i + 1, len(product_items)):
                positives.append((product_items[i], product_items[j]))
    if not positives:
        raise ValueError(
            f"category {category_id} has no multi-item products; "
            "increase max_items_per_product"
        )

    order = rng.permutation(len(positives))
    positives = [positives[i] for i in order]

    def make_pair(a: ItemRecord, b: ItemRecord, label: int) -> AlignmentPair:
        return AlignmentPair(
            item_a=a.item_id,
            item_b=b.item_id,
            entity_a=a.entity_id,
            entity_b=b.entity_id,
            title_a=tuple(titles.title_of(a)),
            title_b=tuple(titles.title_of(b)),
            label=label,
        )

    def sample_negative_partner(anchor: ItemRecord) -> ItemRecord:
        while True:
            other = members[int(rng.integers(len(members)))]
            if other.product_id != anchor.product_id:
                return other

    n = len(positives)
    n_train = int(round(n * train_fraction))
    n_test = int(round(n * test_fraction))
    train_pos = positives[:n_train]
    test_pos = positives[n_train : n_train + n_test]
    dev_pos = positives[n_train + n_test :]

    def build_classification_split(
        pos: List[Tuple[ItemRecord, ItemRecord]], samples_per_pair: int = 1
    ) -> List[AlignmentPair]:
        pairs: List[AlignmentPair] = []
        for a, b in pos:
            for _ in range(samples_per_pair):
                pairs.append(make_pair(a, b, 1))
                for _ in range(negatives_per_positive):
                    pairs.append(make_pair(a, sample_negative_partner(a), 0))
        shuffle = rng.permutation(len(pairs))
        return [pairs[i] for i in shuffle]

    def build_ranking_split(pos: List[Tuple[ItemRecord, ItemRecord]]) -> List[RankingCase]:
        cases: List[RankingCase] = []
        for a, b in pos:
            positive_pair = make_pair(a, b, 1)
            candidates = tuple(
                make_pair(a, sample_negative_partner(a), 0)
                for _ in range(ranking_candidates)
            )
            cases.append(RankingCase(positive=positive_pair, candidates=candidates))
        return cases

    category_name = next(
        c.name for c in catalog.schema if c.category_id == category_id
    )
    return AlignmentDataset(
        category_id=category_id,
        category_name=category_name,
        train=build_classification_split(train_pos, train_samples_per_pair),
        test_c=build_classification_split(test_pos),
        dev_c=build_classification_split(dev_pos),
        test_r=build_ranking_split(test_pos),
        dev_r=build_ranking_split(dev_pos),
    )
