"""Implicit-feedback interaction generator (paper §III-D, Table IX).

The paper samples Taobao click/purchase records: 29,015 users, 37,847
items, 443,425 interactions, every user with >= 10 interactions, and
evaluates NCF leave-one-out on the *latest* interaction per user.

We substitute a preference-model generator whose key property is the
one PKGM exploits: **interactions correlate with item attributes**.
Each user draws a persona — a couple of preferred categories and a few
preferred attribute values (a brand she trusts, a color she likes) —
and interacts mostly with matching items plus a popularity-weighted
exploration tail.  NCF alone sees only the bipartite graph; the PKGM
service vectors carry exactly the attribute signal that explains it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .catalog import Catalog, ItemRecord


@dataclass(frozen=True)
class InteractionConfig:
    """Scale and behaviour knobs for interaction generation."""

    num_users: int = 100
    min_interactions_per_user: int = 10
    max_interactions_per_user: int = 25
    preferred_categories_per_user: int = 2
    preferred_values_per_user: int = 3
    preference_strength: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")
        if not 1 <= self.min_interactions_per_user <= self.max_interactions_per_user:
            raise ValueError(
                "need 1 <= min_interactions_per_user <= max_interactions_per_user"
            )
        if self.preference_strength < 0:
            raise ValueError("preference_strength must be >= 0")


@dataclass(frozen=True)
class Interaction:
    """One implicit-feedback event; ``timestamp`` orders a user's history."""

    user_id: int
    item_id: int
    timestamp: int


@dataclass
class InteractionDataset:
    """The generated bipartite interaction data (Table IX shape)."""

    num_users: int
    num_items: int
    interactions: List[Interaction]
    user_personas: List[Dict[str, object]]

    def as_table_row(self, name: str = "TAOBAO-Recommendation (synthetic)") -> str:
        """Format like Table IX: name | # Items | # Users | # Interactions."""
        return (
            f"{name} | {self.num_items} | {self.num_users} | "
            f"{len(self.interactions)}"
        )

    def by_user(self) -> Dict[int, List[Interaction]]:
        """Interactions grouped per user, sorted by timestamp."""
        grouped: Dict[int, List[Interaction]] = defaultdict(list)
        for interaction in self.interactions:
            grouped[interaction.user_id].append(interaction)
        for history in grouped.values():
            history.sort(key=lambda x: x.timestamp)
        return dict(grouped)

    def leave_one_out(self) -> Tuple[List[Interaction], Dict[int, Interaction]]:
        """The paper's evaluation split: hold out each user's latest event.

        Returns (train interactions, {user_id: held-out interaction}).
        """
        train: List[Interaction] = []
        held: Dict[int, Interaction] = {}
        for user_id, history in self.by_user().items():
            held[user_id] = history[-1]
            train.extend(history[:-1])
        return train, held


def generate_interactions(
    catalog: Catalog,
    config: InteractionConfig,
) -> InteractionDataset:
    """Generate preference-driven implicit feedback over catalog items."""
    rng = np.random.default_rng(config.seed)
    items = catalog.items
    if len(items) < config.max_interactions_per_user:
        raise ValueError(
            "catalog has fewer items than max_interactions_per_user; "
            "grow the catalog or shrink the config"
        )
    num_categories = len(catalog.schema)

    # Zipf-ish base popularity: a few blockbuster items, a long tail.
    popularity = 1.0 / (1.0 + np.arange(len(items)))
    popularity = popularity[rng.permutation(len(items))]

    # Pre-compute each item's attribute value set for fast matching.
    item_values: List[Set[str]] = [set(item.attributes.values()) for item in items]
    item_category = np.asarray([item.category_id for item in items])

    all_values = sorted({v for values in item_values for v in values})
    interactions: List[Interaction] = []
    personas: List[Dict[str, object]] = []

    for user_id in range(config.num_users):
        n_cat = min(config.preferred_categories_per_user, num_categories)
        liked_categories = set(
            int(c) for c in rng.choice(num_categories, size=n_cat, replace=False)
        )
        n_val = min(config.preferred_values_per_user, len(all_values))
        liked_values = set(
            all_values[i] for i in rng.choice(len(all_values), size=n_val, replace=False)
        )
        personas.append(
            {"categories": liked_categories, "values": liked_values}
        )

        affinity = popularity.copy()
        in_category = np.isin(item_category, list(liked_categories))
        affinity = affinity * np.where(in_category, config.preference_strength, 1.0)
        value_match = np.asarray(
            [len(values & liked_values) for values in item_values], dtype=np.float64
        )
        affinity = affinity * (1.0 + config.preference_strength * value_match)
        probabilities = affinity / affinity.sum()

        count = int(
            rng.integers(
                config.min_interactions_per_user,
                config.max_interactions_per_user + 1,
            )
        )
        chosen = rng.choice(len(items), size=count, replace=False, p=probabilities)
        for timestamp, item_index in enumerate(chosen):
            interactions.append(
                Interaction(
                    user_id=user_id,
                    item_id=items[int(item_index)].item_id,
                    timestamp=timestamp,
                )
            )

    return InteractionDataset(
        num_users=config.num_users,
        num_items=len(items),
        interactions=interactions,
        user_personas=personas,
    )
