"""Seller title generation.

Item titles on the platform are keyword soups assembled by shop
managers: brand + attribute keywords + category noun + marketing filler,
in idiosyncratic order.  The classification and alignment tasks both
consume titles, so the generator controls exactly the signal/noise
trade-off those tasks measure:

* attribute words may be *dropped* (title under-describes the item —
  the gap PKGM service vectors fill);
* marketing noise words are *injected*;
* word order is shuffled per listing, so two listings of the same
  product have different surface forms (the alignment challenge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog, ItemRecord
from .schema import CategorySpec

MARKETING_WORDS = (
    "new", "hot", "sale", "2021", "free-shipping", "official", "promo",
    "quality", "fashion", "trend", "gift", "best", "deal", "genuine",
    "limited", "cheap", "boutique", "flagship",
)


@dataclass(frozen=True)
class TitleConfig:
    """Noise knobs for title generation.

    ``noun_drop_probability`` lets sellers omit the category noun
    itself ("floral chiffon 2021 sale" with no "skirt"), which is
    common on real platforms and is what keeps classification from
    being trivially solvable from the noun alone.
    """

    attribute_drop_probability: float = 0.35
    noun_drop_probability: float = 0.0
    noise_word_count_max: int = 4
    shuffle: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.attribute_drop_probability < 1.0:
            raise ValueError("attribute_drop_probability must be in [0, 1)")
        if not 0.0 <= self.noun_drop_probability < 1.0:
            raise ValueError("noun_drop_probability must be in [0, 1)")
        if self.noise_word_count_max < 0:
            raise ValueError("noise_word_count_max must be >= 0")


class TitleGenerator:
    """Generates word-sequence titles for catalog items."""

    def __init__(
        self,
        catalog: Catalog,
        config: Optional[TitleConfig] = None,
        seed: int = 0,
    ) -> None:
        self.catalog = catalog
        self.config = config if config is not None else TitleConfig()
        self.rng = np.random.default_rng(seed)
        self._category_by_id: Dict[int, CategorySpec] = {
            c.category_id: c for c in catalog.schema
        }

    def title_of(self, item: ItemRecord) -> List[str]:
        """Generate one title for ``item`` (stochastic per call).

        The title always contains the category noun; each seller-filled
        attribute value appears unless dropped; marketing words pad the
        remainder.
        """
        category = self._category_by_id[item.category_id]
        words: List[str] = []
        if self.rng.random() >= self.config.noun_drop_probability:
            words.append(category.title_noun)
        for value in item.attributes.values():
            if self.rng.random() >= self.config.attribute_drop_probability:
                words.append(value)
        n_noise = int(self.rng.integers(0, self.config.noise_word_count_max + 1))
        if n_noise:
            picks = self.rng.choice(len(MARKETING_WORDS), size=n_noise, replace=False)
            words.extend(MARKETING_WORDS[i] for i in picks)
        if not words:  # never emit an empty title
            words.append(category.title_noun)
        if self.config.shuffle:
            order = self.rng.permutation(len(words))
            words = [words[i] for i in order]
        return words

    def titles_for_all(self) -> Dict[int, List[str]]:
        """One title per catalog item, keyed by item_id."""
        return {item.item_id: self.title_of(item) for item in self.catalog.items}


def title_vocabulary(catalog: Catalog) -> List[str]:
    """Every word that can appear in any title of ``catalog``.

    Category nouns + all schema attribute values + per-product model
    codes + the marketing words — a closed vocabulary, so the tokenizer
    never emits [UNK] on generated titles.
    """
    words = set(MARKETING_WORDS)
    for category in catalog.schema:
        words.add(category.title_noun)
        for attribute in category.attributes:
            words.update(attribute.values)
    for product in catalog.products:
        words.update(product.attributes.values())
    return sorted(words)
