"""Category / attribute schema for the synthetic product catalog.

The real PKG organizes ~0.2B items under an item category tree, with
seller-filled attributes whose vocabulary depends on the category
(skirts have fabrics and lengths; phones have memory and screen sizes).
This module builds a configurable schema with the same *shape*:

* a pool of attribute templates (brand, color, material, ...), each with
  its own value vocabulary and fill probability;
* category specs that pick a subset of templates, optionally with a
  category-restricted value subset (so brands cluster by category, as
  they do in reality);
* combinatorially generated category names, enough to scale to the
  paper's 1293-category classification task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Attribute template pool
# ----------------------------------------------------------------------

_BRAND_SYLLABLES = (
    "au", "bel", "cor", "dan", "el", "fei", "gran", "hua", "jin", "kai",
    "lan", "mei", "nor", "os", "pan", "qi", "ran", "sol", "tian", "uni",
    "vel", "wei", "xin", "yue", "zen",
)

_COLORS = (
    "red", "green", "blue", "black", "white", "pink", "purple", "grey",
    "yellow", "navy", "beige", "brown", "orange", "teal", "coral", "ivory",
)

_MATERIALS = (
    "cotton", "silk", "wool", "linen", "polyester", "denim", "leather",
    "bamboo", "nylon", "cashmere", "velvet", "lace", "chiffon", "canvas",
)

_SIZES = ("xs", "s", "m", "l", "xl", "xxl", "90cm", "100cm", "110cm", "120cm")

_STYLES = (
    "casual", "sweet", "vintage", "sport", "elegant", "korean", "classic",
    "minimalist", "bohemian", "street", "preppy", "romantic",
)

_SEASONS = ("spring", "summer", "autumn", "winter", "all-season")

_CROWDS = (
    "girls", "boys", "women", "men", "children", "teens", "toddlers",
    "students", "parents",
)

_ORIGINS = (
    "guangdong", "zhejiang", "jiangsu", "fujian", "shandong", "shanghai",
    "hangzhou", "shenzhen", "imported",
)

_PATTERNS = (
    "solid", "striped", "floral", "polka-dot", "plaid", "cartoon",
    "geometric", "animal-print", "letter-print",
)

_MEMORIES = ("64gb", "128gb", "256gb", "512gb", "1tb")

_SCREENS = ("5.8in", "6.1in", "6.5in", "6.7in", "10.2in")

_CAPACITIES = ("250ml", "350ml", "500ml", "750ml", "1l", "1.5l")

_LENGTHS = ("mini", "knee-length", "midi", "maxi", "ankle-length")

_CLOSURES = ("zipper", "button", "elastic", "drawstring", "velcro", "lace-up")

_SLEEVES = ("sleeveless", "short-sleeve", "long-sleeve", "three-quarter")

_SERIES_SYLLABLES = ("nova", "pro", "max", "air", "lite", "plus", "ultra", "neo")


def make_brand_pool(count: int, rng: np.random.Generator) -> Tuple[str, ...]:
    """Synthesize ``count`` distinct brand names from syllables."""
    brands = set()
    while len(brands) < count:
        parts = rng.choice(len(_BRAND_SYLLABLES), size=2, replace=False)
        brands.add(_BRAND_SYLLABLES[parts[0]] + _BRAND_SYLLABLES[parts[1]])
    return tuple(sorted(brands))


def make_series_pool(count: int, rng: np.random.Generator) -> Tuple[str, ...]:
    """Synthesize product-series names ('nova-3', 'pro-7', ...)."""
    series = set()
    while len(series) < count:
        word = _SERIES_SYLLABLES[int(rng.integers(len(_SERIES_SYLLABLES)))]
        series.add(f"{word}-{int(rng.integers(1, 12))}")
    return tuple(sorted(series))


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute a category's items may carry.

    ``fill_probability`` models seller behaviour: the real PKG is sparse
    because sellers fill only some attribute fields — this is the
    incompleteness PKGM is designed to paper over.
    """

    relation: str
    values: Tuple[str, ...]
    fill_probability: float = 0.8

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"attribute {self.relation} has no values")
        if not 0.0 < self.fill_probability <= 1.0:
            raise ValueError("fill_probability must be in (0, 1]")


@dataclass(frozen=True)
class CategorySpec:
    """A leaf of the category tree with its attribute templates."""

    category_id: int
    name: str
    attributes: Tuple[AttributeSpec, ...]
    title_noun: str

    def attribute_relations(self) -> List[str]:
        return [a.relation for a in self.attributes]


# ----------------------------------------------------------------------
# Schema construction
# ----------------------------------------------------------------------

_CATEGORY_MODIFIERS = (
    "womens", "mens", "childrens", "girls", "boys", "unisex", "baby",
    "teen", "outdoor", "home",
)

_CATEGORY_NOUNS = (
    "skirts", "socks", "hair-accessories", "phone-cases", "t-shirts",
    "sneakers", "backpacks", "watches", "headphones", "teapots", "dresses",
    "jackets", "scarves", "gloves", "mugs", "lamps", "pillows", "towels",
    "sandals", "belts", "hats", "sunglasses", "keyboards", "speakers",
    "notebooks", "pens", "umbrellas", "wallets", "blankets", "curtains",
)


def build_default_schema(
    num_categories: int,
    rng: np.random.Generator,
    brand_pool_size: int = 40,
    brands_per_category: int = 8,
    min_attributes: int = 6,
    max_attributes: int = 12,
    noun_pool_size: Optional[int] = None,
) -> List[CategorySpec]:
    """Build ``num_categories`` category specs with realistic attributes.

    Every category gets ``brandIs`` (with a category-restricted brand
    subset) plus a random selection from the template pool, mirroring
    how attribute schemas vary across the real category tree.

    ``noun_pool_size`` restricts the distinct title nouns, forcing
    categories to share nouns (e.g. *womens-skirts* vs *girls-skirts*).
    Shared-noun categories can only be told apart through attribute
    words — the regime where the paper's PKGM vectors pay off.
    """
    nouns = list(_CATEGORY_NOUNS)
    if noun_pool_size is not None:
        if noun_pool_size < 1:
            raise ValueError("noun_pool_size must be >= 1")
        picked = rng.choice(len(nouns), size=min(noun_pool_size, len(nouns)), replace=False)
        nouns = [nouns[i] for i in sorted(picked)]
    max_names = len(_CATEGORY_MODIFIERS) * len(nouns)
    if num_categories < 1 or num_categories > max_names:
        raise ValueError(f"num_categories must be in [1, {max_names}]")
    if not min_attributes <= max_attributes:
        raise ValueError("min_attributes must be <= max_attributes")

    brand_pool = make_brand_pool(brand_pool_size, rng)
    series_pool = make_series_pool(20, rng)
    optional_templates: Dict[str, Tuple[Tuple[str, ...], float]] = {
        "colorIs": (_COLORS, 0.9),
        "materialIs": (_MATERIALS, 0.7),
        "sizeIs": (_SIZES, 0.75),
        "styleIs": (_STYLES, 0.6),
        "seasonIs": (_SEASONS, 0.55),
        "crowdIs": (_CROWDS, 0.5),
        "originIs": (_ORIGINS, 0.45),
        "patternIs": (_PATTERNS, 0.5),
        "memoryIs": (_MEMORIES, 0.65),
        "screenIs": (_SCREENS, 0.5),
        "capacityIs": (_CAPACITIES, 0.5),
        "lengthIs": (_LENGTHS, 0.55),
        "closureIs": (_CLOSURES, 0.4),
        "sleeveIs": (_SLEEVES, 0.45),
        "seriesIs": (series_pool, 0.6),
    }

    names = [
        f"{modifier}-{noun}"
        for modifier in _CATEGORY_MODIFIERS
        for noun in nouns
    ]
    order = rng.permutation(len(names))[:num_categories]

    categories: List[CategorySpec] = []
    template_keys = sorted(optional_templates)
    for category_id, name_index in enumerate(order):
        name = names[name_index]
        noun = name.split("-", 1)[1]
        brand_ids = rng.choice(
            len(brand_pool), size=min(brands_per_category, len(brand_pool)), replace=False
        )
        attributes = [
            AttributeSpec(
                relation="brandIs",
                values=tuple(brand_pool[i] for i in sorted(brand_ids)),
                fill_probability=0.95,
            )
        ]
        target = int(rng.integers(min_attributes, max_attributes + 1)) - 1
        target = min(target, len(template_keys))
        chosen = rng.choice(len(template_keys), size=target, replace=False)
        for key_index in sorted(chosen):
            relation = template_keys[key_index]
            values, fill = optional_templates[relation]
            # Restrict each category to a value subset: different categories
            # favour different colors/materials, like the real catalog.
            k = max(3, int(np.ceil(len(values) * 0.6)))
            k = min(k, len(values))
            picked = rng.choice(len(values), size=k, replace=False)
            attributes.append(
                AttributeSpec(
                    relation=relation,
                    values=tuple(values[i] for i in sorted(picked)),
                    fill_probability=fill,
                )
            )
        categories.append(
            CategorySpec(
                category_id=category_id,
                name=name,
                attributes=tuple(attributes),
                title_noun=noun,
            )
        )
    return categories
