"""Synthetic product catalog and product-KG builder.

This is the substitution for the proprietary Alibaba PKG (Table II's
PKG-sub).  The generative process mirrors how the real graph arises:

1. *Products* are platonic records: a category plus a full ground-truth
   attribute assignment.
2. *Items* are seller listings of a product.  Several sellers list the
   same product (the basis of the alignment task), and each seller
   fills only a subset of the attribute fields — omissions produce the
   KG's incompleteness, occasional errors produce its noise.
3. The *product KG* contains one ``(item, relation, value)`` triple per
   seller-filled attribute.  The item category is platform metadata and
   deliberately NOT a KG relation, so PKGM cannot leak the
   classification label directly.

Products optionally carry a **model code** attribute (``modelIs``,
value ``md-<product_id>``) — the synthetic analogue of the model/SKU
strings ("iPhone XI 256GB") that real sellers put in titles.  Model
codes are what make same-product alignment learnable from text, and
their KG triples are what let PKGM answer it from the graph side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kg import EntityVocabulary, RelationVocabulary, TripleStore
from .schema import AttributeSpec, CategorySpec, build_default_schema

MODEL_RELATION = "modelIs"


@dataclass(frozen=True)
class CatalogConfig:
    """Scale and noise knobs for catalog generation.

    Defaults produce a catalog that pre-trains in seconds; benchmarks
    scale ``num_categories`` / ``products_per_category`` up.
    """

    num_categories: int = 12
    products_per_category: int = 25
    min_items_per_product: int = 1
    max_items_per_product: int = 4
    attribute_error_probability: float = 0.02
    seed: int = 0
    brand_pool_size: int = 40
    brands_per_category: int = 8
    noun_pool_size: Optional[int] = None
    include_model_codes: bool = True
    model_fill_probability: float = 0.85

    def __post_init__(self) -> None:
        if self.num_categories < 1:
            raise ValueError("num_categories must be >= 1")
        if self.products_per_category < 1:
            raise ValueError("products_per_category must be >= 1")
        if not 1 <= self.min_items_per_product <= self.max_items_per_product:
            raise ValueError("need 1 <= min_items_per_product <= max_items_per_product")
        if not 0.0 <= self.attribute_error_probability < 1.0:
            raise ValueError("attribute_error_probability must be in [0, 1)")
        if not 0.0 < self.model_fill_probability <= 1.0:
            raise ValueError("model_fill_probability must be in (0, 1]")


@dataclass(frozen=True)
class ProductRecord:
    """Ground-truth product: full attribute assignment."""

    product_id: int
    category_id: int
    attributes: Dict[str, str]


@dataclass(frozen=True)
class ItemRecord:
    """One seller listing of a product.

    ``attributes`` holds only what the seller filled (possibly with
    errors); ``entity_id`` is the item's id in the KG entity vocabulary.
    """

    item_id: int
    entity_id: int
    label: str
    product_id: int
    category_id: int
    attributes: Dict[str, str]


@dataclass
class Catalog:
    """The generated catalog plus its KG view."""

    config: CatalogConfig
    schema: List[CategorySpec]
    products: List[ProductRecord]
    items: List[ItemRecord]
    store: TripleStore
    entities: EntityVocabulary
    relations: RelationVocabulary

    def items_of_product(self, product_id: int) -> List[ItemRecord]:
        return [item for item in self.items if item.product_id == product_id]

    def items_of_category(self, category_id: int) -> List[ItemRecord]:
        return [item for item in self.items if item.category_id == category_id]

    def category_of_entity(self, entity_id: int) -> int:
        return self._entity_to_category[entity_id]

    def __post_init__(self) -> None:
        self._entity_to_category = {
            item.entity_id: item.category_id for item in self.items
        }


def generate_catalog(
    config: CatalogConfig,
    schema: Optional[List[CategorySpec]] = None,
) -> Catalog:
    """Generate a full catalog (products, items, KG) from ``config``.

    Deterministic given ``config.seed``.
    """
    rng = np.random.default_rng(config.seed)
    if schema is None:
        schema = build_default_schema(
            config.num_categories,
            rng,
            brand_pool_size=config.brand_pool_size,
            brands_per_category=config.brands_per_category,
            noun_pool_size=config.noun_pool_size,
        )

    entities = EntityVocabulary()
    relations = RelationVocabulary()
    store = TripleStore()
    products: List[ProductRecord] = []
    items: List[ItemRecord] = []

    # Pre-register relations in schema order for stable ids.
    for category in schema:
        for attribute in category.attributes:
            relations.add_property(attribute.relation)
    if config.include_model_codes:
        relations.add_property(MODEL_RELATION)

    for category in schema:
        for _ in range(config.products_per_category):
            product_id = len(products)
            truth = _sample_product_attributes(category, rng)
            if config.include_model_codes:
                truth[MODEL_RELATION] = f"md-{product_id}"
            products.append(
                ProductRecord(
                    product_id=product_id,
                    category_id=category.category_id,
                    attributes=truth,
                )
            )
            n_items = int(
                rng.integers(
                    config.min_items_per_product, config.max_items_per_product + 1
                )
            )
            for _ in range(n_items):
                item_id = len(items)
                label = f"item_{item_id}"
                entity_id = entities.add_item(label)
                filled = _seller_fill(category, truth, config, rng)
                for relation_label, value_label in filled.items():
                    r = relations.id_of(relation_label)
                    v = entities.add_value(f"{relation_label}:{value_label}")
                    store.add(entity_id, r, v)
                items.append(
                    ItemRecord(
                        item_id=item_id,
                        entity_id=entity_id,
                        label=label,
                        product_id=product_id,
                        category_id=category.category_id,
                        attributes=filled,
                    )
                )

    return Catalog(
        config=config,
        schema=schema,
        products=products,
        items=items,
        store=store,
        entities=entities,
        relations=relations,
    )


def _sample_product_attributes(
    category: CategorySpec, rng: np.random.Generator
) -> Dict[str, str]:
    """Ground-truth attributes: every schema attribute gets a value."""
    return {
        attribute.relation: attribute.values[int(rng.integers(len(attribute.values)))]
        for attribute in category.attributes
    }


def _seller_fill(
    category: CategorySpec,
    truth: Dict[str, str],
    config: CatalogConfig,
    rng: np.random.Generator,
) -> Dict[str, str]:
    """Simulate a seller filling the attribute form.

    Each attribute is filled with its template's ``fill_probability``;
    a filled value is wrong with ``attribute_error_probability``.
    """
    filled: Dict[str, str] = {}
    for attribute in category.attributes:
        if rng.random() > attribute.fill_probability:
            continue
        value = truth[attribute.relation]
        if rng.random() < config.attribute_error_probability and len(attribute.values) > 1:
            alternatives = [v for v in attribute.values if v != value]
            value = alternatives[int(rng.integers(len(alternatives)))]
        filled[attribute.relation] = value
    if config.include_model_codes and rng.random() <= config.model_fill_probability:
        # Model codes are copied, never mistyped: sellers paste them.
        filled[MODEL_RELATION] = truth[MODEL_RELATION]
    return filled
