"""Synthetic e-commerce data: the Alibaba-PKG substitution.

Generates the catalog (products, seller listings, and the product KG),
seller titles, per-category alignment pairs, and preference-driven
implicit-feedback interactions — the inputs to PKGM pre-training and to
all three downstream tasks.
"""

from .alignment import (
    AlignmentDataset,
    AlignmentPair,
    RankingCase,
    build_alignment_dataset,
)
from .catalog import (
    Catalog,
    CatalogConfig,
    ItemRecord,
    ProductRecord,
    generate_catalog,
)
from .classification import (
    ClassificationDataset,
    ClassificationExample,
    build_classification_dataset,
)
from .interactions import (
    Interaction,
    InteractionConfig,
    InteractionDataset,
    generate_interactions,
)
from .schema import (
    AttributeSpec,
    CategorySpec,
    build_default_schema,
    make_brand_pool,
    make_series_pool,
)
from .titles import MARKETING_WORDS, TitleConfig, TitleGenerator, title_vocabulary

__all__ = [
    "AlignmentDataset",
    "AlignmentPair",
    "AttributeSpec",
    "Catalog",
    "CatalogConfig",
    "CategorySpec",
    "ClassificationDataset",
    "ClassificationExample",
    "Interaction",
    "InteractionConfig",
    "InteractionDataset",
    "ItemRecord",
    "MARKETING_WORDS",
    "ProductRecord",
    "RankingCase",
    "TitleConfig",
    "TitleGenerator",
    "build_alignment_dataset",
    "build_classification_dataset",
    "build_default_schema",
    "generate_catalog",
    "generate_interactions",
    "make_brand_pool",
    "make_series_pool",
    "title_vocabulary",
]
