"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 violations at error severity (or warnings under
``--strict``), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import Linter, discover_files
from .program import ProgramAnalyzer, create_passes, get_pass_class, pass_names
from .registry import create_rules, get_rule_class, rule_names
from .reporters import get_reporter

#: Default per-rule options applied when linting this repository.  The
#: seeded-RNG plumbing is allowed to exist; nothing else is exempt.
DEFAULT_RULE_OPTIONS: dict = {}


def build_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    """Argument parser, also reused as parent by ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based correctness linter for the PKGM training stack "
            "(seeded randomness, autograd hygiene, config schema drift, ...)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by name (repeatable)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only the named rules (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "also run the whole-program passes (import/call graphs, "
            "determinism taint, concurrency safety, contract checks)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "program-analysis cache file (default: .repro-lint-cache.json "
            "under --root); warm runs re-parse only changed files"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the program-analysis cache entirely",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "demote violations fingerprinted in this baseline file to "
            "warnings; new violations still fail (ratchet mode)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current violations as a baseline file and exit",
    )
    return parser


def list_rules() -> str:
    """Render the registered-rules table shown by ``--list-rules``."""
    lines = []
    for name in rule_names():
        cls = get_rule_class(name)
        lines.append(f"{cls.code}  {name:24s} {cls.description}")
    for name in pass_names():
        cls = get_pass_class(name)
        lines.append(f"{cls.code}  {name:24s} {cls.description} [--program]")
    return "\n".join(lines)


def _split_known(names, known_rules, known_passes):
    """Partition ``--select``/``--disable`` names between rules/passes."""
    rules, passes = [], []
    for name in names:
        if name in known_rules:
            rules.append(name)
        elif name in known_passes:
            passes.append(name)
        else:
            raise ValueError(
                f"unknown rule {name!r}; known rules: "
                f"{', '.join(sorted(set(known_rules) | set(known_passes)))}"
            )
    return rules, passes


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    paths = args.paths or ["src"]
    known_rules, known_passes = rule_names(), pass_names()
    try:
        select_rules, select_passes = _split_known(
            args.select, known_rules, known_passes
        )
        disable_rules, disable_passes = _split_known(
            args.disable, known_rules, known_passes
        )
        rules = create_rules(
            disable=disable_rules,
            select=select_rules,
            options=DEFAULT_RULE_OPTIONS,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.select and not select_rules:
        rules = []  # only program passes were selected
    linter = Linter(rules=rules, root=args.root)
    try:
        files = discover_files([Path(p) for p in paths])
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = linter.lint_files(files)
    if args.program:
        passes = create_passes(disable=disable_passes, select=select_passes)
        if args.select and not select_passes:
            passes = []
        root = args.root if args.root is not None else Path.cwd()
        if args.no_cache:
            cache_path = None
        else:
            cache_path = (
                args.cache
                if args.cache is not None
                else root / ".repro-lint-cache.json"
            )
        analyzer = ProgramAnalyzer(passes=passes, root=args.root, cache_path=cache_path)
        program_result, stats = analyzer.analyze_files(files)
        # Merge, dropping exact duplicates (e.g. syntax-error reported
        # by both engines); cache stats go to stderr so stdout stays
        # byte-identical across cold and warm runs.
        result.violations = sorted(set(result.violations + program_result.violations))
        print(stats.format(), file=sys.stderr)
    if args.write_baseline is not None:
        count = Baseline.write(args.write_baseline, result)
        print(
            f"baseline written to {args.write_baseline}: {count} tolerated "
            "violation(s)",
            file=sys.stderr,
        )
        return 0
    if args.baseline is not None:
        try:
            result = Baseline.load(args.baseline).apply(result)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(get_reporter(args.format).render(result))
    return result.exit_code(strict=args.strict)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.lint`` entry point."""
    try:
        return run_lint(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Reader (e.g. `... | head`) closed the pipe: not a lint failure,
        # but stdout is unusable, so flush quietly and report "violations".
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
