"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 violations at error severity (or warnings under
``--strict``), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .engine import Linter
from .registry import create_rules, get_rule_class, rule_names
from .reporters import get_reporter

#: Default per-rule options applied when linting this repository.  The
#: seeded-RNG plumbing is allowed to exist; nothing else is exempt.
DEFAULT_RULE_OPTIONS: dict = {}


def build_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    """Argument parser, also reused as parent by ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based correctness linter for the PKGM training stack "
            "(seeded randomness, autograd hygiene, config schema drift, ...)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by name (repeatable)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only the named rules (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def list_rules() -> str:
    """Render the registered-rules table shown by ``--list-rules``."""
    lines = []
    for name in rule_names():
        cls = get_rule_class(name)
        lines.append(f"{cls.code}  {name:24s} {cls.description}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    paths = args.paths or ["src"]
    try:
        rules = create_rules(
            disable=args.disable, select=args.select, options=DEFAULT_RULE_OPTIONS
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    linter = Linter(rules=rules, root=args.root)
    try:
        result = linter.lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(get_reporter(args.format).render(result))
    return result.exit_code(strict=args.strict)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.lint`` entry point."""
    try:
        return run_lint(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Reader (e.g. `... | head`) closed the pipe: not a lint failure,
        # but stdout is unusable, so flush quietly and report "violations".
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
