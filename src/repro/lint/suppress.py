"""Inline suppression directives.

Two forms are recognized, both as comments:

* ``# repro-lint: disable=<rule>[,<rule>...]`` — suppresses the named
  rules for violations reported **on that physical line** (put it at
  the end of the offending line, or on the first line of a multi-line
  statement, which is where violations anchor);
* ``# repro-lint: disable-file=<rule>[,<rule>...]`` — suppresses the
  named rules for the whole file, wherever the comment appears.

``all`` is accepted as a rule name and matches every rule.  Per the
project's lint policy, every suppression should carry a justifying
comment next to it.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_\-, ]+)"
)

#: Sentinel rule name matching every rule.
ALL = "all"


class Suppressions:
    """Parsed suppression directives for one source file."""

    def __init__(self) -> None:
        self.file_level: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed for a violation on ``line``."""
        if ALL in self.file_level or rule in self.file_level:
            return True
        line_rules: FrozenSet[str] = frozenset(self.by_line.get(line, ()))
        return ALL in line_rules or rule in line_rules

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Scan ``source`` for ``# repro-lint:`` directives."""
        suppressions = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "repro-lint" not in text:
                continue
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            rules.discard("")
            if not rules:
                continue
            if match.group("kind") == "disable-file":
                suppressions.file_level |= rules
            else:
                suppressions.by_line.setdefault(lineno, set()).update(rules)
        return suppressions
