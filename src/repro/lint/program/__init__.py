"""Whole-program analysis engine for :mod:`repro.lint`.

Where the per-file rules see one AST at a time, this package parses
the full project once, builds a module/import graph, per-module symbol
tables, and an approximate call graph (:mod:`~repro.lint.program.index`),
and runs declarative passes over that structure
(:mod:`~repro.lint.program.passes`): determinism taint into the
bit-reproducible boundary, concurrency-safety for shared module state,
and cross-module contract checks.  Per-file summaries are cached by
content SHA-256 (:mod:`~repro.lint.program.cache`), so warm runs
re-parse only changed files while producing byte-identical reports.

Run it as ``repro lint --program <paths>``.
"""

from .cache import AnalysisCache
from .engine import ProgramAnalyzer, ProgramStats
from .index import ProgramIndex
from .passes import (
    ProgramPass,
    create_passes,
    get_pass_class,
    pass_names,
    register_pass,
)
from .summary import ModuleSummary, module_name_for, summarize_source

__all__ = [
    "AnalysisCache",
    "ModuleSummary",
    "ProgramAnalyzer",
    "ProgramIndex",
    "ProgramPass",
    "ProgramStats",
    "create_passes",
    "get_pass_class",
    "module_name_for",
    "pass_names",
    "register_pass",
    "summarize_source",
]
