"""Whole-program analysis passes over a :class:`ProgramIndex`.

A pass is the program-level analogue of a per-file rule: it has a
``name``/``code``/``description``, a severity, and a ``run(index)``
generator yielding :class:`~repro.lint.violations.Violation` objects.
Passes consume summaries only (never ASTs), so cached and fresh runs
are byte-identical, and every iteration is sorted so reports are
deterministic.

Built-in passes:

* ``determinism-taint`` (P101) — generalizes R001/R007 across call
  chains: wall-clock and global/unseeded RNG primitives taint the
  functions that call them, taint propagates up the call graph, and a
  tainted function inside the deterministic boundary is reported with
  the full chain down to the primitive.
* ``concurrent-mutation`` (P102) — module-level mutable state mutated
  by functions reachable from a concurrency entry point (a
  ``threading``/``multiprocessing``/executor spawn target, or the
  public API of ``repro.distributed``).
* ``signature-mismatch`` (P103) — keyword args unknown to the resolved
  callee, excess positional args, and missing required args.
* ``unresolved-import`` (P104) — ``from M import name`` where the
  project module ``M`` never binds ``name``.
* ``unused-export`` (P105, warning) — a package ``__all__`` entry no
  other analyzed module imports or references.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from ..violations import Severity, Violation
from .index import KIND_CLASS, KIND_FUNCTION, KIND_MODULE, ProgramIndex
from .summary import MODULE_BODY, FunctionInfo, ModuleSummary, SignatureInfo

#: Module prefixes forming the deterministic boundary: anything inside
#: must stay bit-reproducible for the serving/eval contracts to hold.
DETERMINISTIC_BOUNDARY = (
    "repro.core",
    "repro.index",
    "repro.kg",
    "repro.obs",
    "repro.reliability",
    "repro.scenarios",
    "repro.serving",
    "repro.store",
    "repro.stream",
)

#: Module prefixes whose public functions are treated as concurrent
#: entry points even without an explicit spawn site.
CONCURRENT_ROOTS = ("repro.distributed",)


class ProgramPass:
    """Base class for whole-program passes."""

    name: str = ""
    code: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def __init__(self) -> None:
        self.severity = self.default_severity

    def configure(self, **options) -> "ProgramPass":
        """Override pass attributes by keyword; unknown keys raise."""
        for key, value in options.items():
            if key == "severity":
                self.severity = Severity.parse(value)
                continue
            if not hasattr(self, key) or key.startswith("_"):
                raise ValueError(f"pass {self.name!r} has no option {key!r}")
            setattr(self, key, value)
        return self

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, path: str, line: int, message: str, col: int = 0
    ) -> Violation:
        return Violation(
            path=path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_PASSES: Dict[str, Type[ProgramPass]] = {}


def register_pass(cls: Type[ProgramPass]) -> Type[ProgramPass]:
    """Class decorator adding ``cls`` to the program-pass registry."""
    if not cls.name or not cls.code:
        raise ValueError(f"pass {cls.__name__} must define 'name' and 'code'")
    existing = _PASSES.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    _PASSES[cls.name] = cls
    return cls


def pass_names() -> List[str]:
    """All registered pass names, sorted."""
    return sorted(_PASSES)


def get_pass_class(name: str) -> Type[ProgramPass]:
    """Look up one registered pass class by name."""
    try:
        return _PASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown pass {name!r}; known passes: {', '.join(sorted(_PASSES))}"
        ) from None


def create_passes(
    disable: Sequence[str] = (), select: Sequence[str] = ()
) -> List[ProgramPass]:
    """Instantiate registered passes, honoring select/disable by name.

    Unlike :func:`repro.lint.registry.create_rules`, unknown names in
    ``select``/``disable`` are ignored here — the CLI shares one
    ``--select``/``--disable`` namespace between rules and passes.
    """
    chosen = []
    for name in sorted(_PASSES):
        if select and name not in select:
            continue
        if name in disable:
            continue
        chosen.append(_PASSES[name]())
    return chosen


def _chain_to_primitive(
    index: ProgramIndex,
    origin: str,
    via: Dict[str, Tuple[str, object]],
) -> str:
    """Render ``origin -> ... -> primitive()`` from taint back-pointers."""
    hops = [index.display(origin)]
    node = origin
    while True:
        kind, payload = via[node]
        if kind == "source":
            path, _ = index.location(node)
            hops.append(f"{payload.primitive} [{path}:{payload.line}]")
            return " -> ".join(hops)
        node = kind
        hops.append(index.display(node))


@register_pass
class DeterminismTaintPass(ProgramPass):
    """Call-chain taint from nondeterminism primitives into the boundary."""

    name = "determinism-taint"
    code = "P101"
    description = (
        "wall-clock/global-RNG reachable through the call graph from a "
        "deterministic-boundary function"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Module prefixes forming the deterministic boundary.
        self.boundary: Tuple[str, ...] = DETERMINISTIC_BOUNDARY
        #: Fq-function glob patterns exempt from reporting (sanctioned
        #: plumbing, e.g. a CLI shim living inside a boundary package).
        self.exempt: Tuple[str, ...] = ()

    def _in_boundary(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.boundary
        )

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        # Seed: functions calling a primitive directly.  ``via`` maps a
        # tainted node to ("source", NondetSite) or (tainted_callee, line).
        via: Dict[str, Tuple[str, object]] = {}
        frontier: List[str] = []
        for node in sorted(index.functions):
            module, qualname = index.functions[node]
            info = index.modules[module].functions[qualname]
            if info.nondet:
                site = min(info.nondet, key=lambda s: (s.line, s.primitive))
                via[node] = ("source", site)
                frontier.append(node)
        reverse = index.reverse_call_graph()
        while frontier:
            next_frontier: Set[str] = set()
            for node in frontier:  # sorted: first taint claims the caller
                for caller, line in reverse.get(node, ()):
                    if caller not in via:
                        via[caller] = (node, line)
                        next_frontier.add(caller)
            frontier = sorted(next_frontier)
        for node in sorted(via):
            module, qualname = index.functions[node]
            if not self._in_boundary(module):
                continue
            if any(fnmatch(node, pattern) for pattern in self.exempt):
                continue
            path, line = index.location(node)
            summary = index.modules[module]
            if summary.is_suppressed(self.name, line):
                continue
            chain = _chain_to_primitive(index, node, via)
            what = (
                "module import" if qualname == MODULE_BODY else f"{qualname!r}"
            )
            yield self.violation(
                path,
                line,
                f"deterministic-boundary {what} transitively reaches a "
                f"nondeterminism primitive: {chain}",
            )


@register_pass
class ConcurrentMutationPass(ProgramPass):
    """Module-level mutable state mutated from concurrent call paths."""

    name = "concurrent-mutation"
    code = "P102"
    description = (
        "module-level dict/list/set mutated by a function reachable from "
        "a thread/process spawn target or repro.distributed"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Module prefixes whose public functions count as entry points.
        self.concurrent_roots: Tuple[str, ...] = CONCURRENT_ROOTS

    def _entries(self, index: ProgramIndex) -> Dict[str, str]:
        """Entry node -> human-readable reason, deterministically."""
        entries: Dict[str, str] = {}
        for fqn in sorted(index.modules):
            summary = index.modules[fqn]
            in_root = any(
                fqn == prefix or fqn.startswith(prefix + ".")
                for prefix in self.concurrent_roots
            )
            if in_root:
                for qualname, info in sorted(summary.functions.items()):
                    if qualname == MODULE_BODY:
                        continue
                    leaf = qualname.split(".")[-1]
                    if leaf.startswith("_") and leaf != "__init__":
                        continue
                    entries.setdefault(
                        index.node(fqn, qualname),
                        f"public API of concurrent package {fqn!r}",
                    )
            for qualname, info in sorted(summary.functions.items()):
                for spawn in info.spawns:
                    resolved = index.resolve_dotted(summary, info, spawn.target)
                    if resolved is None or resolved[0] != KIND_FUNCTION:
                        continue
                    entries.setdefault(
                        resolved[1],
                        f"{spawn.api} target at {summary.path}:{spawn.line}",
                    )
        return entries

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        entries = self._entries(index)
        # Forward BFS with deterministic parent pointers for chains.
        parent: Dict[str, Optional[str]] = {n: None for n in sorted(entries)}
        frontier = sorted(entries)
        while frontier:
            next_frontier: Set[str] = set()
            for node in frontier:
                for callee in sorted(index.call_graph.get(node, ())):
                    if callee not in parent:
                        parent[callee] = node
                        next_frontier.add(callee)
            frontier = sorted(next_frontier)
        for node in sorted(parent):
            module, qualname = index.functions[node]
            summary = index.modules[module]
            info = summary.functions[qualname]
            for mutation in info.mutations:
                owner = self._owning_module(index, summary, info, mutation.target)
                if owner is None:
                    continue
                owner_summary, global_name, def_line = owner
                if summary.is_suppressed(self.name, mutation.line):
                    continue
                chain = self._chain(index, node, parent)
                entry = chain[0]
                yield self.violation(
                    summary.path,
                    mutation.line,
                    f"module-level mutable {global_name!r} "
                    f"({owner_summary.path}:{def_line}) mutated "
                    f"({mutation.op}) on a concurrent path: "
                    f"{' -> '.join(index.display(n) for n in chain)} "
                    f"[entry: {entries[entry]}]",
                )

    @staticmethod
    def _chain(
        index: ProgramIndex, node: str, parent: Dict[str, Optional[str]]
    ) -> List[str]:
        chain = [node]
        current = node
        while parent[current] is not None:
            current = parent[current]
            chain.append(current)
        chain.reverse()
        return chain

    @staticmethod
    def _owning_module(
        index: ProgramIndex,
        summary: ModuleSummary,
        info: FunctionInfo,
        target: str,
    ) -> Optional[Tuple[ModuleSummary, str, int]]:
        """Resolve a mutation target to (owning summary, name, def line)."""
        parts = target.split(".")
        if len(parts) == 1:
            name = parts[0]
            if name in summary.mutable_globals:
                return summary, name, summary.mutable_globals[name]
            if name in summary.top_assigns:
                # Rebinds through ``global`` race even on immutables.
                return summary, name, summary.top_assigns[name]
            return None
        resolved = index.resolve_dotted(summary, info, ".".join(parts[:-1]))
        if resolved is None or resolved[0] != KIND_MODULE:
            return None
        owner = index.modules.get(resolved[1])
        if owner is None:
            return None
        name = parts[-1]
        if name in owner.mutable_globals:
            return owner, name, owner.mutable_globals[name]
        return None


@register_pass
class SignatureMismatchPass(ProgramPass):
    """Call sites whose arguments cannot bind the resolved signature."""

    name = "signature-mismatch"
    code = "P103"
    description = (
        "keyword/positional arguments that do not match the resolved "
        "project callee's signature"
    )

    #: Decorators we still understand; anything else skips the check.
    _BINDING_DECORATORS = {"staticmethod", "classmethod"}

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        for fqn in sorted(index.modules):
            summary = index.modules[fqn]
            for qualname, info in sorted(summary.functions.items()):
                for site in info.calls:
                    for message in self._check_site(index, summary, info, site):
                        if summary.is_suppressed(self.name, site.line):
                            continue
                        yield self.violation(summary.path, site.line, message)

    def _check_site(
        self,
        index: ProgramIndex,
        summary: ModuleSummary,
        info: FunctionInfo,
        site,
    ) -> Iterator[str]:
        resolved = index.resolve_dotted(summary, info, site.callee)
        if resolved is None:
            return
        kind, fq = resolved
        implicit_self = False
        if kind == KIND_CLASS:
            init = index.find_method(fq, "__init__")
            if init is None:
                return
            node, implicit_self = init, True
        elif kind == KIND_FUNCTION:
            node = fq
            root = site.callee.split(".")[0]
            module, qualname = index.functions[node]
            is_method = "." in qualname
            if is_method and root in ("self", "cls"):
                implicit_self = True
        else:
            return
        sig = index.method_signature(node)
        if sig is None:
            return
        decorators = [d.split(".")[-1] for d in sig.decorators if d]
        if any(d not in self._BINDING_DECORATORS for d in decorators):
            return  # wrapped: the visible signature may not be the real one
        if "staticmethod" in decorators:
            implicit_self = False
        elif "classmethod" in decorators:
            _, qualname = index.functions[node]
            implicit_self = "." in qualname  # cls always bound via attribute
        display = index.display(node)
        pos_args = sig.pos_args[1:] if implicit_self and sig.pos_args else sig.pos_args
        num_defaults = min(sig.num_defaults, len(pos_args))
        if not sig.kwarg:
            valid_kw = set(pos_args[sig.posonly_count - (1 if implicit_self else 0):]
                           if sig.posonly_count else pos_args)
            valid_kw |= set(sig.kwonly)
            for kw in site.kwargs:
                if kw not in valid_kw:
                    yield (
                        f"call to {display}() passes unknown keyword "
                        f"argument {kw!r}"
                    )
        if not sig.vararg and not site.star_args and site.num_pos > len(pos_args):
            yield (
                f"call to {display}() passes {site.num_pos} positional "
                f"argument(s) but the signature takes at most {len(pos_args)}"
            )
        if not site.star_args and not site.star_kwargs:
            required = pos_args[: len(pos_args) - num_defaults]
            missing = [
                name
                for position, name in enumerate(required)
                if position >= site.num_pos and name not in site.kwargs
            ]
            missing += [
                name
                for name in sig.kwonly
                if name not in sig.kwonly_defaults and name not in site.kwargs
            ]
            if missing:
                yield (
                    f"call to {display}() is missing required "
                    f"argument(s): {', '.join(sorted(missing))}"
                )


@register_pass
class UnresolvedImportPass(ProgramPass):
    """``from M import name`` where project module M never binds name."""

    name = "unresolved-import"
    code = "P104"
    description = (
        "from-import of a name the resolved project module never binds"
    )

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        for fqn in sorted(index.modules):
            summary = index.modules[fqn]
            for imp in summary.from_imports:
                if imp.guarded or imp.name == "*":
                    continue
                target = index.modules.get(imp.module)
                if target is None:
                    continue  # external module: out of scope
                if "__getattr__" in target.functions:
                    continue  # PEP 562 dynamic attributes
                if summary.is_suppressed(self.name, imp.line):
                    continue
                if index.resolve_symbol(imp.module, imp.name) is not None:
                    continue
                yield self.violation(
                    summary.path,
                    imp.line,
                    f"cannot resolve 'from {imp.module} import {imp.name}': "
                    f"{imp.module} ({target.path}) never binds {imp.name!r}",
                )


@register_pass
class UnusedExportPass(ProgramPass):
    """Package ``__all__`` entries nothing in the program references."""

    name = "unused-export"
    code = "P105"
    description = (
        "package __all__ entry no analyzed module imports or references"
    )
    default_severity = Severity.WARNING

    def run(self, index: ProgramIndex) -> Iterator[Violation]:
        used: Dict[str, Set[str]] = {}  # package fqn -> used export names
        star_imported: Set[str] = set()
        for fqn in sorted(index.modules):
            summary = index.modules[fqn]
            for imp in summary.from_imports:
                if imp.module == fqn:
                    continue
                if imp.name == "*":
                    star_imported.add(imp.module)
                else:
                    used.setdefault(imp.module, set()).add(imp.name)
            for qualname, info in sorted(summary.functions.items()):
                reads = set(info.attr_reads)
                reads.update(site.callee for site in info.calls)
                for dotted in sorted(reads):
                    self._mark_attr_usage(index, summary, info, dotted, used)
        for fqn in sorted(index.modules):
            summary = index.modules[fqn]
            if not summary.is_package or not summary.dunder_all:
                continue
            if fqn in star_imported:
                continue
            used_names = used.get(fqn, set())
            for name in summary.dunder_all:
                if name in used_names:
                    continue
                line = summary.top_assigns.get(name, 1)
                if summary.is_suppressed(self.name, line):
                    continue
                yield self.violation(
                    summary.path,
                    line,
                    f"__all__ export {name!r} of package {fqn} is never "
                    "imported or referenced by any analyzed module",
                )

    @staticmethod
    def _mark_attr_usage(
        index: ProgramIndex,
        summary: ModuleSummary,
        info: FunctionInfo,
        dotted: str,
        used: Dict[str, Set[str]],
    ) -> None:
        """Credit ``alias.attr...`` reads to the packages they traverse."""
        parts = dotted.split(".")
        if len(parts) < 2:
            return
        resolved = index.resolve_symbol(summary.module, parts[0])
        if resolved is None or resolved[0] != KIND_MODULE:
            return
        current = resolved[1]
        for segment in parts[1:]:
            if current in index.modules:
                used.setdefault(current, set()).add(segment)
            extended = f"{current}.{segment}"
            if extended in index.modules:
                current = extended
            else:
                break
