"""Per-file analysis summaries for the whole-program engine.

One parse of a module produces a :class:`ModuleSummary`: its imports
(aliases resolved to absolute module names), top-level symbol table,
function bodies reduced to the facts the program passes need (call
sites, module-global mutations, nondeterminism primitives, concurrency
spawns), ``__all__``, and inline suppressions.  Summaries are plain
data — JSON round-trippable — so the analysis cache can persist them
keyed by content SHA-256 and warm runs skip parsing entirely
(:mod:`repro.lint.program.cache`).  Every program pass operates on
summaries only, never on live ASTs, which is what makes cached and
fresh runs byte-identical.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..suppress import Suppressions

#: Qualified name used for statements executed at import time.
MODULE_BODY = "<module>"

#: ``time``-module attributes that read or consume real time.
WALL_CLOCK = frozenset(
    {
        "sleep",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)

#: ``numpy.random`` attributes that construct explicit, seedable state
#: (mirrors the R001 rule; ``default_rng`` is special-cased: calling it
#: *without* a seed is itself a nondeterminism source).
SEEDABLE_NUMPY = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that are explicit-instance constructors.
SEEDABLE_STDLIB = frozenset({"Random", "SystemRandom"})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Callables whose result is module-level *mutable* state when assigned
#: at top level (beyond the literal display forms).
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
        "ChainMap",
    }
)

#: Executor/pool methods whose first argument is run concurrently.
SPAWN_METHODS = frozenset(
    {"submit", "apply_async", "map_async", "starmap", "starmap_async"}
)


@dataclass
class SignatureInfo:
    """Callable signature facts needed for keyword/arity checking."""

    line: int
    pos_args: List[str] = field(default_factory=list)
    posonly_count: int = 0
    num_defaults: int = 0
    kwonly: List[str] = field(default_factory=list)
    kwonly_defaults: List[str] = field(default_factory=list)
    vararg: bool = False
    kwarg: bool = False
    decorators: List[str] = field(default_factory=list)


@dataclass
class CallSite:
    """One call expression, reduced to resolution + checking facts."""

    callee: str
    line: int
    num_pos: int = 0
    kwargs: List[str] = field(default_factory=list)
    star_args: bool = False
    star_kwargs: bool = False


@dataclass
class MutationSite:
    """A statement mutating (or rebinding) a module-level name."""

    target: str
    line: int
    op: str


@dataclass
class NondetSite:
    """A direct call into a nondeterminism primitive."""

    primitive: str
    line: int


@dataclass
class SpawnSite:
    """A callable handed to a concurrency API (thread/process/executor)."""

    target: str
    api: str
    line: int


@dataclass
class FunctionInfo:
    """Summary of one top-level function, method, or the module body."""

    qualname: str
    line: int = 1
    sig: Optional[SignatureInfo] = None
    calls: List[CallSite] = field(default_factory=list)
    attr_reads: List[str] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    nondet: List[NondetSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    local_names: List[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    """Summary of one top-level class."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, SignatureInfo] = field(default_factory=dict)
    decorated: bool = False


@dataclass
class ModuleImport:
    """``import x.y [as z]`` — ``bound`` is the local name created."""

    module: str
    bound: str
    line: int

    def asname_bound(self) -> bool:
        """True when an ``as`` alias rebinds the full dotted module."""
        return self.bound != self.module.split(".")[0]


@dataclass
class FromImport:
    """``from M import name [as asname]`` with ``M`` made absolute."""

    module: str
    name: str
    bound: str
    line: int
    guarded: bool = False


@dataclass
class ModuleSummary:
    """Everything the program passes know about one module."""

    module: str
    path: str
    sha256: str
    is_package: bool = False
    module_imports: List[ModuleImport] = field(default_factory=list)
    from_imports: List[FromImport] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    top_assigns: Dict[str, int] = field(default_factory=dict)
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    dunder_all: Optional[List[str]] = None
    suppress_file: List[str] = field(default_factory=list)
    suppress_lines: Dict[str, List[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Inline-suppression check mirroring :class:`Suppressions`."""
        if "all" in self.suppress_file or rule in self.suppress_file:
            return True
        rules = self.suppress_lines.get(str(line), ())
        return "all" in rules or rule in rules

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        summary = cls(
            module=data["module"],
            path=data["path"],
            sha256=data["sha256"],
            is_package=data["is_package"],
            top_assigns=dict(data["top_assigns"]),
            mutable_globals=dict(data["mutable_globals"]),
            dunder_all=data["dunder_all"],
            suppress_file=list(data["suppress_file"]),
            suppress_lines={k: list(v) for k, v in data["suppress_lines"].items()},
        )
        summary.module_imports = [ModuleImport(**d) for d in data["module_imports"]]
        summary.from_imports = [FromImport(**d) for d in data["from_imports"]]
        for name, fdata in data["functions"].items():
            summary.functions[name] = _function_from_dict(fdata)
        for name, cdata in data["classes"].items():
            summary.classes[name] = ClassInfo(
                name=cdata["name"],
                line=cdata["line"],
                bases=list(cdata["bases"]),
                methods={
                    m: SignatureInfo(**s) for m, s in cdata["methods"].items()
                },
                decorated=cdata["decorated"],
            )
        return summary


def _function_from_dict(data: dict) -> FunctionInfo:
    sig = SignatureInfo(**data["sig"]) if data["sig"] is not None else None
    return FunctionInfo(
        qualname=data["qualname"],
        line=data["line"],
        sig=sig,
        calls=[CallSite(**d) for d in data["calls"]],
        attr_reads=list(data["attr_reads"]),
        mutations=[MutationSite(**d) for d in data["mutations"]],
        nondet=[NondetSite(**d) for d in data["nondet"]],
        spawns=[SpawnSite(**d) for d in data["spawns"]],
        local_names=list(data["local_names"]),
    )


def content_sha256(source: str) -> str:
    """Hex SHA-256 of a module's source text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> Tuple[str, bool]:
    """Derive a dotted module name by walking ``__init__.py`` parents.

    ``src/repro/core/pkgm.py`` maps to ``repro.core.pkgm`` because
    ``repro`` and ``repro.core`` are packages while ``src`` is not; a
    stray script with no package parents maps to its stem.
    """
    resolved = path.resolve()
    is_package = resolved.name == "__init__.py"
    parts: List[str] = [] if is_package else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists() and current != current.parent:
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) if parts else resolved.stem, is_package


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".") if is_package else module.split(".")[:-1]
    ascend = node.level - 1
    if ascend:
        parts = parts[: max(len(parts) - ascend, 0)]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


def _signature(node: ast.AST) -> SignatureInfo:
    args = node.args
    return SignatureInfo(
        line=node.lineno,
        pos_args=[a.arg for a in args.posonlyargs] + [a.arg for a in args.args],
        posonly_count=len(args.posonlyargs),
        num_defaults=len(args.defaults),
        kwonly=[a.arg for a in args.kwonlyargs],
        kwonly_defaults=[
            a.arg
            for a, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ],
        vararg=args.vararg is not None,
        kwarg=args.kwarg is not None,
        decorators=[
            dotted_name(d.func) if isinstance(d, ast.Call) else dotted_name(d) or ""
            for d in node.decorator_list
        ],
    )


def _literal_all(tree: ast.Module) -> Optional[List[str]]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in MUTABLE_CONSTRUCTORS:
            return True
    return False


class _Extractor(ast.NodeVisitor):
    """Single-pass structural walk filling a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.s = summary
        module_body = FunctionInfo(qualname=MODULE_BODY, line=1)
        self.s.functions[MODULE_BODY] = module_body
        self.fn = module_body
        self.cls: Optional[ClassInfo] = None
        self.depth = 0  # nesting depth of function defs
        self.try_depth = 0
        self._locals: Set[str] = set()
        self._globals_declared: Set[str] = set()

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self.s.module_imports.append(
                ModuleImport(module=alias.name, bound=bound, line=node.lineno)
            )
            if self.depth == 0 and self.cls is None:
                self.s.top_assigns.setdefault(bound, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.s.module, self.s.is_package, node)
        for alias in node.names:
            self.s.from_imports.append(
                FromImport(
                    module=target,
                    name=alias.name,
                    bound=alias.asname or alias.name,
                    line=node.lineno,
                    guarded=self.try_depth > 0,
                )
            )
            if self.depth == 0 and self.cls is None and alias.name != "*":
                self.s.top_assigns.setdefault(
                    alias.asname or alias.name, node.lineno
                )
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        self.try_depth += 1
        self.generic_visit(node)
        self.try_depth -= 1

    # -- definitions -----------------------------------------------------
    def _visit_function_def(self, node) -> None:
        sig = _signature(node)
        if self.depth == 0 and self.cls is None:
            qualname = node.name
        elif self.depth == 0 and self.cls is not None:
            qualname = f"{self.cls.name}.{node.name}"
            self.cls.methods[node.name] = sig
        else:
            # Nested function: fold its body into the enclosing scope,
            # shielding its params from looking like global mutations.
            self.fn.local_names = sorted(
                set(self.fn.local_names)
                | set(sig.pos_args)
                | set(sig.kwonly)
                | {node.name}
            )
            self._locals |= set(sig.pos_args) | set(sig.kwonly) | {node.name}
            self.depth += 1
            for child in node.body:
                self.visit(child)
            self.depth -= 1
            return
        info = FunctionInfo(qualname=qualname, line=node.lineno, sig=sig)
        info.local_names = sorted(set(sig.pos_args) | set(sig.kwonly))
        if node.args.vararg is not None:
            info.local_names.append(node.args.vararg.arg)
        if node.args.kwarg is not None:
            info.local_names.append(node.args.kwarg.arg)
        self.s.functions[qualname] = info
        if self.depth == 0 and self.cls is None:
            self.s.top_assigns.setdefault(node.name, node.lineno)
        outer_fn, outer_locals, outer_globals = self.fn, self._locals, self._globals_declared
        self.fn = info
        self._locals = set(info.local_names)
        self._globals_declared = set()
        self.depth += 1
        for child in node.body:
            self.visit(child)
        self.depth -= 1
        info.local_names = sorted(self._locals)
        self.fn, self._locals, self._globals_declared = outer_fn, outer_locals, outer_globals

    visit_FunctionDef = _visit_function_def
    visit_AsyncFunctionDef = _visit_function_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.depth > 0 or self.cls is not None:
            self._locals.add(node.name)
            for child in node.body:
                self.visit(child)
            return
        info = ClassInfo(
            name=node.name,
            line=node.lineno,
            bases=[b for b in (dotted_name(base) for base in node.bases) if b],
            decorated=bool(node.decorator_list),
        )
        self.s.classes[node.name] = info
        self.s.top_assigns.setdefault(node.name, node.lineno)
        self.cls = info
        # Non-method statements in a class body run at import time.
        for child in node.body:
            self.visit(child)
        self.cls = None

    def visit_Global(self, node: ast.Global) -> None:
        self._globals_declared |= set(node.names)
        self._locals -= set(node.names)

    # -- bindings and mutations ------------------------------------------
    def _bind(self, name: str, line: int) -> None:
        if self.depth == 0 and self.cls is None:
            self.s.top_assigns.setdefault(name, line)
        else:
            self._locals.add(name)

    def _mutation(self, target: str, line: int, op: str) -> None:
        root = target.split(".")[0]
        if root in self._locals:
            return
        self.fn.mutations.append(MutationSite(target=target, line=line, op=op))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_bind_target(target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_bind_target(node.target, node)
            self.visit(node.value)

    def _handle_bind_target(self, target: ast.expr, node: ast.stmt) -> None:
        value = getattr(node, "value", None)
        if isinstance(target, ast.Name):
            if self.depth == 0 and self.cls is None:
                self.s.top_assigns.setdefault(target.id, node.lineno)
                if value is not None and _is_mutable_value(value):
                    self.s.mutable_globals.setdefault(target.id, node.lineno)
            elif target.id in self._globals_declared:
                self._mutation(target.id, node.lineno, "rebind")
            else:
                self._locals.add(target.id)
        elif isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            if base is not None and self.depth + (self.cls is not None) > 0:
                self._mutation(base, node.lineno, "subscript-assign")
            self.visit(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_bind_target(element, node)
        elif isinstance(target, ast.Starred):
            self._handle_bind_target(target.value, node)
        elif isinstance(target, ast.Attribute):
            self.visit(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            if self.depth == 0 and self.cls is None:
                self.s.top_assigns.setdefault(target.id, node.lineno)
            elif target.id in self._globals_declared or target.id not in self._locals:
                self._mutation(target.id, node.lineno, "augassign")
        elif isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            if base is not None and self.depth + (self.cls is not None) > 0:
                self._mutation(base, node.lineno, "subscript-augassign")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = dotted_name(target.value)
                if base is not None and self.depth + (self.cls is not None) > 0:
                    self._mutation(base, node.lineno, "del")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._handle_bind_target(node.target, node)
        self.visit(node.iter)
        for child in node.body + node.orelse:
            self.visit(child)

    visit_AsyncFor = visit_For

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._handle_bind_target(node.optional_vars, node.context_expr)
        self.visit(node.context_expr)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._locals.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._handle_bind_target(node.target, node.iter)
        self.visit(node.iter)
        for cond in node.ifs:
            self.visit(cond)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        shielded = set(a.arg for a in node.args.args + node.args.kwonlyargs)
        previously_local = shielded & self._locals
        self._locals |= shielded
        self.visit(node.body)
        self._locals -= shielded - previously_local

    # -- calls, reads, nondeterminism, spawns ----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is not None:
            site = CallSite(
                callee=callee,
                line=node.lineno,
                num_pos=sum(1 for a in node.args if not isinstance(a, ast.Starred)),
                kwargs=[kw.arg for kw in node.keywords if kw.arg is not None],
                star_args=any(isinstance(a, ast.Starred) for a in node.args),
                star_kwargs=any(kw.arg is None for kw in node.keywords),
            )
            self.fn.calls.append(site)
            self._classify_nondet(site)
            self._classify_spawn(node, callee)
            # In-place mutation through a method call on a module global.
            parts = callee.split(".")
            if len(parts) >= 2 and parts[-1] in MUTATING_METHODS:
                self._maybe_method_mutation(".".join(parts[:-1]), node.lineno, parts[-1])
        else:
            self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _maybe_method_mutation(self, base: str, line: int, method: str) -> None:
        if self.depth + (self.cls is not None) == 0:
            return
        root = base.split(".")[0]
        if root in self._locals or root in ("self", "cls"):
            return
        self.fn.mutations.append(
            MutationSite(target=base, line=line, op=f"call:{method}")
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = dotted_name(node)
        if dotted is not None:
            self.fn.attr_reads.append(dotted)
            return
        self.generic_visit(node)

    def _classify_nondet(self, site: CallSite) -> None:
        parts = site.callee.split(".")
        root = parts[0]
        if root in self._locals:
            return
        resolved = self._resolve_external(parts)
        if resolved is None:
            return
        mod, attr = resolved
        if mod == "time" and attr in WALL_CLOCK:
            self.fn.nondet.append(
                NondetSite(primitive=f"time.{attr}()", line=site.line)
            )
        elif mod == "random" and attr not in SEEDABLE_STDLIB:
            self.fn.nondet.append(
                NondetSite(primitive=f"random.{attr}()", line=site.line)
            )
        elif mod == "numpy.random":
            if attr == "default_rng":
                unseeded = (
                    site.num_pos == 0
                    and not site.kwargs
                    and not site.star_args
                    and not site.star_kwargs
                )
                if unseeded:
                    self.fn.nondet.append(
                        NondetSite(
                            primitive="np.random.default_rng() [unseeded]",
                            line=site.line,
                        )
                    )
            elif attr not in SEEDABLE_NUMPY:
                self.fn.nondet.append(
                    NondetSite(primitive=f"np.random.{attr}()", line=site.line)
                )

    def _resolve_external(self, parts: List[str]) -> Optional[Tuple[str, str]]:
        """Map a dotted callee onto ``(external module, attribute)``.

        Only consults this file's import aliases — the cross-module
        resolution lives in :mod:`repro.lint.program.index`.
        """
        root = parts[0]
        # from M import name [as root]
        for imp in self.s.from_imports:
            if imp.bound == root:
                full = imp.module.split(".") + [imp.name] + parts[1:]
                return self._normalize_external(full)
        # import M [as root]
        for imp in self.s.module_imports:
            bound_root = imp.bound
            if bound_root == root:
                if imp.asname_bound():
                    full = imp.module.split(".") + parts[1:]
                else:
                    full = parts  # plain `import a.b` binds `a`
                return self._normalize_external(full)
        return None

    @staticmethod
    def _normalize_external(parts: List[str]) -> Optional[Tuple[str, str]]:
        if len(parts) < 2:
            return None
        mod, attr = ".".join(parts[:-1]), parts[-1]
        if mod in ("time", "random"):
            return mod, attr
        if mod in ("numpy.random", "np.random"):
            return "numpy.random", attr
        return None

    def _classify_spawn(self, node: ast.Call, callee: str) -> None:
        parts = callee.split(".")
        resolved = self._resolve_spawn_api(parts)
        if resolved in ("threading.Thread", "multiprocessing.Process"):
            for kw in node.keywords:
                if kw.arg == "target":
                    target = dotted_name(kw.value)
                    if target is not None:
                        self.fn.spawns.append(
                            SpawnSite(target=target, api=resolved, line=node.lineno)
                        )
            return
        if len(parts) >= 2 and parts[-1] in SPAWN_METHODS and node.args:
            target = dotted_name(node.args[0])
            if target is not None:
                self.fn.spawns.append(
                    SpawnSite(target=target, api=parts[-1], line=node.lineno)
                )

    def _resolve_spawn_api(self, parts: List[str]) -> Optional[str]:
        root = parts[0]
        if root in self._locals:
            return None
        for imp in self.s.from_imports:
            if imp.bound == root:
                return ".".join(imp.module.split(".") + [imp.name] + parts[1:])
        for imp in self.s.module_imports:
            if imp.bound == root:
                if imp.asname_bound():
                    return ".".join(imp.module.split(".") + parts[1:])
                return ".".join(parts)
        return None


def summarize_source(
    module: str,
    display_path: str,
    source: str,
    is_package: bool = False,
    tree: Optional[ast.Module] = None,
) -> ModuleSummary:
    """Parse (if needed) and summarize one module's source text."""
    if tree is None:
        tree = ast.parse(source, filename=display_path)
    summary = ModuleSummary(
        module=module,
        path=display_path,
        sha256=content_sha256(source),
        is_package=is_package,
    )
    summary.dunder_all = _literal_all(tree)
    suppressions = Suppressions.from_source(source)
    summary.suppress_file = sorted(suppressions.file_level)
    summary.suppress_lines = {
        str(line): sorted(rules) for line, rules in sorted(suppressions.by_line.items())
    }
    extractor = _Extractor(summary)
    for node in tree.body:
        extractor.visit(node)
    for info in summary.functions.values():
        info.attr_reads = sorted(set(info.attr_reads))
    return summary
