"""The whole-program analyzer: files -> summaries -> index -> passes.

:class:`ProgramAnalyzer` parallels the per-file
:class:`~repro.lint.engine.Linter` but runs once over the full file
set: every file is summarized (from the content-hash cache when
unchanged), the summaries feed one :class:`ProgramIndex`, and each
registered program pass walks the index yielding violations.  The
resulting report depends only on file contents — cold and warm runs
are byte-identical.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..engine import LintResult, discover_files
from ..violations import Severity, Violation
from .cache import AnalysisCache
from .index import ProgramIndex
from .passes import ProgramPass, create_passes
from .summary import ModuleSummary, content_sha256, module_name_for, summarize_source


@dataclass
class ProgramStats:
    """How much work the analyzer actually did (cache effectiveness)."""

    files_total: int = 0
    files_parsed: int = 0
    files_cached: int = 0

    def format(self) -> str:
        return (
            f"program analysis: {self.files_total} file(s), "
            f"{self.files_parsed} parsed, {self.files_cached} from cache"
        )


class ProgramAnalyzer:
    """Builds the project index and runs whole-program passes over it."""

    def __init__(
        self,
        passes: Optional[Sequence[ProgramPass]] = None,
        root: Optional[Path] = None,
        cache_path: Optional[Path] = None,
    ) -> None:
        self.passes: List[ProgramPass] = (
            list(passes) if passes is not None else create_passes()
        )
        self.root = root if root is not None else Path.cwd()
        self.cache_path = cache_path

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def analyze_paths(self, paths: Sequence[str]) -> Tuple[LintResult, ProgramStats]:
        """Discover files under ``paths`` and analyze them."""
        files = discover_files([Path(p) for p in paths])
        return self.analyze_files(files)

    def analyze_files(
        self, files: Sequence[Path]
    ) -> Tuple[LintResult, ProgramStats]:
        """Analyze an explicit file list (already discovered/filtered)."""
        cache = AnalysisCache(self.cache_path)
        stats = ProgramStats(files_total=len(files))
        summaries: List[ModuleSummary] = []
        violations: List[Violation] = []
        display_paths: List[str] = []
        for path in files:
            display = self._display_path(path)
            display_paths.append(display)
            source = path.read_text(encoding="utf-8")
            sha256 = content_sha256(source)
            cached = cache.get(display, sha256)
            if cached is not None:
                stats.files_cached += 1
                summaries.append(cached)
                continue
            stats.files_parsed += 1
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as exc:
                violations.append(
                    Violation(
                        path=display,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule="syntax-error",
                        message=f"cannot parse file: {exc.msg}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            module, is_package = module_name_for(path)
            summary = summarize_source(
                module, display, source, is_package=is_package, tree=tree
            )
            cache.put(summary)
            summaries.append(summary)
        cache.save(display_paths)
        index = ProgramIndex(summaries)
        for program_pass in sorted(self.passes, key=lambda p: p.name):
            violations.extend(program_pass.run(index))
        result = LintResult(violations=violations, files_checked=len(files))
        result.violations.sort()
        return result, stats

    def _display_path(self, path: Path) -> str:
        try:
            return str(path.resolve().relative_to(self.root.resolve()))
        except ValueError:
            return str(path)
