"""Content-addressed cache of per-file analysis summaries.

The cache is one JSON document mapping display paths to
``{"sha256": ..., "summary": {...}}``.  A warm run re-parses only the
files whose content hash changed; everything else is rebuilt from the
stored summary, which is sufficient for every program pass (passes
never touch ASTs).  Writes are atomic (tmp + ``os.replace``) and the
document is sorted, so the cache file itself is deterministic for a
given repository state.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional

from .summary import ModuleSummary

#: Bump when the summary schema changes; mismatched caches are ignored.
CACHE_VERSION = 1


class AnalysisCache:
    """Sha256-keyed store of :class:`ModuleSummary` objects."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if isinstance(data, dict) and data.get("version") == CACHE_VERSION:
                files = data.get("files")
                if isinstance(files, dict):
                    self._entries = files

    def get(self, display_path: str, sha256: str) -> Optional[ModuleSummary]:
        """The cached summary for a path, iff its content hash matches."""
        entry = self._entries.get(display_path)
        if entry is None or entry.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        """Record a freshly computed summary."""
        self._entries[summary.path] = {
            "sha256": summary.sha256,
            "summary": summary.to_dict(),
        }

    def save(self, keep_paths: Iterable[str]) -> None:
        """Atomically persist entries for ``keep_paths`` (prunes the rest)."""
        if self.path is None:
            return
        keep = set(keep_paths)
        payload = {
            "version": CACHE_VERSION,
            "files": {
                path: entry
                for path, entry in sorted(self._entries.items())
                if path in keep
            },
        }
        text = json.dumps(payload, indent=None, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)
