"""The project index: modules, symbols, imports, and the call graph.

Built once per run from :class:`~repro.lint.program.summary.ModuleSummary`
objects (freshly parsed or loaded from the content-hash cache), the
index answers the cross-module questions the program passes ask:

* which module does a dotted expression in file X refer to, after
  following import aliases and package re-export chains;
* which project function does a call site resolve to (approximate:
  module functions, class constructors, ``self.``/``cls.`` methods,
  and ``Class.method`` references, with base-class lookup);
* the import graph and an approximate call graph over fully-qualified
  function names.

Everything is deterministic: modules, functions, and edges iterate in
sorted order so two runs over the same summaries produce identical
reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .summary import MODULE_BODY, FunctionInfo, ModuleSummary, SignatureInfo

#: Resolution result kinds.
KIND_FUNCTION = "function"
KIND_CLASS = "class"
KIND_MODULE = "module"
KIND_VALUE = "value"

Resolved = Tuple[str, str]  # (kind, fully-qualified name)


class ProgramIndex:
    """Cross-module symbol tables and graphs over one set of summaries."""

    def __init__(self, summaries: List[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in sorted(summaries, key=lambda s: (s.module, s.path)):
            # First path wins on module-name collisions (deterministic).
            self.modules.setdefault(summary.module, summary)
        #: module -> sorted imported project modules (the import graph).
        self.import_graph: Dict[str, List[str]] = {}
        #: caller fq function -> {callee fq function: first call line}.
        self.call_graph: Dict[str, Dict[str, int]] = {}
        #: fq function node -> (module, qualname).
        self.functions: Dict[str, Tuple[str, str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for fqn, summary in self.modules.items():
            for qualname in summary.functions:
                self.functions[self.node(fqn, qualname)] = (fqn, qualname)
        for fqn, summary in sorted(self.modules.items()):
            imported: Set[str] = set()
            for imp in summary.module_imports:
                target = self._known_module_prefix(imp.module)
                if target is not None:
                    imported.add(target)
            for imp in summary.from_imports:
                target = self._known_module_prefix(imp.module)
                if target is not None:
                    imported.add(target)
                submodule = f"{imp.module}.{imp.name}"
                if submodule in self.modules:
                    imported.add(submodule)
            imported.discard(fqn)
            self.import_graph[fqn] = sorted(imported)
            for qualname, info in sorted(summary.functions.items()):
                caller = self.node(fqn, qualname)
                edges = self.call_graph.setdefault(caller, {})
                for site in info.calls:
                    resolved = self.resolve_call(summary, info, site.callee)
                    if resolved is None:
                        continue
                    if resolved not in edges or site.line < edges[resolved]:
                        edges[resolved] = site.line

    def _known_module_prefix(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that names an indexed module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Node naming
    # ------------------------------------------------------------------
    @staticmethod
    def node(module: str, qualname: str) -> str:
        """Fully-qualified node name for a function in a module."""
        return f"{module}.{qualname}"

    def display(self, node: str) -> str:
        """Human-readable name (module body nodes read as imports)."""
        module, qualname = self.functions[node]
        if qualname == MODULE_BODY:
            return f"{module} (module body)"
        return f"{module}.{qualname}"

    def location(self, node: str) -> Tuple[str, int]:
        """(display path, definition line) of a function node."""
        module, qualname = self.functions[node]
        summary = self.modules[module]
        info = summary.functions[qualname]
        return summary.path, info.line

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Resolved]:
        """What ``name`` means inside ``module``, following re-exports."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        if name in summary.classes:
            return KIND_CLASS, f"{module}.{name}"
        if name in summary.functions and name != MODULE_BODY:
            return KIND_FUNCTION, self.node(module, name)
        for imp in summary.from_imports:
            if imp.bound != name:
                continue
            if imp.module in self.modules:
                resolved = self.resolve_symbol(imp.module, imp.name, seen)
                if resolved is not None:
                    return resolved
            submodule = f"{imp.module}.{imp.name}"
            if submodule in self.modules:
                return KIND_MODULE, submodule
            return None  # external or unresolvable
        for imp in summary.module_imports:
            if imp.bound == name:
                target = imp.module if imp.asname_bound() else imp.module.split(".")[0]
                return KIND_MODULE, target
        if f"{module}.{name}" in self.modules:
            return KIND_MODULE, f"{module}.{name}"
        if name in summary.top_assigns:
            return KIND_VALUE, f"{module}.{name}"
        return None

    def find_method(
        self, class_fq: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Fq node of ``method`` on a class, climbing resolvable bases."""
        seen = _seen if _seen is not None else set()
        if class_fq in seen:
            return None
        seen.add(class_fq)
        module, _, cls_name = class_fq.rpartition(".")
        summary = self.modules.get(module)
        if summary is None or cls_name not in summary.classes:
            return None
        info = summary.classes[cls_name]
        if method in info.methods:
            return self.node(module, f"{cls_name}.{method}")
        for base in info.bases:
            resolved = self.resolve_dotted(summary, None, base)
            if resolved is not None and resolved[0] == KIND_CLASS:
                found = self.find_method(resolved[1], method, seen)
                if found is not None:
                    return found
        return None

    def method_signature(self, node: str) -> Optional[SignatureInfo]:
        """Signature of a function node, if the summary recorded one."""
        entry = self.functions.get(node)
        if entry is None:
            return None
        module, qualname = entry
        info = self.modules[module].functions.get(qualname)
        return info.sig if info is not None else None

    def resolve_dotted(
        self,
        summary: ModuleSummary,
        func: Optional[FunctionInfo],
        dotted: str,
    ) -> Optional[Resolved]:
        """Resolve a dotted expression appearing in ``summary``/``func``."""
        parts = dotted.split(".")
        root = parts[0]
        # self/cls are formal parameters (hence in local_names) but name
        # the enclosing class, so they resolve before the shadow guard.
        if root in ("self", "cls") and func is not None and "." in func.qualname:
            cls_name = func.qualname.split(".")[0]
            class_fq = f"{summary.module}.{cls_name}"
            if len(parts) == 1:
                return KIND_CLASS, class_fq
            if len(parts) == 2:
                method = self.find_method(class_fq, parts[1])
                if method is not None:
                    return KIND_FUNCTION, method
            return None
        if func is not None and root in func.local_names:
            return None
        base = self.resolve_symbol(summary.module, root)
        if base is None:
            return None
        rest = parts[1:]
        return self._descend(base, rest)

    def _descend(self, base: Resolved, rest: List[str]) -> Optional[Resolved]:
        kind, fq = base
        while rest:
            segment = rest[0]
            if kind == KIND_MODULE:
                extended = f"{fq}.{segment}"
                if extended in self.modules:
                    fq = extended
                    rest = rest[1:]
                    continue
                if fq not in self.modules:
                    return None  # external module: nothing to say
                resolved = self.resolve_symbol(fq, segment)
                if resolved is None:
                    return None
                kind, fq = resolved
                rest = rest[1:]
            elif kind == KIND_CLASS:
                method = self.find_method(fq, segment)
                if method is None:
                    return None
                kind, fq = KIND_FUNCTION, method
                rest = rest[1:]
            else:
                return None  # attribute of a function/value: opaque
        return kind, fq

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, summary: ModuleSummary, func: FunctionInfo, callee: str
    ) -> Optional[str]:
        """Fq function node a call targets, or ``None`` if unresolvable.

        Class targets resolve to their ``__init__`` (possibly inherited);
        classes without a reachable ``__init__`` yield ``None``.
        """
        resolved = self.resolve_dotted(summary, func, callee)
        if resolved is None:
            return None
        kind, fq = resolved
        if kind == KIND_FUNCTION:
            return fq
        if kind == KIND_CLASS:
            return self.find_method(fq, "__init__")
        return None

    # ------------------------------------------------------------------
    # Graph utilities
    # ------------------------------------------------------------------
    def reverse_call_graph(self) -> Dict[str, List[Tuple[str, int]]]:
        """callee -> sorted [(caller, line)] over the call graph."""
        reverse: Dict[str, List[Tuple[str, int]]] = {}
        for caller, edges in sorted(self.call_graph.items()):
            for callee, line in sorted(edges.items()):
                reverse.setdefault(callee, []).append((caller, line))
        for callers in reverse.values():
            callers.sort()
        return reverse
