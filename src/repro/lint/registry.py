"""Rule base class and the global rule registry.

A rule is a class with ``name``, ``code``, ``description``, and a
``check(ctx)`` generator yielding :class:`~repro.lint.violations.Violation`
objects.  Registering is one decorator::

    @register
    class MyRule(Rule):
        name = "my-rule"
        code = "R999"
        description = "what it catches"

        def check(self, ctx):
            yield self.violation(ctx, node, "message")

Per-rule knobs are plain instance attributes set in ``__init__``;
:meth:`Rule.configure` overrides them by keyword (unknown keys raise,
so configs cannot drift silently).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type, Union

from .violations import Severity, Violation


class Rule:
    """Base class for AST lint rules."""

    #: Stable kebab-case identifier used in reports and suppressions.
    name: str = ""
    #: Short code (``R001``-style) for terse output and docs tables.
    code: str = ""
    #: One-line human description (shown by ``--list-rules``).
    description: str = ""
    #: Severity assigned to this rule's violations unless overridden.
    default_severity: Severity = Severity.ERROR

    def __init__(self) -> None:
        self.severity = self.default_severity

    def configure(self, **options) -> "Rule":
        """Override rule attributes by keyword; unknown keys raise."""
        for key, value in options.items():
            if key == "severity":
                self.severity = Severity.parse(value)
                continue
            if not hasattr(self, key) or key.startswith("_"):
                raise ValueError(f"rule {self.name!r} has no option {key!r}")
            setattr(self, key, value)
        return self

    def check(self, ctx) -> Iterator[Violation]:
        """Yield violations for one module (see ``engine.ModuleContext``)."""
        raise NotImplementedError

    def violation(
        self,
        ctx,
        node: Union[ast.AST, int],
        message: str,
        severity: Optional[Severity] = None,
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or a line no)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Violation(
            path=ctx.display_path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            severity=self.severity if severity is None else severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global registry."""
    if not cls.name or not cls.code:
        raise ValueError(f"rule {cls.__name__} must define 'name' and 'code'")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_names() -> List[str]:
    """All registered rule names, sorted."""
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule_class(name: str) -> Type[Rule]:
    """Look up one registered rule class by name."""
    _load_builtin_rules()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rule {name!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None


def create_rules(
    disable: Sequence[str] = (),
    select: Sequence[str] = (),
    options: Optional[Dict[str, Dict]] = None,
) -> List[Rule]:
    """Instantiate the registered rules.

    ``select`` (if non-empty) whitelists rule names; ``disable`` removes
    names; ``options`` maps rule name -> keyword overrides passed to
    :meth:`Rule.configure`.
    """
    _load_builtin_rules()
    for name in list(disable) + list(select):
        get_rule_class(name)  # validate early with a helpful error
    chosen = []
    for name in sorted(_REGISTRY):
        if select and name not in select:
            continue
        if name in disable:
            continue
        rule = _REGISTRY[name]()
        overrides = (options or {}).get(name)
        if overrides:
            rule.configure(**overrides)
        chosen.append(rule)
    return chosen


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so their ``@register`` runs."""
    from . import rules  # noqa: F401  (import side effect registers rules)
