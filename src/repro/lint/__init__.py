"""AST-based correctness linter for the PKGM training stack.

Static companion to the runtime numeric sanitizer
(:mod:`repro.nn.sanitizer`).  The framework is a rule registry
(:mod:`repro.lint.registry`), an engine that parses each file once and
runs every enabled rule over it (:mod:`repro.lint.engine`), inline
suppressions (``# repro-lint: disable=<rule>``,
:mod:`repro.lint.suppress`), and text/JSON reporters.

Run it as ``python -m repro.lint <paths>`` or ``repro lint <paths>``;
extend it by subclassing :class:`~repro.lint.registry.Rule` and
decorating with :func:`~repro.lint.registry.register`.
"""

from .baseline import Baseline
from .engine import Linter, LintResult, ModuleContext, discover_files
from .program import (
    AnalysisCache,
    ProgramAnalyzer,
    ProgramIndex,
    ProgramPass,
    ProgramStats,
    create_passes,
    get_pass_class,
    pass_names,
    register_pass,
)
from .registry import Rule, create_rules, get_rule_class, register, rule_names
from .reporters import JSONReporter, Reporter, TextReporter, get_reporter
from .suppress import Suppressions
from .violations import Severity, Violation

__all__ = [
    "AnalysisCache",
    "Baseline",
    "JSONReporter",
    "LintResult",
    "Linter",
    "ModuleContext",
    "ProgramAnalyzer",
    "ProgramIndex",
    "ProgramPass",
    "ProgramStats",
    "Reporter",
    "Rule",
    "Severity",
    "Suppressions",
    "TextReporter",
    "Violation",
    "create_passes",
    "create_rules",
    "discover_files",
    "get_pass_class",
    "get_reporter",
    "get_rule_class",
    "pass_names",
    "register",
    "register_pass",
    "rule_names",
]
