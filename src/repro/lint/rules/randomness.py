"""``unseeded-randomness``: global-RNG calls outside the seeded plumbing.

Every stochastic component in this repro threads an explicit, seeded
``numpy.random.Generator`` (see :mod:`repro.nn.init` and the samplers in
:mod:`repro.kg.sampling`).  A stray ``random.random()`` or
``np.random.rand()`` breaks run-to-run reproducibility — and with it the
EXPERIMENTS.md tables — silently.  This rule flags:

* calls through the stdlib ``random`` module's global instance
  (``random.random()``, ``from random import shuffle; shuffle(...)``);
* calls through numpy's legacy global RNG (``np.random.rand()``,
  ``np.random.seed()``, ``from numpy.random import rand``), excluding
  the seedable constructors (``default_rng``, ``Generator``,
  ``SeedSequence``, the bit generators).

``random.Random(seed)`` / ``random.SystemRandom()`` instances are fine:
they are explicit objects whose seed the caller controls.  Paths
matching ``exempt_paths`` globs (the seeded-RNG plumbing itself) are
skipped entirely.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, Set, Tuple

from ..registry import Rule, register
from ..violations import Violation

#: numpy.random attributes that construct explicit, seedable RNG state.
SEEDABLE_NUMPY = {
    "default_rng",
    "Generator",
    "RandomState",  # explicit instance; caller owns the seed
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: stdlib random attributes that are explicit-instance constructors.
SEEDABLE_STDLIB = {"Random", "SystemRandom"}


@register
class UnseededRandomnessRule(Rule):
    """Flags calls through the global stdlib/numpy RNG state."""

    name = "unseeded-randomness"
    code = "R001"
    description = (
        "call to the global random/np.random RNG instead of a seeded "
        "numpy Generator"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Glob patterns (matched against the display path) to skip —
        #: the seeded-RNG plumbing is allowed to touch module state.
        self.exempt_paths: Tuple[str, ...] = ()

    def check(self, ctx) -> Iterator[Violation]:
        if any(fnmatch(ctx.display_path, pat) for pat in self.exempt_paths):
            return

        random_aliases: Set[str] = set()  # names bound to the stdlib module
        numpy_aliases: Set[str] = set()  # names bound to numpy itself
        numpy_random_aliases: Set[str] = set()  # names bound to numpy.random
        stdlib_fns: Set[str] = set()  # globals imported from random
        numpy_fns: Set[str] = set()  # globals imported from numpy.random

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    stdlib_fns.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name not in SEEDABLE_STDLIB
                    )
                elif node.module == "numpy":
                    numpy_random_aliases.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name == "random"
                    )
                elif node.module == "numpy.random":
                    numpy_fns.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name not in SEEDABLE_NUMPY
                    )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in stdlib_fns:
                    yield self.violation(
                        ctx,
                        node,
                        f"call to random.{func.id}() uses the global stdlib "
                        "RNG; pass a seeded np.random.Generator instead",
                    )
                elif func.id in numpy_fns:
                    yield self.violation(
                        ctx,
                        node,
                        f"call to numpy.random.{func.id}() uses the legacy "
                        "global RNG; use np.random.default_rng(seed)",
                    )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in random_aliases
                    and func.attr not in SEEDABLE_STDLIB
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"call to random.{func.attr}() uses the global stdlib "
                        "RNG; pass a seeded np.random.Generator instead",
                    )
                elif self._is_numpy_random(
                    base, numpy_aliases, numpy_random_aliases
                ) and func.attr not in SEEDABLE_NUMPY:
                    yield self.violation(
                        ctx,
                        node,
                        f"call to np.random.{func.attr}() uses the legacy "
                        "global RNG; use np.random.default_rng(seed)",
                    )

    @staticmethod
    def _is_numpy_random(
        base: ast.expr, numpy_aliases: Set[str], numpy_random_aliases: Set[str]
    ) -> bool:
        """Whether ``base`` is an expression naming ``numpy.random``."""
        if isinstance(base, ast.Name):
            return base.id in numpy_random_aliases
        return (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        )
