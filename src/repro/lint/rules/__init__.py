"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry` via the ``@register`` decorator side effect.
"""

from . import (  # noqa: F401
    config_keys,
    defaults,
    exceptions,
    exports,
    prints,
    randomness,
    tensors,
    wallclock,
)
