"""``mutable-default-arg``: mutable literals as parameter defaults.

A ``def f(history=[])`` default is evaluated once at function definition
time and shared across every call — in a training stack this turns into
cross-run state leakage (losses from one experiment appended to the
next).  The rule flags list/dict/set displays, comprehensions, and bare
``list()``/``dict()``/``set()``/``bytearray()`` constructor calls in
positional or keyword-only defaults of functions, methods, and lambdas.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..registry import Rule, register
from ..violations import Violation

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}


def _mutable_kind(default: ast.expr) -> Optional[str]:
    """Return a human name if ``default`` builds a shared mutable object."""
    if isinstance(default, _MUTABLE_DISPLAYS):
        return type(default).__name__.replace("Comp", " comprehension").lower()
    if (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_CONSTRUCTORS
    ):
        return f"{default.func.id}()"
    return None


@register
class MutableDefaultArgRule(Rule):
    """Flags mutable default argument values shared across calls."""

    name = "mutable-default-arg"
    code = "R002"
    description = "mutable default argument shared across calls"

    def check(self, ctx) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[-len(args.defaults) :], args.defaults):
                kind = _mutable_kind(default)
                if kind is not None:
                    yield self._flag(ctx, default, arg.arg, kind)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is None:
                    continue
                kind = _mutable_kind(default)
                if kind is not None:
                    yield self._flag(ctx, default, arg.arg, kind)

    def _flag(self, ctx, default: ast.expr, arg_name: str, kind: str) -> Violation:
        return self.violation(
            ctx,
            default,
            f"default for {arg_name!r} is a mutable {kind} shared across "
            "calls; default to None and create it inside the function",
        )
