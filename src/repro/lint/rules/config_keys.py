"""``config-key-drift``: string config-key access that the schema lacks.

The experiment configuration is a tree of frozen dataclasses rooted at
:class:`repro.config.ExperimentConfig`.  Attribute access on them is
checked by Python itself, but *string-keyed* access —
``getattr(config, "learning_rte")``, ``config["epochs"]``,
``dataclasses.replace(config, epochz=...)`` — fails only at runtime,
typically hours into a training run.  This rule resolves the schema (the
union of every field name across the config dataclass tree) and flags
string keys used against config-ish receivers (names matching
``config``/``cfg``/``conf``, or attributes like ``self.config``) that do
not exist in the schema.

The schema is imported lazily from :mod:`repro.config`; tests (or other
codebases) can inject an explicit ``keys`` set via rule options.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from typing import FrozenSet, Iterator, Optional

from ..registry import Rule, register
from ..violations import Violation

_CONFIG_NAME = re.compile(r"(^|_)(config|cfg|conf)(_|$)", re.IGNORECASE)


def _schema_from_repro_config() -> FrozenSet[str]:
    """Collect every field name in the ExperimentConfig dataclass tree."""
    from repro.config import ExperimentConfig

    keys = set()
    seen = set()

    def walk(cls) -> None:
        if cls in seen or not dataclasses.is_dataclass(cls):
            return
        seen.add(cls)
        try:
            instance = cls()
        except (TypeError, ValueError):
            # Dataclass with required fields: record its keys but skip
            # walking nested defaults we cannot construct.
            instance = None
        for field in dataclasses.fields(cls):
            keys.add(field.name)
            if instance is not None:
                value = getattr(instance, field.name, None)
                if dataclasses.is_dataclass(value):
                    walk(type(value))

    walk(ExperimentConfig)
    return frozenset(keys)


def _receiver_is_configish(expr: ast.expr) -> bool:
    """Heuristic: does ``expr`` look like a config object?"""
    if isinstance(expr, ast.Name):
        return bool(_CONFIG_NAME.search(expr.id))
    if isinstance(expr, ast.Attribute):
        return bool(_CONFIG_NAME.search(expr.attr))
    return False


@register
class ConfigKeyDriftRule(Rule):
    """Flags string config keys absent from the repro.config schema."""

    name = "config-key-drift"
    code = "R004"
    description = "string config key that does not exist on the config schema"

    def __init__(self) -> None:
        super().__init__()
        #: Explicit schema override (set in tests); ``None`` = resolve
        #: lazily from repro.config on first use.
        self.keys: Optional[FrozenSet[str]] = None

    def _schema(self) -> FrozenSet[str]:
        if self.keys is None:
            self.keys = _schema_from_repro_config()
        return self.keys

    def check(self, ctx) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(ctx, node)

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Violation]:
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        # getattr/setattr/hasattr(config, "key"[, ...])
        if func_name in {"getattr", "setattr", "hasattr"} and len(node.args) >= 2:
            receiver, key = node.args[0], node.args[1]
            if (
                _receiver_is_configish(receiver)
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value not in self._schema()
            ):
                yield self._drift(ctx, key, key.value)
        # dataclasses.replace(config, key=...)
        elif func_name == "replace" and node.args:
            receiver = node.args[0]
            if _receiver_is_configish(receiver):
                for keyword in node.keywords:
                    if keyword.arg is not None and keyword.arg not in self._schema():
                        yield self._drift(ctx, keyword.value, keyword.arg)

    def _check_subscript(self, ctx, node: ast.Subscript) -> Iterator[Violation]:
        key = node.slice
        if (
            _receiver_is_configish(node.value)
            and isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and key.value not in self._schema()
        ):
            yield self._drift(ctx, node, key.value)

    def _drift(self, ctx, node: ast.AST, key: str) -> Violation:
        return self.violation(
            ctx,
            node,
            f"config key {key!r} does not exist on the repro.config schema; "
            "likely a typo or stale key",
        )
