"""``wall-clock-in-reliability``: real-time calls in the virtual-clock stack.

Everything under :mod:`repro.reliability` — and, since the telemetry
layer landed, :mod:`repro.obs` — runs on a virtual
:class:`~repro.reliability.retry.StepClock` so that retries, circuit
breakers, deadlines, hedges, load tests, span durations and profiler
step counts are deterministic and replayable.  A single
``time.sleep()`` or ``time.time()`` in that stack reintroduces
wall-clock nondeterminism: tests get slow and flaky, and two runs of
the same seeded load test (or telemetry export) stop producing
byte-identical reports.  This rule flags, inside the scoped paths
only:

* calls through the ``time`` module (``time.sleep(...)``,
  ``import time as t; t.monotonic()``);
* calls to names imported from it (``from time import sleep``).

Reading the virtual clock (``clock.now()``) is the sanctioned
alternative; code that genuinely needs wall time (none today) belongs
outside ``src/repro/reliability/``, ``src/repro/obs/``, and
``src/repro/index/`` (the retrieval subsystem promises byte-identical
same-seed builds, so it is wall-clock-free by the same contract).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..registry import Rule, register
from ..violations import Violation

#: ``time``-module attributes that read or consume real time.
WALL_CLOCK_CALLS = frozenset(
    {
        "sleep",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)


@register
class WallClockInReliabilityRule(Rule):
    """Flags wall-clock ``time`` calls inside the reliability package."""

    name = "wall-clock-in-reliability"
    code = "R007"
    description = (
        "time.sleep/time.time/time.monotonic inside repro.reliability; "
        "use the virtual StepClock"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Path fragments (matched against the display path with forward
        #: slashes) that put a module inside the virtual-clock stack.
        self.scoped_paths: Tuple[str, ...] = (
            "repro/reliability/",
            "repro/obs/",
            "repro/index/",
            "repro/store/",
            "repro/serving/",
            "repro/stream/",
            "repro/scenarios/",
        )
        #: ``time``-module attribute names treated as wall-clock reads.
        self.banned_calls: Tuple[str, ...] = tuple(sorted(WALL_CLOCK_CALLS))

    def check(self, ctx) -> Iterator[Violation]:
        path = ctx.display_path.replace("\\", "/")
        if not any(fragment in path for fragment in self.scoped_paths):
            return
        banned = set(self.banned_calls)

        time_aliases: Set[str] = set()  # names bound to the time module
        banned_fns: Set[str] = set()  # local names of from-imports
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                banned_fns.update(
                    alias.asname or alias.name
                    for alias in node.names
                    if alias.name in banned
                )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in banned_fns:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call time.{func.id}() in the reliability "
                    "stack; use the virtual StepClock",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in banned
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call time.{func.attr}() in the reliability "
                    "stack; use the virtual StepClock",
                )
