"""``no-print-in-src``: bare ``print()`` calls inside the library.

Library code reports through return values, exceptions, and the
:mod:`repro.obs` registry — never through stdout.  A stray ``print()``
in the training or serving stack corrupts the byte-diffed outputs the
check.sh determinism gates rely on (``repro metrics`` run twice must
produce identical bytes) and cannot be filtered, levelled, or captured
the way registry telemetry can.

The CLI entry points are the sanctioned print surface and are
allowlisted; ``print`` referenced as a value (``log = print if verbose
else ...``) is deliberate indirection behind a flag and is not
flagged — only direct call expressions are.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..registry import Rule, register
from ..violations import Violation


@register
class NoPrintInSrcRule(Rule):
    """Flags direct ``print(...)`` calls inside ``src/repro``."""

    name = "no-print-in-src"
    code = "R008"
    description = (
        "bare print() inside src/repro; emit through repro.obs or "
        "return values (CLI modules are allowlisted)"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Path fragments that put a module inside the library.
        self.scoped_paths: Tuple[str, ...] = ("src/repro/",)
        #: Path suffixes allowed to print: the CLI reporting surface.
        self.allowed_paths: Tuple[str, ...] = (
            "repro/cli.py",
            "repro/lint/cli.py",
            "repro/lint/reporters.py",
        )

    def check(self, ctx) -> Iterator[Violation]:
        path = ctx.display_path.replace("\\", "/")
        if not any(fragment in path for fragment in self.scoped_paths):
            return
        if any(path.endswith(suffix) for suffix in self.allowed_paths):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "print() in library code; report via the repro.obs "
                    "registry or a return value",
                )
