"""``export-drift``: ``__all__`` out of sync with a package ``__init__``.

The package ``__init__.py`` files are the repro's public API surface;
each declares ``__all__``.  Two drift modes are caught:

* a name listed in ``__all__`` that the module never binds (renamed or
  deleted upstream — ``from repro.nn import X`` now raises only at
  import time);
* a public name bound at module top level (import, def, class, or
  assignment) that ``__all__`` omits, so ``from package import *`` and
  documentation tooling silently lose it.

Only ``__init__.py`` files are checked, and only when they define a
literal ``__all__``; plain modules may keep implicit APIs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..registry import Rule, register
from ..violations import Violation


def _literal_all(tree: ast.Module) -> Optional[ast.Assign]:
    """The ``__all__ = [...]`` assignment, if present with a literal list."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return node
    return None


def _bound_names(tree: ast.Module) -> Dict[str, int]:
    """Top-level bound names mapped to the line where they are bound."""
    names: Dict[str, int] = {}

    def bind(name: str, lineno: int) -> None:
        names.setdefault(name, lineno)

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bind(alias.asname or alias.name.split(".")[0], node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bind(alias.asname or alias.name, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bind(node.name, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bind(target.id, node.lineno)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bind(node.target.id, node.lineno)
    return names


@register
class ExportDriftRule(Rule):
    """Flags ``__all__`` entries drifting from what an init binds."""

    name = "export-drift"
    code = "R006"
    description = "__all__ out of sync with the names a package init binds"

    def check(self, ctx) -> Iterator[Violation]:
        if not ctx.is_package_init:
            return
        all_assign = _literal_all(ctx.tree)
        if all_assign is None:
            return
        exported: List[str] = []
        for element in all_assign.value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                exported.append(element.value)
        bound = _bound_names(ctx.tree)
        exported_set: Set[str] = set(exported)

        for name in exported:
            if name not in bound:
                yield self.violation(
                    ctx,
                    all_assign,
                    f"__all__ exports {name!r} but the module never binds it",
                )
        for name, lineno in sorted(bound.items()):
            if name.startswith("_") or name in exported_set:
                continue
            yield self.violation(
                ctx,
                lineno,
                f"public name {name!r} is bound here but missing from __all__",
            )
