"""``tensor-inplace-grad``: raw ``.data`` writes outside ``no_grad``.

Assigning to ``tensor.data`` mutates values behind the autograd tape:
the graph recorded before the write back-propagates through stale data,
which corrupts gradients without any error.  The sanctioned pattern —
used by the optimizers, norm constraints, and parameter-server export —
is to make the intent explicit with :class:`repro.nn.tensor.no_grad`::

    with no_grad():
        param.data = param.data - lr * param.grad

The rule flags every ``<expr>.data = ...`` (and augmented) assignment
that is not lexically inside a ``with no_grad():`` block.  One
exception: ``self.data = ...`` inside ``__init__`` is construction-time
initialization (no graph can reference the tensor yet) and is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..registry import Rule, register
from ..violations import Violation


def _is_no_grad_item(item: ast.withitem) -> bool:
    """Whether a ``with`` item is a ``no_grad()`` (or ``x.no_grad()``) call."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr == "no_grad"
    return isinstance(expr, ast.Name) and expr.id == "no_grad"


@register
class TensorInplaceGradRule(Rule):
    """Flags ``.data`` writes outside a ``with no_grad():`` block."""

    name = "tensor-inplace-grad"
    code = "R003"
    description = "write to tensor .data outside a no_grad() block"

    def check(self, ctx) -> Iterator[Violation]:
        yield from self._visit(ctx, ctx.tree.body, guarded=False, init_self=False)

    def _visit(
        self, ctx, body: List[ast.stmt], guarded: bool, init_self: bool
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "data"
                        and not guarded
                        and not (init_self and self._is_self_attr(target))
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            "assignment to .data bypasses autograd; wrap the "
                            "update in `with no_grad():` to make the intent "
                            "explicit",
                        )
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner_guarded = guarded or any(
                    _is_no_grad_item(item) for item in node.items
                )
                yield from self._visit(ctx, node.body, inner_guarded, init_self)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function body executes later: the enclosing
                # no_grad scope does not apply at call time.
                yield from self._visit(
                    ctx, node.body, guarded=False, init_self=node.name == "__init__"
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._visit(ctx, node.body, guarded, init_self=False)
            else:
                for child_body in self._nested_bodies(node):
                    yield from self._visit(ctx, child_body, guarded, init_self)

    @staticmethod
    def _is_self_attr(target: ast.Attribute) -> bool:
        return isinstance(target.value, ast.Name) and target.value.id == "self"

    @staticmethod
    def _nested_bodies(node: ast.stmt) -> Iterator[List[ast.stmt]]:
        """Statement lists nested in control flow (if/for/while/try...)."""
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(node, "handlers", ()):
            yield handler.body
