"""``bare-except``/``swallowed-exception``: silent failure in hot paths.

A ``try: ... except: pass`` around a training step hides the exact
failures the numeric sanitizer exists to surface (NaN losses, shape
mismatches) and even swallows ``KeyboardInterrupt``.  Two findings:

* **bare except** — ``except:`` with no exception type, anywhere;
* **swallowed exception** — a handler whose body is only
  ``pass``/``...``/``continue``, i.e. the error vanishes without being
  logged, re-raised, or recorded.

Swallowed exceptions are errors inside the configured ``hot_paths``
(the serving/training core: ``core/``, ``distributed/``, ``kg/``) and
warnings elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..registry import Rule, register
from ..violations import Severity, Violation


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class BareExceptRule(Rule):
    """Flags bare ``except:`` and handlers that swallow errors."""

    name = "bare-except"
    code = "R005"
    description = "bare or silently-swallowed exception handler"

    def __init__(self) -> None:
        super().__init__()
        #: Path fragments where swallowing is an error, not a warning.
        self.hot_paths: Tuple[str, ...] = ("core/", "distributed/", "kg/")

    def check(self, ctx) -> Iterator[Violation]:
        in_hot_path = any(fragment in ctx.display_path for fragment in self.hot_paths)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                )
                continue
            if all(_is_noop(stmt) for stmt in node.body):
                yield self.violation(
                    ctx,
                    node,
                    "exception handler silently swallows the error; log, "
                    "re-raise, or record it",
                    severity=Severity.ERROR if in_hot_path else Severity.WARNING,
                )
