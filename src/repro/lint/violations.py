"""Violation and severity primitives shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Union


class Severity(enum.IntEnum):
    """How serious a violation is.

    ``ERROR`` violations fail the lint run (non-zero exit); ``WARNING``
    violations are reported but only fail under ``--strict``.
    """

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: Union[str, "Severity"]) -> "Severity":
        """Parse ``"error"`` / ``"warning"`` (case-insensitive)."""
        if isinstance(text, Severity):
            return text
        try:
            return cls[str(text).strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[level.name.lower() for level in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule, a location, and a message."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    #: True when a committed baseline tolerates this violation: it stays
    #: visible in reports but never fails the run, even under --strict.
    baselined: bool = False

    def format(self) -> str:
        """Render as the classic ``path:line:col: severity [rule] msg``."""
        suffix = " (baselined)" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}{suffix}"
        )

    def to_dict(self) -> Dict[str, Union[str, int, bool]]:
        """JSON-serializable representation (used by the JSON reporter)."""
        payload: Dict[str, Union[str, int, bool]] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.baselined:
            payload["baselined"] = True
        return payload
