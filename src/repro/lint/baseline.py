"""Lint baseline: tolerate known violations, fail only on new ones.

A baseline is a committed JSON file of violation fingerprints
(``path`` + ``rule`` + ``message`` — deliberately no line numbers, so
unrelated edits that shift lines do not churn it).  Running with
``--baseline`` marks matching violations as ``baselined``: errors are
demoted to warnings, and baselined warnings stop failing ``--strict``;
everything stays visible in every report.  New violations — anything
without a fingerprint budget — keep their severity and fail as usual.
``--write-baseline`` regenerates the file from the current
violations, which is also how the baseline ratchets down: fix a
violation, rewrite, and the budget shrinks.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .engine import LintResult
from .violations import Severity, Violation

#: Schema version of the baseline document.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]  # (path, rule, message)


def _fingerprint(violation: Violation) -> Fingerprint:
    return (violation.path, violation.rule, violation.message)


class Baseline:
    """A budget of tolerated violations, counted per fingerprint."""

    def __init__(self, budgets: Dict[Fingerprint, int]) -> None:
        self.budgets = dict(budgets)

    def __len__(self) -> int:
        return sum(self.budgets.values())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls({})
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported format; regenerate it "
                "with --write-baseline"
            )
        budgets: Dict[Fingerprint, int] = {}
        for entry in data.get("entries", []):
            key = (entry["path"], entry["rule"], entry["message"])
            budgets[key] = budgets.get(key, 0) + int(entry.get("count", 1))
        return cls(budgets)

    def apply(self, result: LintResult) -> LintResult:
        """Mark baselined violations as tolerated.

        Matched errors are demoted to warnings and flagged
        ``baselined``; matched warnings keep their severity but gain
        the flag (so ``--strict`` ignores them).  Each fingerprint
        tolerates at most its recorded count; occurrences beyond the
        budget keep failing (the ratchet).
        """
        remaining = Counter(self.budgets)
        adjusted: List[Violation] = []
        for violation in result.violations:
            key = _fingerprint(violation)
            if remaining[key] > 0:
                remaining[key] -= 1
                violation = Violation(
                    path=violation.path,
                    line=violation.line,
                    col=violation.col,
                    rule=violation.rule,
                    message=violation.message,
                    severity=min(violation.severity, Severity.WARNING),
                    baselined=True,
                )
            adjusted.append(violation)
        adjusted.sort()
        return LintResult(violations=adjusted, files_checked=result.files_checked)

    @staticmethod
    def write(path: Path, result: LintResult) -> int:
        """Write the baseline tolerating every current violation."""
        counts: Counter = Counter(
            _fingerprint(v) for v in result.violations
        )
        entries = [
            {"path": p, "rule": r, "message": m, "count": c}
            for (p, r, m), c in sorted(counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return sum(counts.values())
