"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from typing import Dict, Type

from .engine import LintResult


class Reporter:
    """Base reporter: turns a result into a printable string."""

    format_name: str = ""

    def render(self, result: LintResult) -> str:
        raise NotImplementedError


class TextReporter(Reporter):
    """Human-readable ``path:line:col: severity [rule] message`` lines."""

    format_name = "text"

    def render(self, result: LintResult) -> str:
        lines = [violation.format() for violation in result.violations]
        noun = "file" if result.files_checked == 1 else "files"
        lines.append(
            f"checked {result.files_checked} {noun}: "
            f"{result.error_count} error(s), {result.warning_count} warning(s)"
        )
        return "\n".join(lines)


class JSONReporter(Reporter):
    """Machine-readable report for CI annotation tooling."""

    format_name = "json"

    def render(self, result: LintResult) -> str:
        payload = {
            "files_checked": result.files_checked,
            "errors": result.error_count,
            "warnings": result.warning_count,
            "violations": [violation.to_dict() for violation in result.violations],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


_REPORTERS: Dict[str, Type[Reporter]] = {
    TextReporter.format_name: TextReporter,
    JSONReporter.format_name: JSONReporter,
}


def get_reporter(format_name: str) -> Reporter:
    """Instantiate the reporter for ``format_name`` (``text``/``json``)."""
    try:
        return _REPORTERS[format_name]()
    except KeyError:
        raise ValueError(
            f"unknown report format {format_name!r}; "
            f"expected one of {sorted(_REPORTERS)}"
        ) from None
