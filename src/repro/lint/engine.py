"""The lint engine: file discovery, parsing, and rule execution."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .registry import Rule, create_rules
from .suppress import Suppressions
from .violations import Severity, Violation

#: Directory names never descended into during discovery.
EXCLUDED_DIRS = {
    "__pycache__",
    ".git",
    ".hg",
    ".mypy_cache",
    ".pytest_cache",
    ".tox",
    ".venv",
    "venv",
    "build",
    "dist",
}

#: Marker file: a directory containing it is pruned during directory
#: walks (used by the known-bad fixture corpora under tests/lint).
#: Starting discovery *inside* such a directory still works — only
#: markers strictly below the walked root apply.
IGNORE_MARKER = ".repro-lint-ignore"


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for v in self.violations if v.severity >= Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for v in self.violations if v.severity == Severity.WARNING)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when errors (or, under strict, warnings) exist.

        Baselined violations never fail the run: they are tolerated
        debt, visible in reports until the baseline ratchets down.
        """
        if self.error_count:
            return 1
        if strict and any(
            v.severity == Severity.WARNING and not v.baselined
            for v in self.violations
        ):
            return 1
        return 0


def _is_excluded(path: Path) -> bool:
    """Whether ``path`` sits under an excluded/egg-info directory."""
    if set(path.parts) & EXCLUDED_DIRS:
        return True
    return any(part.endswith(".egg-info") for part in path.parts)


def _under_ignore_marker(candidate: Path, root: Path) -> bool:
    """Whether an ancestor of ``candidate`` below ``root`` is marked."""
    for ancestor in candidate.parents:
        if ancestor == root:
            return False
        if (ancestor / IGNORE_MARKER).exists():
            return True
    return False


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand ``paths`` (files or directories) into sorted ``.py`` files.

    All candidates — including files passed directly — go through the
    same ``EXCLUDED_DIRS``/``.egg-info`` filters, and overlapping path
    arguments (``src src/repro`` or relative/absolute spellings of the
    same file) are deduplicated by resolved path.
    """
    found: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if _is_excluded(candidate) or _under_ignore_marker(candidate, path):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    found.append(candidate)
        elif path.suffix == ".py":
            if _is_excluded(path):
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


class Linter:
    """Runs a set of rules over files and collects violations."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        root: Optional[Path] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else create_rules()
        self.root = root if root is not None else Path.cwd()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def lint_paths(self, paths: Iterable[str]) -> LintResult:
        """Lint files/directories; returns the aggregated result."""
        return self.lint_files(discover_files([Path(p) for p in paths]))

    def lint_files(self, files: Sequence[Path]) -> LintResult:
        """Lint an explicit file list (already discovered/filtered)."""
        result = LintResult()
        for file_path in files:
            result.files_checked += 1
            result.violations.extend(self.lint_file(file_path))
        result.violations.sort()
        return result

    def lint_file(self, path: Path) -> List[Violation]:
        """Lint one file from disk."""
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path=path)

    def lint_source(self, source: str, path: Optional[Path] = None) -> List[Violation]:
        """Lint source text (``path`` used only for display/scoping)."""
        path = path if path is not None else Path("<string>")
        display = self._display_path(path)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            return [
                Violation(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"cannot parse file: {exc.msg}",
                    severity=Severity.ERROR,
                )
            ]
        ctx = ModuleContext(
            path=path,
            display_path=display,
            source=source,
            tree=tree,
            suppressions=Suppressions.from_source(source),
        )
        violations: List[Violation] = []
        for rule in self.rules:
            for violation in rule.check(ctx):
                if ctx.suppressions.is_suppressed(violation.rule, violation.line):
                    continue
                violations.append(violation)
        return violations

    def _display_path(self, path: Path) -> str:
        try:
            return str(path.resolve().relative_to(self.root.resolve()))
        except ValueError:
            return str(path)
