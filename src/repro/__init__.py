"""Reproduction of "Billion-scale Pre-trained E-commerce Product Knowledge
Graph Model" (PKGM, ICDE 2021).

The package is organized bottom-up:

* :mod:`repro.nn` -- numpy autograd engine (TensorFlow substitute).
* :mod:`repro.kg` -- knowledge graph substrate: triple store, queries,
  negative sampling, edge sampling (Graph-learn substitute).
* :mod:`repro.data` -- synthetic e-commerce catalog, titles, alignment
  pairs, and implicit-feedback interactions (Alibaba PKG substitute).
* :mod:`repro.core` -- PKGM itself: triple/relation query modules,
  pre-training, key-relation selection, and the service-vector API.
* :mod:`repro.baselines` -- classic KGE scorers and link prediction.
* :mod:`repro.text` -- tokenizer + mini-BERT (pre-trained BERT substitute).
* :mod:`repro.tasks` -- the three downstream tasks of the paper:
  item classification, product alignment, item recommendation.
* :mod:`repro.eval` -- metrics and ranking protocols.
* :mod:`repro.pipeline` -- end-to-end experiment runner.
"""

__version__ = "1.0.0"
