"""Serving-side scenario engines behind the gateway and the pool.

Three layers, mirroring how the main serve path is built:

* :class:`ServiceRecommender` — the zero-shot engine itself: ranks
  items by condensed-service-vector distance, so an item needs only a
  KG presence (never an interaction) to be recommendable.
* :class:`ScenarioService` — the resilient facade the gateway calls: a
  circuit breaker in front of the engines plus an LRU payload cache
  that **never caches degraded payloads** (the PR 3 invariant, here
  extended to the two new endpoint kinds).
* :class:`WorkerScenarios` — the lazy per-process bundle a forked pool
  worker builds from its store directory (recommender from the
  embedding store, explainer from the ``scenarios.json`` sidecar).

Failure vocabulary is shared with the rest of the serving stack:
engines raise :class:`KeyError` for unknown ids and the facade raises
:class:`~repro.reliability.retry.RPCError` when the breaker is open,
so :class:`~repro.reliability.gateway.PKGMGateway` degrades these
kinds exactly like serve/retrieve traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.cache import LRUDict
from ..reliability.retry import CircuitBreaker, CircuitOpenError, RPCError, StepClock
from .explain import ExplanationPayload, load_sidecar

__all__ = [
    "RecommendationPayload",
    "ScenarioService",
    "ServiceRecommender",
    "WorkerScenarios",
    "degraded_explanation",
    "degraded_recommendation",
]


@dataclass(frozen=True)
class RecommendationPayload:
    """Top-``k`` neighbors of an anchor item in service-vector space.

    ``distances`` ascending, ``neighbor_ids`` aligned; a degraded
    payload carries ``inf`` distances and ``-1`` ids, same shape — the
    retrieval fallback convention.
    """

    entity_id: int
    k: int
    distances: np.ndarray
    neighbor_ids: np.ndarray
    degraded: bool = False


def degraded_recommendation(entity_id: int, k: int) -> RecommendationPayload:
    """The typed fallback payload for a failed recommendation."""
    return RecommendationPayload(
        entity_id=int(entity_id),
        k=int(k),
        distances=np.full(int(k), np.inf),
        neighbor_ids=np.full(int(k), -1, dtype=np.int64),
        degraded=True,
    )


def degraded_explanation(
    entity_id: int, relation: int, kind: str = "completion"
) -> ExplanationPayload:
    """The typed fallback payload for a failed explanation."""
    return ExplanationPayload(
        entity_id=int(entity_id),
        relation=int(relation),
        kind=kind,
        degraded=True,
    )


class ServiceRecommender:
    """Item-to-item zero-shot recommendation from service vectors.

    Precomputes the condensed service vector of every known item; a
    query ranks all other items by L2 distance to the anchor's vector.
    Because the vectors come purely from the KG (PKGM's point), a
    cold-start item — in the graph, absent from every interaction —
    ranks exactly like a warm one.  Unknown ids raise ``KeyError``.
    """

    def __init__(self, server, registry=None) -> None:
        self.server = server
        self.items = np.asarray(sorted(server.known_items()), dtype=np.int64)
        self._row_of = {int(e): i for i, e in enumerate(self.items)}
        self._matrix = server.serve_condensed_batch([int(e) for e in self.items])
        self._served_c = None
        if registry is not None:
            self._served_c = registry.counter(
                "scenarios.recommend.served",
                help="Recommendation payloads produced",
            )

    def recommend(self, entity_id: int, k: int = 10) -> RecommendationPayload:
        """Top-``k`` nearest items to ``entity_id`` (anchor excluded)."""
        row = self._row_of.get(int(entity_id))
        if row is None:
            raise KeyError(int(entity_id))
        k = int(k)
        deltas = self._matrix - self._matrix[row]
        distances = np.sqrt(np.sum(deltas * deltas, axis=1))
        distances[row] = np.inf  # never recommend the anchor to itself
        order = np.lexsort((self.items, distances))[:k]
        found = min(k, len(order))
        out_d = np.full(k, np.inf)
        out_i = np.full(k, -1, dtype=np.int64)
        out_d[:found] = distances[order[:found]]
        out_i[:found] = self.items[order[:found]]
        if self._served_c is not None:
            self._served_c.inc()
        return RecommendationPayload(
            entity_id=int(entity_id),
            k=k,
            distances=out_d,
            neighbor_ids=out_i,
        )


class ScenarioService:
    """Breaker + cache front for the scenario engines.

    The gateway treats this as one logical backend for the two new
    request kinds.  Discipline copied from the PR 3 serving stack:

    * a :class:`CircuitBreaker` guards every engine call; when open,
      calls fail fast as :class:`RPCError` so the gateway's degraded
      path takes over;
    * successful payloads land in a bounded LRU keyed by the full
      query; cache hits are served even while the breaker is open
      (stale-on-open, like :class:`ResilientPKGMServer`);
    * **degraded payloads are never cached** — the facade refuses even
      if handed one, and the test suite pins that down for both kinds.
    """

    def __init__(
        self,
        explainer,
        recommender,
        clock: Optional[StepClock] = None,
        registry=None,
        cache_capacity: int = 256,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.explainer = explainer
        self.recommender = recommender
        self.clock = clock or StepClock()
        # Default failure_types: unknown-id KeyErrors are domain errors
        # and must not indict the backend.
        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self._cache = LRUDict(cache_capacity)
        self._hits_c = self._misses_c = self._skips_c = self._shortcircuit_c = None
        if registry is not None:
            self._hits_c = registry.counter(
                "scenarios.cache.hits", help="Scenario payloads served from cache"
            )
            self._misses_c = registry.counter(
                "scenarios.cache.misses", help="Scenario cache misses"
            )
            self._skips_c = registry.counter(
                "scenarios.cache.degraded_skips",
                help="Degraded payloads refused by the cache",
            )
            self._shortcircuit_c = registry.counter(
                "scenarios.breaker.short_circuits",
                help="Scenario calls failed fast by the open breaker",
            )

    def cached(self, key: Tuple) -> Optional[object]:
        """Peek the cache without touching recency (for tests)."""
        return self._cache.peek(key)

    def __len__(self) -> int:
        return len(self._cache)

    def _guarded(self, key: Tuple, call):
        hit = self._cache.get(key)
        if hit is not None:
            if self._hits_c is not None:
                self._hits_c.inc()
            return hit
        if self._misses_c is not None:
            self._misses_c.inc()
        try:
            payload = self.breaker.call(call)
        except CircuitOpenError as exc:
            if self._shortcircuit_c is not None:
                self._shortcircuit_c.inc()
            raise RPCError(f"scenario breaker open: {exc}") from exc
        if getattr(payload, "degraded", False):
            if self._skips_c is not None:
                self._skips_c.inc()
            return payload
        self._cache.put(key, payload)
        return payload

    def explain(
        self, entity_id: int, relation: int, kind: str = "completion"
    ) -> ExplanationPayload:
        key = ("explain", int(entity_id), int(relation), kind)
        return self._guarded(
            key, lambda: self.explainer.explain(entity_id, relation, kind=kind)
        )

    def recommend(self, entity_id: int, k: int = 10) -> RecommendationPayload:
        key = ("recommend", int(entity_id), int(k))
        return self._guarded(
            key, lambda: self.recommender.recommend(entity_id, k=k)
        )


class WorkerScenarios:
    """Lazy per-process scenario engines for a forked pool worker.

    Built inside ``worker_main`` after the store is opened; engines are
    constructed on first use so workers serving only core kinds pay
    nothing.  ``explain`` needs the :data:`~repro.scenarios.explain.SIDECAR_NAME`
    sidecar in the store directory — without it the call raises
    ``RuntimeError``, which the worker reports as a ``STATUS_ERROR``
    outcome rather than dying.
    """

    def __init__(self, server, store_dir: str) -> None:
        self.server = server
        self.store_dir = store_dir
        self._recommender: Optional[ServiceRecommender] = None
        self._explainer = None
        self._sidecar_loaded = False

    def recommend(self, entity_id: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._recommender is None:
            self._recommender = ServiceRecommender(self.server)
        payload = self._recommender.recommend(entity_id, k=k)
        return payload.distances, payload.neighbor_ids

    def explain(self, entity_id: int, relation: int) -> dict:
        if not self._sidecar_loaded:
            self._explainer = load_sidecar(self.store_dir, server=self.server)
            self._sidecar_loaded = True
        if self._explainer is None:
            raise RuntimeError("store has no scenarios sidecar")
        return self._explainer.explain(entity_id, relation).canonical_dict()
