"""The seeded scenario workload behind the check.sh / CI gate.

Two phases exercise the new endpoints end to end on virtual time:

1. **Gateway phase** — ``submit_explanation`` / ``submit_recommendation``
   ride the full PR 3 path (admission, deadline rejection, degraded
   fallbacks, caching discipline) against a
   :class:`~repro.scenarios.service.ScenarioService` built from the
   preset catalog's mined rules and an untrained server (serving
   mechanics do not depend on trained weights).  Every ok explanation
   is checked for entailment against the catalog store.
2. **Pool phase** — the same queries as ``explain`` / ``recommend``
   op kinds over a forked two-worker
   :class:`~repro.serving.Supervisor`, with the rule sidecar shipped
   next to the embedding store and payload CRCs computed by the wire
   protocol.

The transcript records request id, kind, outcome, and payload CRC —
never timings or worker identities — so two same-seed runs are
byte-identical; ``tools/check.sh`` and the ``scenarios-gate`` CI job
run it twice and ``diff`` the output.  A cold-start split summary line
pins the scenario's data generation into the same gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["ScenarioWorkloadReport", "run_scenarios_workload"]


@dataclass
class ScenarioWorkloadReport:
    """Everything the gate prints; :meth:`lines` is what gets diffed."""

    gateway_lines: List[str] = field(default_factory=list)
    pool_lines: List[str] = field(default_factory=list)
    metric_lines: List[str] = field(default_factory=list)
    summary_lines: List[str] = field(default_factory=list)
    passed: bool = False

    def lines(self) -> List[str]:
        out = ["== gateway phase =="]
        out.extend(self.gateway_lines)
        out.append("== pool phase ==")
        out.extend(self.pool_lines)
        out.append("== scenario metrics ==")
        out.extend(self.metric_lines)
        out.extend(self.summary_lines)
        out.append(f"scenarios workload: {'PASS' if self.passed else 'FAIL'}")
        return out


def _crc_of(kind: str, payload) -> int:
    from ..serving.protocol import payload_checksum

    if getattr(payload, "degraded", False):
        return 0
    if kind == "explain":
        return payload_checksum(kind, payload.canonical_dict())
    return payload_checksum(kind, (payload.distances, payload.neighbor_ids))


def _transcript_line(
    request_id: int, kind: str, entity: int, relation: int, outcome: str, crc: int
) -> str:
    return (
        f"{request_id:05d} {kind:<9s} entity={entity:<8d} "
        f"rel={relation:<4d} outcome={outcome:<12s} crc={crc:08x}"
    )


def run_scenarios_workload(
    seed: int = 0,
    requests: int = 160,
    pool_requests: int = 96,
    preset: str = "smoke",
) -> ScenarioWorkloadReport:
    """Run both phases; deterministic for a given (seed, sizes, preset)."""
    import shutil
    import tempfile

    import numpy as np

    from ..config import PRESETS
    from ..core import PKGM, KeyRelationSelector, PKGMServer
    from ..data import generate_catalog
    from ..kg.rules import RuleMiner
    from ..obs import MetricsRegistry
    from ..reliability import (
        AdmissionConfig,
        GatewayConfig,
        PKGMGateway,
        build_replicas,
    )
    from ..reliability.retry import StepClock
    from ..serving import PoolConfig, Supervisor
    from .coldstart import generate_coldstart_split
    from .explain import Explainer, save_sidecar
    from .service import ScenarioService, ServiceRecommender

    report = ScenarioWorkloadReport()
    config = PRESETS[preset]()
    catalog = generate_catalog(config.catalog)
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=config.key_relations
    )
    model = PKGM(
        len(catalog.entities),
        len(catalog.relations),
        config.pkgm,
        rng=np.random.default_rng(seed),
    )
    server = PKGMServer(model, selector)
    items = sorted(server.known_items())
    num_relations = len(catalog.relations)
    unknown_entity = len(catalog.entities) + 1000

    registry = MetricsRegistry()
    clock = StepClock()
    rules = RuleMiner(min_support=2, min_confidence=0.6).mine(catalog.store)
    explainer = Explainer(
        catalog.store, rules=rules, server=server, registry=registry
    )
    recommender = ServiceRecommender(server, registry=registry)
    service = ScenarioService(
        explainer, recommender, clock=clock, registry=registry
    )
    gateway = PKGMGateway(
        build_replicas(server, 2, seed=seed, registry=registry),
        GatewayConfig(
            deadline_budget=0.25,
            hedge_after=0.05,
            admission=AdmissionConfig(rate=400.0, burst=64.0, queue_capacity=64),
        ),
        clock=clock,
        seed=seed,
        registry=registry,
        scenarios=service,
    )

    # ------------------------------------------------------------------
    # Phase 1: gateway endpoints.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(seed)
    kinds: Dict[int, Tuple[str, int, int]] = {}
    responses = []
    for _ in range(requests):
        draw = float(rng.random())
        entity = (
            unknown_entity
            if rng.random() < 0.08
            else int(items[int(rng.integers(len(items)))])
        )
        budget = 0.0 if rng.random() < 0.10 else None
        if draw < 0.5:
            relation = int(rng.integers(num_relations))
            rid = gateway._next_id
            kinds[rid] = ("explain", entity, relation)
            immediate = gateway.submit_explanation(entity, relation, budget=budget)
        else:
            rid = gateway._next_id
            kinds[rid] = ("recommend", entity, -1)
            immediate = gateway.submit_recommendation(entity, k=5, budget=budget)
        if immediate is not None:
            responses.append(immediate)
        clock.advance(0.002)
        responses.extend(gateway.step())
    responses.extend(gateway.drain())

    entailment_failures = 0
    ok_explanations = 0
    by_id = {}
    duplicates = 0
    for response in responses:
        if response.request_id in by_id:
            duplicates += 1
        by_id[response.request_id] = response
    for rid in sorted(by_id):
        response = by_id[rid]
        kind, entity, relation = kinds[rid]
        outcome = response.reason if response.reason is not None else "ok"
        payload = response.vectors
        crc = _crc_of(kind, payload)
        if kind == "explain" and outcome == "ok":
            ok_explanations += 1
            if not payload.entailed_by(catalog.store):
                entailment_failures += 1
        report.gateway_lines.append(
            _transcript_line(rid, kind, entity, relation, outcome, crc)
        )

    # ------------------------------------------------------------------
    # Phase 2: pool op kinds over forked workers.
    # ------------------------------------------------------------------
    store_dir = tempfile.mkdtemp(prefix="repro-scenarios-workload-")
    pool_answered = 0
    try:
        server.save_store(store_dir)
        save_sidecar(store_dir, catalog.store, rules)
        pool_clock = StepClock()
        pool = Supervisor(
            store_dir,
            PoolConfig(num_workers=2, max_batch=4),
            clock=pool_clock,
            registry=registry,
        )
        pool.start()
        try:
            pool_rng = np.random.default_rng(seed + 1)
            for _ in range(pool_requests):
                entity = (
                    unknown_entity
                    if pool_rng.random() < 0.08
                    else int(items[int(pool_rng.integers(len(items)))])
                )
                if pool_rng.random() < 0.5:
                    relation = int(pool_rng.integers(num_relations))
                    pool.submit("explain", entity, relation=relation)
                else:
                    pool.submit("recommend", entity, k=5)
                pool_clock.advance(0.001)
                pool.pump()
            pool_responses = pool.drain()
            pool_answered = len(pool_responses)
            for response in sorted(pool_responses, key=lambda r: r.request_id):
                report.pool_lines.append(
                    _transcript_line(
                        response.request_id,
                        response.kind,
                        response.entity_id,
                        response.relation,
                        response.outcome,
                        response.checksum,
                    )
                )
        finally:
            pool.shutdown()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Cold-start generation determinism + metrics + verdict.
    # ------------------------------------------------------------------
    split = generate_coldstart_split(catalog, config.interactions)
    cold_leaks = sum(
        1
        for event in split.interactions.interactions
        if event.item_id in set(split.cold_items)
    )

    snapshot = registry.snapshot()
    for key in sorted(snapshot):
        if key.startswith("scenarios.") or key.startswith(
            ("gateway.explanations", "gateway.recommendations")
        ):
            report.metric_lines.append(f"{key} {snapshot[key]}")

    report.summary_lines = [
        split.summary(),
        f"gateway: {requests} submitted | {len(by_id)} answered | "
        f"{duplicates} duplicates | {ok_explanations} explanations ok | "
        f"{entailment_failures} entailment failures",
        f"pool: {pool_requests} submitted | {pool_answered} answered",
        f"coldstart leaks: {cold_leaks}",
    ]
    report.passed = (
        len(by_id) == requests
        and duplicates == 0
        and entailment_failures == 0
        and ok_explanations > 0
        and pool_answered == pool_requests
        and cold_leaks == 0
    )
    return report
