"""Downstream scenarios served from PKGM service vectors.

The paper's pitch is that service vectors let applications consume
billion-scale KG knowledge without touching the graph.  PRs 1–9 built
the substrate (training, serving, reliability, storage, streaming);
this package adds the two scenario workloads named in PAPERS.md on top
of it:

* :mod:`repro.scenarios.coldstart` — zero-shot recommendation
  (arXiv 2305.07633): a seeded interaction generator that produces
  cold-start items by construction, a multi-task pre-training
  objective coupling the TransE loss with an item–item co-occurrence
  alignment head, and an eval harness scoring cold items purely from
  service vectors against popularity / random / warm-only baselines.
* :mod:`repro.scenarios.explain` — explainable relation reasoning
  (arXiv 2112.08589): completion and existence answers packaged with
  the mined rules and concrete supporting triples that entail them,
  plus rule-transfer evaluation across category subgraphs.
* :mod:`repro.scenarios.service` — the serving-side engines behind the
  gateway's ``submit_explanation`` / ``submit_recommendation``
  endpoints and the pool's ``explain`` / ``recommend`` op kinds.
* :mod:`repro.scenarios.workload` — the seeded two-phase drill whose
  byte-diffed transcript gates in ``tools/check.sh`` and CI.

Determinism discipline matches :mod:`repro.reliability`: virtual
clocks and seeded generators only — lint rule R007 bans wall-clock
reads here too.
"""

from .coldstart import (
    ColdStartConfig,
    ColdStartReport,
    ColdStartSplit,
    CooccurrenceAligner,
    evaluate_coldstart,
    generate_coldstart_split,
    pretrain_multitask,
    run_coldstart,
)
from .explain import (
    Citation,
    Explainer,
    ExplanationPayload,
    TransferReport,
    category_subgraphs,
    evaluate_rule_transfer,
    load_sidecar,
    save_sidecar,
)
from .service import (
    RecommendationPayload,
    ScenarioService,
    ServiceRecommender,
    WorkerScenarios,
    degraded_explanation,
    degraded_recommendation,
)
from .workload import ScenarioWorkloadReport, run_scenarios_workload

__all__ = [
    "Citation",
    "ColdStartConfig",
    "ColdStartReport",
    "ColdStartSplit",
    "CooccurrenceAligner",
    "Explainer",
    "ExplanationPayload",
    "RecommendationPayload",
    "ScenarioService",
    "ScenarioWorkloadReport",
    "ServiceRecommender",
    "TransferReport",
    "WorkerScenarios",
    "category_subgraphs",
    "degraded_explanation",
    "degraded_recommendation",
    "evaluate_coldstart",
    "evaluate_rule_transfer",
    "generate_coldstart_split",
    "load_sidecar",
    "pretrain_multitask",
    "run_coldstart",
    "run_scenarios_workload",
    "save_sidecar",
]
