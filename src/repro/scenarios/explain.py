"""Explainable relation reasoning over mined attribute rules.

The production PKG answers "why" alongside "what": a completion or
existence score ships with the mined rules and the concrete triples
that fired them (PAPERS.md, arXiv 2112.08589).  This module packages
that evidence as a structured :class:`ExplanationPayload` — every
citation names a rule and a supporting triple that together *entail*
the predicted value, a property the test suite checks for every
explained completion — and adds the paper's transfer question: do
rules mined on one category subgraph still hold on another?

The payload's :meth:`ExplanationPayload.canonical_dict` is the wire
form: canonical JSON bytes of it are what the pool protocol CRCs and
what the byte-diffed workload transcripts hash, so its layout is
deliberately primitive (ints, floats, nested lists — nothing numpy).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..kg.rules import Rule, RuleCompleter, RuleMiner
from ..kg.store import TripleStore

__all__ = [
    "Citation",
    "Explainer",
    "ExplanationPayload",
    "SIDECAR_NAME",
    "TransferReport",
    "category_subgraphs",
    "evaluate_rule_transfer",
    "load_sidecar",
    "save_sidecar",
]

EXPLAIN_COMPLETION = "completion"
EXPLAIN_EXISTENCE = "existence"

#: Filename of the scenario sidecar written next to an embedding
#: store so forked pool workers can rebuild an :class:`Explainer`.
SIDECAR_NAME = "scenarios.json"


@dataclass(frozen=True)
class Citation:
    """One piece of evidence: a rule plus the triple that fired it.

    ``support`` is a concrete ``(head, relation, tail)`` triple of the
    explained item matching the rule's body; the rule's head is the
    ``(relation, value)`` being argued for.  Rule + support together
    entail ``value`` — :meth:`ExplanationPayload.entailed_by` verifies
    exactly that against a store.
    """

    value: int
    rule: Rule
    support: Tuple[int, int, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "value": int(self.value),
            "body_relation": int(self.rule.body_relation),
            "body_value": int(self.rule.body_value),
            "head_relation": int(self.rule.head_relation),
            "head_value": int(self.rule.head_value),
            "support_count": int(self.rule.support),
            "confidence": float(self.rule.confidence),
            "support": [int(x) for x in self.support],
        }


@dataclass(frozen=True)
class ExplanationPayload:
    """A completion/existence answer with the evidence behind it.

    ``predictions`` is the ranked ``(value, score)`` list (empty for a
    degraded payload); every prediction is backed by at least one
    :class:`Citation`.  ``existence_score`` carries the PKGM existence
    head's sigmoid score when the query kind is ``"existence"`` and a
    server was attached.  ``degraded`` marks gateway fallback payloads,
    which — per the PR 3 invariant — are answered, never cached.
    """

    entity_id: int
    relation: int
    kind: str = EXPLAIN_COMPLETION
    predictions: Tuple[Tuple[int, float], ...] = ()
    citations: Tuple[Citation, ...] = ()
    existence_score: float = 0.0
    degraded: bool = False

    def canonical_dict(self) -> Dict[str, object]:
        """Primitive, deterministic wire form (CRC'd by the pool)."""
        return {
            "entity": int(self.entity_id),
            "relation": int(self.relation),
            "kind": self.kind,
            "degraded": bool(self.degraded),
            "existence_score": float(self.existence_score),
            "predictions": [[int(v), float(s)] for v, s in self.predictions],
            "citations": [c.as_dict() for c in self.citations],
        }

    def canonical_bytes(self) -> bytes:
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def entailed_by(self, store: TripleStore) -> bool:
        """Do the citations actually prove the predictions?

        True iff every citation's supporting triple exists in
        ``store``, matches its rule's body on this entity, and the
        rule's head concludes the cited value under the explained
        relation — and every prediction has at least one citation.
        Degraded payloads (no predictions, no citations) are vacuously
        entailed.
        """
        predicted = {int(v) for v, _ in self.predictions}
        cited = set()
        for citation in self.citations:
            head, relation, tail = citation.support
            rule = citation.rule
            if head != self.entity_id:
                return False
            if (relation, tail) != (rule.body_relation, rule.body_value):
                return False
            if (rule.head_relation, rule.head_value) != (
                self.relation,
                int(citation.value),
            ):
                return False
            if (head, relation, tail) not in store:
                return False
            cited.add(int(citation.value))
        return predicted <= cited


class Explainer:
    """Answers completion/existence queries with structured evidence.

    Wraps a :class:`~repro.kg.rules.RuleCompleter` (mined on demand if
    no rules are supplied) over a triple store; an optional
    :class:`~repro.core.PKGMServer` contributes the sub-symbolic
    existence score.  Unknown items — entities bearing no facts in the
    store — raise :class:`KeyError`, which the serving layers map to
    their ``unknown-id`` outcomes.
    """

    def __init__(
        self,
        store: TripleStore,
        rules: Optional[Iterable[Rule]] = None,
        miner: Optional[RuleMiner] = None,
        server=None,
        registry=None,
    ) -> None:
        self.store = store
        if rules is None:
            rules = (miner or RuleMiner()).mine(store)
        self.completer = RuleCompleter(rules).prune(store.relations())
        self.server = server
        self._completions_c = None
        self._existence_c = None
        if registry is not None:
            self._completions_c = registry.counter(
                "scenarios.explain.completions",
                help="Completion explanations produced",
            )
            self._existence_c = registry.counter(
                "scenarios.explain.existence",
                help="Existence explanations produced",
            )

    @property
    def num_rules(self) -> int:
        return self.completer.num_rules

    def explain(
        self,
        entity_id: int,
        relation: int,
        kind: str = EXPLAIN_COMPLETION,
        top_k: int = 3,
    ) -> ExplanationPayload:
        if kind == EXPLAIN_COMPLETION:
            return self.explain_completion(entity_id, relation, top_k=top_k)
        if kind == EXPLAIN_EXISTENCE:
            return self.explain_existence(entity_id, relation, top_k=top_k)
        raise ValueError(f"unknown explanation kind: {kind!r}")

    def _facts_or_raise(self, entity_id: int):
        facts = self.store.triples_with_head(int(entity_id))
        if not facts:
            raise KeyError(int(entity_id))
        return facts

    def _citations(
        self, entity_id: int, relation: int, values: Sequence[int]
    ) -> Tuple[Citation, ...]:
        citations: List[Citation] = []
        for value in values:
            for rule, support in self.completer.supporting_rules(
                self.store, int(entity_id), int(relation), int(value)
            ):
                citations.append(
                    Citation(value=int(value), rule=rule, support=support)
                )
        citations.sort(key=lambda c: (c.value, c.rule.sort_key))
        return tuple(citations)

    def explain_completion(
        self, entity_id: int, relation: int, top_k: int = 3
    ) -> ExplanationPayload:
        """Explain ``(entity, relation, ?)``: ranked values + evidence."""
        self._facts_or_raise(entity_id)
        predictions = tuple(
            (int(v), float(s))
            for v, s in self.completer.predict(
                self.store, int(entity_id), int(relation), top_k=top_k
            )
        )
        payload = ExplanationPayload(
            entity_id=int(entity_id),
            relation=int(relation),
            kind=EXPLAIN_COMPLETION,
            predictions=predictions,
            citations=self._citations(
                entity_id, relation, [v for v, _ in predictions]
            ),
        )
        if self._completions_c is not None:
            self._completions_c.inc()
        return payload

    def explain_existence(
        self, entity_id: int, relation: int, top_k: int = 3
    ) -> ExplanationPayload:
        """Explain "does ``(entity, relation)`` hold?".

        Combines the PKGM existence head's score (when a server is
        attached) with the symbolic evidence: rules concluding any
        value under ``relation`` whose bodies this entity satisfies.
        """
        self._facts_or_raise(entity_id)
        score = 0.0
        if self.server is not None:
            score = float(
                self.server.relation_existence_score(int(entity_id), int(relation))
            )
        predictions = tuple(
            (int(v), float(s))
            for v, s in self.completer.predict(
                self.store, int(entity_id), int(relation), top_k=top_k
            )
        )
        payload = ExplanationPayload(
            entity_id=int(entity_id),
            relation=int(relation),
            kind=EXPLAIN_EXISTENCE,
            predictions=predictions,
            citations=self._citations(
                entity_id, relation, [v for v, _ in predictions]
            ),
            existence_score=score,
        )
        if self._existence_c is not None:
            self._existence_c.inc()
        return payload


# ---------------------------------------------------------------------------
# Sidecar: ship (triples, rules) next to an embedding store so forked
# pool workers can rebuild an Explainer without the catalog pipeline.
# ---------------------------------------------------------------------------


def save_sidecar(store_dir: str, store: TripleStore, rules: Iterable[Rule]) -> str:
    """Write the scenario sidecar into ``store_dir``; returns its path.

    Canonical JSON (sorted triples, rule sort order) so two same-input
    saves are byte-identical — the sidecar rides inside byte-compared
    store directories.
    """
    path = os.path.join(store_dir, SIDECAR_NAME)
    ordered = sorted(RuleCompleter(rules).rules, key=lambda r: r.sort_key)
    payload = {
        "triples": sorted(
            [int(t.head), int(t.relation), int(t.tail)] for t in store
        ),
        "rules": [
            {
                "body_relation": rule.body_relation,
                "body_value": rule.body_value,
                "head_relation": rule.head_relation,
                "head_value": rule.head_value,
                "support": rule.support,
                "confidence": rule.confidence,
            }
            for rule in ordered
        ],
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_sidecar(store_dir: str, server=None, registry=None) -> Optional[Explainer]:
    """Rebuild an :class:`Explainer` from a store's sidecar, if present."""
    path = os.path.join(store_dir, SIDECAR_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    store = TripleStore((h, r, t) for h, r, t in payload["triples"])
    rules = [
        Rule(
            body_relation=int(r["body_relation"]),
            body_value=int(r["body_value"]),
            head_relation=int(r["head_relation"]),
            head_value=int(r["head_value"]),
            support=int(r["support"]),
            confidence=float(r["confidence"]),
        )
        for r in payload["rules"]
    ]
    return Explainer(store, rules=rules, server=server, registry=registry)


# ---------------------------------------------------------------------------
# Rule transfer across category subgraphs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransferReport:
    """Do rules mined on ``source`` still hold on ``target``?

    ``precision`` — of the target slots the transferred rules dared to
    predict, what fraction matched the target's ground truth.
    ``coverage`` — what fraction of the target's ground-truth slots
    received a prediction at all.
    """

    source_category: int
    target_category: int
    rules_mined: int
    slots: int
    predicted: int
    correct: int

    @property
    def precision(self) -> float:
        return self.correct / self.predicted if self.predicted else 0.0

    @property
    def coverage(self) -> float:
        return self.predicted / self.slots if self.slots else 0.0

    def as_row(self) -> str:
        return (
            f"{self.source_category} -> {self.target_category}: "
            f"rules={self.rules_mined} slots={self.slots} "
            f"predicted={self.predicted} correct={self.correct} "
            f"precision={self.precision:.3f} coverage={self.coverage:.3f}"
        )


def category_subgraphs(catalog) -> Dict[int, TripleStore]:
    """Per-category triple stores over the catalog's item facts."""
    subgraphs: Dict[int, TripleStore] = {}
    for item in catalog.items:
        store = subgraphs.setdefault(item.category_id, TripleStore())
        for triple in catalog.store.triples_with_head(item.entity_id):
            store.add(triple.head, triple.relation, triple.tail)
    return subgraphs


def evaluate_rule_transfer(
    source: TripleStore,
    target: TripleStore,
    miner: Optional[RuleMiner] = None,
    source_category: int = -1,
    target_category: int = -1,
) -> TransferReport:
    """Mine on ``source``, measure precision/coverage on ``target``.

    For every ``(item, relation)`` slot of the target that has ground
    truth and that the rule set can conclude about, predict top-1 from
    the item's *other* facts (rule bodies never share the head
    relation, so the answer itself never leaks into the body match)
    and compare against the target's stored tails.
    """
    rules = (miner or RuleMiner()).mine(source)
    completer = RuleCompleter(rules)
    slots = predicted = correct = 0
    for item in sorted(target.heads()):
        for relation in completer.head_relations():
            truth = target.tails(item, relation)
            if not truth:
                continue
            slots += 1
            top = completer.predict(target, item, relation, top_k=1)
            if not top:
                continue
            predicted += 1
            if top[0][0] in truth:
                correct += 1
    return TransferReport(
        source_category=source_category,
        target_category=target_category,
        rules_mined=len(rules),
        slots=slots,
        predicted=predicted,
        correct=correct,
    )
