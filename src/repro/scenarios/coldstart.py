"""Zero-shot recommendation of cold-start items (PAPERS.md, arXiv 2305.07633).

The scenario the paper's serving architecture exists for: a brand-new
item enters the catalog with full KG facts but *zero* interactions.
Collaborative filters have nothing to learn from; PKGM's service
vectors — computed purely from the graph — already place the item in
the same space as every warm item.

Three pieces:

* :func:`generate_coldstart_split` — a seeded split that produces
  cold items *by construction*: a fraction of catalog items is
  designated cold, every interaction touching them is dropped from the
  training set, and each user's evaluation positive is drawn from the
  cold pool by the same persona affinity the generator used (so the
  held-out choice is learnable, not noise).
* :class:`CooccurrenceAligner` + :func:`pretrain_multitask` — the
  multi-task objective: standard TransE pre-training interleaved, once
  per epoch, with an alignment pass pulling the entity embeddings of
  items that co-occur in user histories toward each other.  Cold items
  never appear in the pairs (they have no interactions), but they
  share attribute values with warm items, so the KG structure
  propagates the collaborative signal to them.
* :func:`evaluate_coldstart` — HR@k / NDCG@k of ranking each user's
  held-out cold item among all cold items, scored purely from service
  vectors, against random, popularity, and warm-only NCF baselines.

Everything is seeded; no wall clock (lint R007 applies here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.interactions import (
    Interaction,
    InteractionConfig,
    InteractionDataset,
    generate_interactions,
)
from ..eval import rank_of_positive, ranking_metrics

__all__ = [
    "ColdStartConfig",
    "ColdStartReport",
    "ColdStartSplit",
    "CooccurrenceAligner",
    "evaluate_coldstart",
    "generate_coldstart_split",
    "pretrain_multitask",
    "run_coldstart",
]


@dataclass(frozen=True)
class ColdStartConfig:
    """Knobs for the zero-shot scenario.

    ``alignment_weight`` scales the co-occurrence pull relative to the
    TransE updates; one alignment pass runs after every training epoch
    (the multi-task interleave).
    """

    cold_fraction: float = 0.2
    seed: int = 0
    ks: Tuple[int, ...] = (1, 5, 10)
    alignment_weight: float = 0.1
    alignment_lr: float = 0.05
    max_pairs: int = 4000
    min_warm_per_user: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.cold_fraction < 1.0:
            raise ValueError("cold_fraction must be in (0, 1)")
        if self.alignment_weight < 0 or self.alignment_lr <= 0:
            raise ValueError("alignment weight/lr must be positive")
        if self.min_warm_per_user < 1:
            raise ValueError("min_warm_per_user must be >= 1")


@dataclass
class ColdStartSplit:
    """Warm training interactions + the cold evaluation pool.

    ``interactions`` spans the *full* dense item-id space but contains
    no event touching a cold item — that absence is the definition of
    cold start here, and a test asserts it.  ``heldout`` maps each
    user to their evaluation positive, drawn from ``cold_items``.
    """

    interactions: InteractionDataset
    cold_items: List[int]
    warm_items: List[int]
    heldout: Dict[int, int]

    def summary(self) -> str:
        return (
            f"coldstart split: {self.interactions.num_items} items | "
            f"{len(self.cold_items)} cold | "
            f"{len(self.interactions.interactions)} warm interactions | "
            f"{len(self.heldout)} heldout users"
        )


def _persona_cold_affinity(
    persona: Dict[str, object],
    cold_items: Sequence[int],
    item_category: np.ndarray,
    item_values: List[Set[str]],
    strength: float,
) -> np.ndarray:
    """Affinity of one user for each cold item, same form the
    interaction generator used — so the held-out positive reflects the
    user's persona rather than uniform noise."""
    liked_categories = persona["categories"]
    liked_values = persona["values"]
    affinity = np.ones(len(cold_items), dtype=np.float64)
    for i, item in enumerate(cold_items):
        if int(item_category[item]) in liked_categories:
            affinity[i] *= strength
        match = len(item_values[item] & liked_values)
        affinity[i] *= 1.0 + strength * match
    return affinity / affinity.sum()


def generate_coldstart_split(
    catalog,
    interactions: Optional[InteractionConfig] = None,
    config: Optional[ColdStartConfig] = None,
) -> ColdStartSplit:
    """Seeded cold-start split over a generated catalog.

    Cold items are chosen up front; the persona-driven generator then
    produces interactions over all items and every event touching a
    cold item is removed.  Users left with fewer than
    ``min_warm_per_user`` warm events get deterministic persona-driven
    top-ups from the warm pool, so downstream leave-one-out training
    always has material to work with.
    """
    interactions = interactions if interactions is not None else InteractionConfig()
    config = config if config is not None else ColdStartConfig()
    rng = np.random.default_rng(config.seed)
    items = catalog.items
    n_items = len(items)
    n_cold = max(1, int(round(config.cold_fraction * n_items)))
    if n_cold >= n_items:
        raise ValueError("cold_fraction leaves no warm items")
    cold_items = sorted(
        int(i) for i in rng.choice(n_items, size=n_cold, replace=False)
    )
    cold_set = set(cold_items)
    warm_items = [i for i in range(n_items) if i not in cold_set]

    base = generate_interactions(catalog, interactions)
    warm_events = [
        event for event in base.interactions if event.item_id not in cold_set
    ]

    item_category = np.asarray([item.category_id for item in items])
    item_values: List[Set[str]] = [set(item.attributes.values()) for item in items]
    strength = max(interactions.preference_strength, 1.0)

    # Deterministic top-up for users starved by the cold filter.
    per_user: Dict[int, List[Interaction]] = {
        u: [] for u in range(base.num_users)
    }
    for event in warm_events:
        per_user[event.user_id].append(event)
    topped_up: List[Interaction] = list(warm_events)
    for user_id in range(base.num_users):
        history = per_user[user_id]
        missing = config.min_warm_per_user - len(history)
        if missing <= 0:
            continue
        have = {event.item_id for event in history}
        pool = [i for i in warm_items if i not in have]
        weights = _persona_cold_affinity(
            base.user_personas[user_id], pool, item_category, item_values, strength
        )
        extra = rng.choice(len(pool), size=missing, replace=False, p=weights)
        next_ts = max((e.timestamp for e in history), default=-1) + 1
        for offset, index in enumerate(extra):
            topped_up.append(
                Interaction(
                    user_id=user_id,
                    item_id=int(pool[int(index)]),
                    timestamp=next_ts + offset,
                )
            )

    heldout: Dict[int, int] = {}
    for user_id in range(base.num_users):
        weights = _persona_cold_affinity(
            base.user_personas[user_id],
            cold_items,
            item_category,
            item_values,
            strength,
        )
        heldout[user_id] = int(cold_items[int(rng.choice(n_cold, p=weights))])

    warm = InteractionDataset(
        num_users=base.num_users,
        num_items=n_items,
        interactions=topped_up,
        user_personas=base.user_personas,
    )
    return ColdStartSplit(
        interactions=warm,
        cold_items=cold_items,
        warm_items=warm_items,
        heldout=heldout,
    )


class CooccurrenceAligner:
    """The item–item co-occurrence alignment head.

    Counts unordered item pairs co-occurring within a user's history,
    keeps the ``max_pairs`` strongest (count desc, pair asc — fully
    deterministic), and pulls the paired items' *entity* embeddings
    together with weighted SGD on ``w · ||e_a − e_b||²``.  Applied to
    the same table TransE trains, this is the second task of the
    multi-task objective.
    """

    def __init__(
        self,
        interactions: InteractionDataset,
        item_entity_ids: Sequence[int],
        max_pairs: int = 4000,
    ) -> None:
        counts: Dict[Tuple[int, int], int] = {}
        for history in interactions.by_user().values():
            item_ids = sorted({event.item_id for event in history})
            for i, a in enumerate(item_ids):
                for b in item_ids[i + 1 :]:
                    counts[(a, b)] = counts.get((a, b), 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = ranked[: int(max_pairs)]
        self.num_pairs = len(kept)
        entity = np.asarray(item_entity_ids, dtype=np.int64)
        self._a = np.asarray([entity[a] for (a, _), _ in kept], dtype=np.int64)
        self._b = np.asarray([entity[b] for (_, b), _ in kept], dtype=np.int64)
        weights = np.asarray([c for _, c in kept], dtype=np.float64)
        self._w = weights / weights.max() if len(weights) else weights

    def loss(self, entity_table: np.ndarray) -> float:
        """Weighted mean squared distance over the kept pairs."""
        if self.num_pairs == 0:
            return 0.0
        delta = entity_table[self._a] - entity_table[self._b]
        return float(np.mean(self._w * np.sum(delta * delta, axis=1)))

    def step(self, entity_table: np.ndarray, lr: float, weight: float) -> float:
        """One in-place alignment pass; returns the pre-step loss."""
        if self.num_pairs == 0:
            return 0.0
        before = self.loss(entity_table)
        delta = entity_table[self._a] - entity_table[self._b]
        grad = (lr * weight * self._w)[:, None] * delta
        np.subtract.at(entity_table, self._a, grad)
        np.add.at(entity_table, self._b, grad)
        return before


def pretrain_multitask(
    store,
    num_entities: int,
    num_relations: int,
    split: ColdStartSplit,
    item_entity_ids: Sequence[int],
    model_config=None,
    trainer_config=None,
    coldstart: Optional[ColdStartConfig] = None,
    seed: int = 0,
    registry=None,
):
    """TransE pre-training interleaved with co-occurrence alignment.

    Returns ``(model, history, alignment_losses)``.  The alignment
    pass runs in the trainer's per-epoch ``progress`` hook, mutating
    the live entity table between epochs — the two objectives
    alternate on shared parameters, the standard multi-task recipe at
    this scale.
    """
    from ..core import PKGM, PKGMTrainer

    coldstart = coldstart if coldstart is not None else ColdStartConfig()
    model = PKGM(
        num_entities,
        num_relations,
        config=model_config,
        rng=np.random.default_rng(seed),
    )
    aligner = CooccurrenceAligner(
        split.interactions, item_entity_ids, max_pairs=coldstart.max_pairs
    )
    entity_table = model.triple_module.entity_embeddings.weight.data
    alignment_losses: List[float] = []

    def _align(epoch: int, mean_loss: float) -> None:
        alignment_losses.append(
            aligner.step(
                entity_table,
                lr=coldstart.alignment_lr,
                weight=coldstart.alignment_weight,
            )
        )

    trainer = PKGMTrainer(model, trainer_config, registry=registry)
    history = trainer.train(store, progress=_align)
    return model, history, alignment_losses


# ---------------------------------------------------------------------------
# Evaluation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColdStartReport:
    """HR@k / NDCG@k per scoring method over the cold pool."""

    methods: Dict[str, Dict[str, float]]
    num_users: int
    num_cold: int
    ks: Tuple[int, ...] = (1, 5, 10)

    def lines(self) -> List[str]:
        header = "method | " + " | ".join(
            f"HR@{k}" for k in self.ks
        ) + " | " + " | ".join(f"NDCG@{k}" for k in self.ks)
        rows = [
            f"cold-start zero-shot: {self.num_users} users x {self.num_cold} cold items",
            header,
        ]
        for method in sorted(self.methods):
            metrics = self.methods[method]
            hr = " | ".join(f"{metrics[f'HR@{k}']:.4f}" for k in self.ks)
            ndcg = " | ".join(f"{metrics[f'NDCG@{k}']:.4f}" for k in self.ks)
            rows.append(f"{method} | {hr} | {ndcg}")
        return rows


def evaluate_coldstart(
    server,
    split: ColdStartSplit,
    item_entity_ids: Sequence[int],
    catalog,
    config: Optional[ColdStartConfig] = None,
    ncf_model=None,
    ncf_features: Optional[np.ndarray] = None,
) -> ColdStartReport:
    """Rank each user's held-out cold item among all cold items.

    Methods:

    * ``service`` — the scenario under test: user profile = mean
      condensed service vector of the user's warm items; candidates
      scored by negative L2 distance.  Uses only KG-derived vectors.
    * ``popularity`` — warm interaction count of the candidate's
      category (cold items have no own counts by construction).
    * ``random`` — seeded uniform scores.
    * ``warm-ncf`` — optional: a trained NCF scoring via
      :meth:`~repro.tasks.NCF.predict_unseen`; without service
      features every cold item collapses to the mean item embedding,
      which is exactly the failure mode the paper's vectors fix.
    """
    config = config if config is not None else ColdStartConfig()
    ks = config.ks
    entity_ids = np.asarray(item_entity_ids, dtype=np.int64)
    cold = np.asarray(split.cold_items, dtype=np.int64)
    condensed = server.serve_condensed_batch([int(e) for e in entity_ids])
    cold_vectors = condensed[cold]

    item_category = np.asarray([item.category_id for item in catalog.items])
    category_counts = np.zeros(int(item_category.max()) + 1, dtype=np.float64)
    for event in split.interactions.interactions:
        category_counts[item_category[event.item_id]] += 1.0
    popularity_scores = category_counts[item_category[cold]]

    rng = np.random.default_rng(config.seed + 1)
    histories = split.interactions.by_user()
    ranks: Dict[str, List[float]] = {
        "service": [],
        "popularity": [],
        "random": [],
    }
    if ncf_model is not None:
        ranks["warm-ncf"] = []

    for user_id in sorted(split.heldout):
        positive = split.heldout[user_id]
        positive_index = int(np.searchsorted(cold, positive))
        warm_history = [event.item_id for event in histories.get(user_id, [])]
        profile = condensed[np.asarray(warm_history, dtype=np.int64)].mean(axis=0)
        distances = np.sqrt(
            np.sum((cold_vectors - profile) ** 2, axis=1)
        )
        ranks["service"].append(
            rank_of_positive(-distances, positive_index=positive_index)
        )
        ranks["popularity"].append(
            rank_of_positive(popularity_scores, positive_index=positive_index)
        )
        ranks["random"].append(
            rank_of_positive(
                rng.random(len(cold)), positive_index=positive_index
            )
        )
        if ncf_model is not None:
            users = np.full(len(cold), user_id, dtype=np.int64)
            service = None if ncf_features is None else ncf_features[cold]
            scores = ncf_model.predict_unseen(users, service=service)
            ranks["warm-ncf"].append(
                rank_of_positive(scores, positive_index=positive_index)
            )

    return ColdStartReport(
        methods={
            method: ranking_metrics(method_ranks, ks)
            for method, method_ranks in ranks.items()
        },
        num_users=len(split.heldout),
        num_cold=len(cold),
        ks=ks,
    )


def run_coldstart(
    experiment,
    coldstart: Optional[ColdStartConfig] = None,
    train_ncf: bool = True,
    registry=None,
) -> Tuple[ColdStartReport, ColdStartSplit]:
    """End-to-end zero-shot run at an :class:`ExperimentConfig` scale.

    Generates the catalog and cold-start split, multi-task pre-trains
    PKGM, optionally trains the warm-only NCF baseline, and evaluates.
    Drives the ``repro scenarios coldstart`` CLI and the committed
    bench numbers.
    """
    from ..core import KeyRelationSelector, PKGMServer
    from ..data import generate_catalog

    coldstart = coldstart if coldstart is not None else ColdStartConfig()
    catalog = generate_catalog(experiment.catalog)
    split = generate_coldstart_split(
        catalog, experiment.interactions, coldstart
    )
    item_entity_ids = [item.entity_id for item in catalog.items]
    model, _, alignment_losses = pretrain_multitask(
        catalog.store,
        len(catalog.entities),
        len(catalog.relations),
        split,
        item_entity_ids,
        model_config=experiment.pkgm,
        trainer_config=experiment.pkgm_trainer,
        coldstart=coldstart,
        seed=experiment.seed,
        registry=registry,
    )
    item_to_category = {item.entity_id: item.category_id for item in catalog.items}
    selector = KeyRelationSelector(
        catalog.store, item_to_category, k=experiment.key_relations
    )
    server = PKGMServer(model, selector)

    ncf_model = None
    if train_ncf:
        from ..tasks import RecommendationTask

        task = RecommendationTask(
            split.interactions,
            item_entity_ids,
            server=server,
            config=experiment.ncf,
        )
        ncf_model, _ = task.train_model("base")

    report = evaluate_coldstart(
        server,
        split,
        item_entity_ids,
        catalog,
        config=coldstart,
        ncf_model=ncf_model,
    )
    if registry is not None:
        for method in sorted(report.methods):
            for metric in sorted(report.methods[method]):
                registry.gauge(
                    "scenarios.coldstart.metric",
                    help="Zero-shot cold-start ranking metrics",
                    labels={"method": method, "metric": metric},
                ).set(report.methods[method][metric])
        if alignment_losses:
            registry.gauge(
                "scenarios.coldstart.alignment_loss",
                help="Final co-occurrence alignment loss",
            ).set(alignment_losses[-1])
    return report, split
