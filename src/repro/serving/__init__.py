"""``repro.serving`` — the supervised multi-process serving tier.

The single-process stack (PKGMServer → resilient facade → gateway)
survives bad inputs and simulated faults; this package makes it
survive *real* concurrency and *real* process death:

* :class:`Supervisor` forks N workers over one embedding-store
  directory, monitors them, restarts crashes, replays or fails-fast
  orphaned in-flight requests (exactly-once via idempotency keys), and
  fails reads over to sibling workers during restarts;
* :class:`Coalescer` batches concurrent requests into the batched
  kernels (``nearest_tails_batch`` / ``relation_existence_scores``)
  under a max-batch/max-delay policy on the virtual StepClock;
* :func:`run_kill_drill` is the process-level chaos harness (SIGKILL
  under seeded load, byte-deterministic transcript) and
  :func:`run_serve_loadtest` the real-QPS measurement driver.

The supervisor exposes ``serve`` / ``nearest_tails`` /
``relation_existence_score`` plus ``k``/``dim``, so the PR 3 gateway's
admission, deadlines, and drain/swap wrap a pool unchanged.
"""

from .chaos import ChaosConfig, ChaosReport, run_kill_drill
from .coalescer import Batch, Coalescer, CoalescerConfig
from .loadtest import ServeLoadConfig, ServeLoadReport, run_serve_loadtest
from .protocol import (
    PoolRequest,
    PoolResponse,
    ProtocolError,
    drain_frames,
    payload_checksum,
    recv_frame,
    send_frame,
    shard_of,
)
from .supervisor import PoolConfig, PoolError, Supervisor, WorkerHandle
from .worker import run_batch, worker_main

__all__ = [
    "Batch",
    "ChaosConfig",
    "ChaosReport",
    "Coalescer",
    "CoalescerConfig",
    "PoolConfig",
    "PoolError",
    "PoolRequest",
    "PoolResponse",
    "ProtocolError",
    "ServeLoadConfig",
    "ServeLoadReport",
    "Supervisor",
    "WorkerHandle",
    "drain_frames",
    "payload_checksum",
    "recv_frame",
    "run_batch",
    "run_kill_drill",
    "run_serve_loadtest",
    "send_frame",
    "shard_of",
    "worker_main",
]
