"""Concurrent loadtest for the worker pool: real QPS, real percentiles.

Unlike the PR 3 gateway loadtest (a pure virtual-time simulation),
this one measures actual multi-process throughput.  Wall-clock access
is *injected*: the caller passes a ``timer`` callable (the CLI and
benchmarks pass ``time.perf_counter``), keeping this module inside the
R007 no-wall-clock boundary — with ``timer=None`` the report falls
back to virtual StepClock stamps, making the outcome accounting
(ok/degraded counts) deterministic; latency percentiles remain
measurements either way, since they depend on real arrival order.

The driver is open-loop with a bounded window: it submits the seeded
workload as fast as the pool accepts it, blocking only when more than
``window`` requests are outstanding — so worker processes genuinely
compute in parallel while the driver keeps feeding batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .chaos import _pick_request, ChaosConfig
from .supervisor import Supervisor


@dataclass(frozen=True)
class ServeLoadConfig:
    """Workload shape for one pool loadtest."""

    requests: int = 512
    window: int = 32
    seed: int = 0
    serve_prob: float = 0.55
    exist_prob: float = 0.2
    unknown_prob: float = 0.0
    k: int = 10
    tick: float = 0.001  # virtual seconds between arrivals


@dataclass
class ServeLoadReport:
    """What one loadtest run measured."""

    requests: int
    ok: int
    degraded: int
    elapsed: float
    qps: float
    p50: float
    p99: float
    batches: int
    mean_batch: float

    def as_rows(self) -> List[str]:
        return [
            f"pool loadtest: {self.requests} requests | ok {self.ok} | "
            f"degraded {self.degraded}",
            f"batching: {self.batches} batches | "
            f"{self.mean_batch:.2f} requests/batch",
            f"timing: {self.elapsed:.3f}s | {self.qps:.0f} qps | "
            f"p50 {self.p50 * 1e3:.2f}ms | p99 {self.p99 * 1e3:.2f}ms",
        ]


def run_serve_loadtest(
    pool: Supervisor,
    item_ids: Sequence[int],
    config: Optional[ServeLoadConfig] = None,
    timer: Optional[Callable[[], float]] = None,
) -> ServeLoadReport:
    """Drive one started pool through the seeded workload."""
    config = config if config is not None else ServeLoadConfig()
    clock = pool.clock
    now = timer if timer is not None else clock.now
    mix = ChaosConfig(
        workers=pool.config.num_workers,
        kill_at=(),
        kill_workers=(),
        serve_prob=config.serve_prob,
        exist_prob=config.exist_prob,
        unknown_prob=config.unknown_prob,
        k=config.k,
    )
    rng = np.random.default_rng(config.seed)
    submitted_at: Dict[int, float] = {}
    latencies: List[float] = []
    ok = degraded = 0

    def collect(responses=None) -> None:
        nonlocal ok, degraded
        stamp = now()
        for response in pool.responses() if responses is None else responses:
            latencies.append(stamp - submitted_at.pop(response.request_id))
            if response.ok:
                ok += 1
            else:
                degraded += 1

    started = now()
    for _ in range(config.requests):
        clock.advance(config.tick)
        kind, entity, relation = _pick_request(
            rng, mix, item_ids, pool.num_entities, pool.num_relations
        )
        request_id = pool.submit(kind, entity, relation=relation, k=config.k)
        submitted_at[request_id] = now()
        pool.pump()
        collect()
        while pool.outstanding() > config.window:
            pool.wait_any()
            collect()
    collect(pool.drain())
    elapsed = now() - started
    batches = int(pool.metrics.counter("coalesce.batches").value)
    percentiles = (
        np.percentile(latencies, [50, 99]) if latencies else np.zeros(2)
    )
    return ServeLoadReport(
        requests=config.requests,
        ok=ok,
        degraded=degraded,
        elapsed=elapsed,
        qps=config.requests / elapsed if elapsed > 0 else 0.0,
        p50=float(percentiles[0]),
        p99=float(percentiles[1]),
        batches=batches,
        mean_batch=config.requests / batches if batches else 0.0,
    )
