"""Request coalescing: many concurrent requests, few kernel calls.

The PKGM service interface is batched at its core —
``relation_existence_scores`` and ``nearest_tails_batch`` amortize the
per-call python and index overhead over the whole batch — but gateway
traffic arrives one request at a time.  The :class:`Coalescer` sits
between them: requests accumulate in per-``(shard, kind, k)`` buffers
and flush as one batch when the buffer reaches ``max_batch`` or when
the oldest buffered request has waited ``max_delay`` virtual seconds
on the shared :class:`~repro.reliability.retry.StepClock`.

Grouping by shard keeps worker affinity (one batch goes to one
worker); grouping by ``(kind, k)`` is what lets the worker run the
whole batch through a single kernel call.  Time is virtual, so the
delay policy is deterministic: the driver advances the clock between
arrivals and asks :meth:`due` for expired buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .protocol import PoolRequest

#: Buffer key: one flushable group.
GroupKey = Tuple[int, str, int]

#: Histogram buckets for coalesced batch sizes.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class CoalescerConfig:
    """Batching policy knobs."""

    max_batch: int = 16
    max_delay: float = 0.002  # virtual seconds

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")


@dataclass(frozen=True)
class Batch:
    """One flushed group, ready to dispatch to a worker."""

    shard: int
    kind: str
    k: int
    requests: Tuple[PoolRequest, ...]


class Coalescer:
    """Deterministic max-batch / max-delay batcher on the virtual clock."""

    def __init__(
        self,
        clock,
        config: Optional[CoalescerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.config = config if config is not None else CoalescerConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._buffers: Dict[GroupKey, List[PoolRequest]] = {}
        self._opened_at: Dict[GroupKey, float] = {}
        self._requests_c = self.metrics.counter(
            "coalesce.requests", help="Requests offered to the coalescer"
        )
        self._batches_c = self.metrics.counter(
            "coalesce.batches", help="Batches flushed"
        )
        self._flush_c = {
            reason: self.metrics.counter(
                "coalesce.flushes",
                help="Batches flushed, by trigger",
                labels={"reason": reason},
            )
            for reason in ("full", "delay", "forced")
        }
        self._size_h = self.metrics.histogram(
            "coalesce.batch_size",
            help="Requests per flushed batch",
            buckets=BATCH_SIZE_BUCKETS,
        )

    def pending(self) -> int:
        """Requests buffered but not yet flushed."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def offer(self, request: PoolRequest) -> List[Batch]:
        """Buffer one request; returns the batch it filled, if any."""
        key: GroupKey = (request.shard, request.kind, request.k)
        buffer = self._buffers.setdefault(key, [])
        self._opened_at.setdefault(key, self.clock.now())
        buffer.append(request)
        self._requests_c.inc()
        if len(buffer) >= self.config.max_batch:
            return [self._close(key, "full")]
        return []

    def due(self) -> List[Batch]:
        """Flush every buffer whose oldest request has waited long enough."""
        now = self.clock.now()
        expired = sorted(
            key
            for key, opened in self._opened_at.items()
            if now - opened >= self.config.max_delay
        )
        return [self._close(key, "delay") for key in expired]

    def flush_all(self) -> List[Batch]:
        """Flush everything (drain, sync calls, worker-death replay)."""
        return [self._close(key, "forced") for key in sorted(self._buffers)]

    def _close(self, key: GroupKey, reason: str) -> Batch:
        requests = self._buffers.pop(key)
        self._opened_at.pop(key, None)
        self._batches_c.inc()
        self._flush_c[reason].inc()
        self._size_h.observe(float(len(requests)))
        shard, kind, k = key
        return Batch(shard=shard, kind=kind, k=k, requests=tuple(requests))
